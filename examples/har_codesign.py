"""HAR co-design study: how FPGA and GPU react to the evolutionary search.

Reproduces the experiment behind Figure 2 of the paper on the HAR analogue:
run the joint accuracy + throughput search, then look at every evaluated
candidate's accuracy against its outputs/s on the Arria 10 overlay model and
on the Quadro M5000 model.  The FPGA's throughput varies wildly from candidate
to candidate (a different hardware configuration per point) while the GPU's
barely moves — which is the paper's argument for co-design.

Run with::

    python examples/har_codesign.py
"""

from __future__ import annotations

from repro.analysis.figures import accuracy_throughput_series, ascii_scatter
from repro.analysis.frontier import accuracy_band_summary, throughput_neuron_correlation
from repro.analysis.reporting import format_scientific, format_table
from repro.core.config import ECADConfig, OptimizationTargetConfig
from repro.core.search import CoDesignSearch
from repro.datasets.registry import load_dataset


def main() -> None:
    dataset = load_dataset("har", seed=0, scale=0.03)
    print(f"dataset: {dataset}")

    config = ECADConfig.template_for_dataset(
        dataset,
        fpga="arria10",
        gpu="m5000",
        optimization=OptimizationTargetConfig.accuracy_and_throughput(),
        population_size=8,
        max_evaluations=28,
        training_epochs=8,
        num_folds=2,
        seed=1,
    )
    result = CoDesignSearch(dataset, config=config).run()
    evaluations = [e for e in result.history.evaluations() if not e.failed]

    fpga_series = accuracy_throughput_series(evaluations, device="fpga", name="HAR on Arria 10 (Fig 2a)")
    gpu_series = accuracy_throughput_series(evaluations, device="gpu", name="HAR on Quadro M5000 (Fig 2b)")
    print()
    print(ascii_scatter(fpga_series, log_y=True))
    print()
    print(ascii_scatter(gpu_series, log_y=True))

    print()
    fpga_low, fpga_high = fpga_series.y_range()
    gpu_low, gpu_high = gpu_series.y_range()
    print(f"FPGA outputs/s range: {format_scientific(fpga_low)} .. {format_scientific(fpga_high)} "
          f"({fpga_high / max(fpga_low, 1e-9):.1f}x spread)")
    print(f"GPU  outputs/s range: {format_scientific(gpu_low)} .. {format_scientific(gpu_high)} "
          f"({gpu_high / max(gpu_low, 1e-9):.1f}x spread)")
    print(f"neuron-count vs throughput correlation: "
          f"FPGA {throughput_neuron_correlation(evaluations, 'fpga'):+.2f}, "
          f"GPU {throughput_neuron_correlation(evaluations, 'gpu'):+.2f}")

    bands = accuracy_band_summary(evaluations, band_width=0.01, device="fpga", top_bands=5)
    rows = [
        {
            "accuracy_band": f"({band.accuracy_floor:.3f}, {band.accuracy_ceiling:.3f}]",
            "candidates": band.count,
            "min_outputs_per_s": band.min_outputs_per_second,
            "max_outputs_per_s": band.max_outputs_per_second,
            "spread": round(band.throughput_spread, 1),
        }
        for band in bands
    ]
    print()
    print(format_table(rows, title="FPGA throughput by accuracy band (the 'small sacrifice, giant leap' effect)"))


if __name__ == "__main__":
    main()
