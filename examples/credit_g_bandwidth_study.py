"""Memory-bandwidth study on the Credit-g analogue (Figure 3 of the paper).

Most designs the evolutionary algorithm returns on the single-DDR-bank
Arria 10 development kit are bandwidth constrained.  This example:

1. runs a short throughput-oriented co-design search on the Credit-g analogue,
2. takes the highest-throughput design point it found, and
3. re-evaluates exactly that network + overlay configuration with 1, 2 and 4
   banks of DDR4, reporting throughput and hardware efficiency for each.

The expected shape (paper section IV-C): throughput scales roughly linearly
with bank count while efficiency does not improve.

Run with::

    python examples/credit_g_bandwidth_study.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.config import ECADConfig, OptimizationTargetConfig
from repro.core.search import CoDesignSearch
from repro.datasets.registry import load_dataset
from repro.hardware.device import ARRIA10_GX1150
from repro.hardware.fpga_model import FPGAPerformanceModel
from repro.hardware.memory import DDR4_BANK, MemorySystem


def main() -> None:
    dataset = load_dataset("credit-g", seed=0, scale=0.3)
    print(f"dataset: {dataset}")

    config = ECADConfig.template_for_dataset(
        dataset,
        fpga="arria10",
        optimization=OptimizationTargetConfig.accuracy_and_throughput(),
        population_size=6,
        max_evaluations=18,
        training_epochs=6,
        num_folds=2,
        seed=0,
    )
    result = CoDesignSearch(dataset, config=config).run()

    best = max(
        (e for e in result.history.evaluations() if not e.failed),
        key=lambda e: e.fpga_outputs_per_second,
    )
    spec = best.genome.mlp.to_spec(dataset.num_features, dataset.num_classes)
    grid = best.genome.hardware.grid
    print()
    print(f"design point: hidden layers {list(best.genome.mlp.hidden_layers)}, grid {grid}, "
          f"accuracy {best.accuracy:.4f}")

    rows = []
    for banks in (1, 2, 4):
        model = FPGAPerformanceModel(ARRIA10_GX1150, memory=MemorySystem(DDR4_BANK, banks=banks))
        metrics = model.evaluate(spec, grid, batch_size=best.genome.hardware.batch_size)
        rows.append(
            {
                "ddr_banks": banks,
                "bandwidth_gb_per_s": round(19.2 * banks, 1),
                "outputs_per_second": metrics.outputs_per_second,
                "effective_gflops": round(metrics.effective_gflops, 1),
                "efficiency": round(metrics.efficiency, 3),
                "memory_bound": not metrics.compute_bound,
            }
        )
    print()
    print(format_table(rows, title="Throughput and efficiency vs DDR bank count (Figure 3 shape)"))
    baseline = rows[0]["outputs_per_second"]
    print()
    for row in rows:
        print(f"  {row['ddr_banks']} bank(s): {row['outputs_per_second'] / baseline:.2f}x the 1-bank throughput")


if __name__ == "__main__":
    main()
