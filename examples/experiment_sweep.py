"""Experiment API: run a declarative dataset × objective grid with resume.

The paper's tables are a matrix of searches, not a single run.  This example
builds that matrix declaratively — two datasets × two optimization targets —
executes it through :class:`~repro.experiment.runner.ExperimentRunner`, and
shows the checkpoint/resume behaviour: run the script twice and the second
invocation skips every completed cell and just reprints the report.

Run with::

    python examples/experiment_sweep.py
"""

from __future__ import annotations

from repro.experiment import ExperimentRunner, ExperimentSpec


def main() -> None:
    # 1. The grid, as data.  Exactly the same structure round-trips through
    #    JSON (ExperimentSpec.save/load), which is what `ecad sweep --spec`
    #    consumes.  `overrides` applies dotted-key ECADConfig overrides to
    #    every generated run configuration.
    spec = ExperimentSpec(
        name="sweep_example",
        datasets=("credit-g", "phishing"),
        objectives=("accuracy", "codesign"),
        seeds=(0,),
        scale=0.15,
        backend="threads",
        eval_parallelism=2,
        overrides={
            "population_size": 6,
            "max_evaluations": 18,
            "training_epochs": 4,
            "num_folds": 3,
        },
    )
    print(f"grid: {len(spec.datasets)} datasets x {len(spec.objectives)} objectives "
          f"x {len(spec.seeds)} seeds = {spec.grid_size} runs\n")

    # 2. Execute.  Each finished cell writes runs/<run_id>.json immediately,
    #    so interrupting the script and re-running it resumes where it
    #    stopped (the CLI equivalent is `ecad resume experiments/sweep_example`).
    runner = ExperimentRunner(spec, printer=print)
    report = runner.run()

    # 3. The aggregate report: one row per cell, also written as
    #    report.json + report.csv next to the per-run artifacts.
    print()
    print(report.summary_table())
    best = report.best_artifact()
    print(f"\nbest cell: {best.run_id} (accuracy {best.best_accuracy:.4f})")
    print(f"artifacts in: {runner.output_dir}")


if __name__ == "__main__":
    main()
