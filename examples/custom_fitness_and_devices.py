"""Extending the framework: custom fitness objectives and custom devices.

The paper notes that "simple evaluation functions can be specified in the
configuration file and more complex ones are written in code and added by
registering them with the framework".  This example shows both extension
points working together:

* a custom objective, ``latency_per_parameter``, registered with the fitness
  registry and used alongside accuracy in a search, and
* a custom (hypothetical) FPGA device — a small edge-class part with one slow
  DDR bank — showing that nothing in the flow is hard-wired to the Arria 10 /
  Stratix 10 catalogue entries.

Run with::

    python examples/custom_fitness_and_devices.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.core.engine import EngineConfig, EvolutionaryEngine
from repro.core.fitness import FitnessEvaluator, FitnessObjective, register_objective
from repro.core.genome import CoDesignSearchSpace, HardwareSearchSpace, MLPSearchSpace
from repro.datasets.registry import load_dataset
from repro.hardware.device import FPGADevice, TITAN_X
from repro.hardware.systolic import GridSearchSpace
from repro.nn.training import TrainingConfig
from repro.workers.hardware_db import HardwareDatabaseWorker
from repro.workers.master import Master
from repro.workers.physical import PhysicalWorker
from repro.workers.simulation import SimulationWorker

# 1. A custom edge-class FPGA: ~1/8 of an Arria 10, single slow DDR3 bank.
EDGE_FPGA = FPGADevice(
    name="EdgeML-190",
    dsp_count=192,
    m20k_count=440,
    alm_count=56_000,
    clock_mhz=200.0,
    ddr_banks=1,
    ddr_bandwidth_gbps_per_bank=6.4,
)


# 2. A custom objective: penalize designs whose latency is large relative to
#    how many parameters they serve (a proxy for "responsiveness per model
#    capacity" on an interactive edge deployment).
def latency_per_parameter(evaluation) -> float:
    if evaluation.fpga_metrics is None or evaluation.parameter_count == 0:
        return float("inf")
    return evaluation.fpga_metrics.latency_seconds / evaluation.parameter_count


def main() -> None:
    register_objective("latency_per_parameter", latency_per_parameter, overwrite=True)

    dataset = load_dataset("phishing", seed=0, scale=0.03)
    print(f"dataset: {dataset}")
    print(f"custom device: {EDGE_FPGA.name}, {EDGE_FPGA.dsp_count} DSPs, "
          f"{EDGE_FPGA.total_bandwidth_gbps:.1f} GB/s, peak {EDGE_FPGA.peak_gflops:.0f} GFLOP/s")

    # A search space sized for the small device.
    space = CoDesignSearchSpace(
        mlp_space=MLPSearchSpace(max_layers=3, layer_sizes=(16, 32, 64, 128), activations=("relu", "tanh")),
        hardware_space=HardwareSearchSpace(
            grid_space=GridSearchSpace(
                rows=(1, 2, 4, 8), columns=(1, 2, 4, 8), vector_width=(1, 2, 4)
            ),
            batch_sizes=(256, 512, 1024),
        ),
    )

    # Workers and master assembled by hand (instead of CoDesignSearch) so the
    # custom device can be injected everywhere.
    master = Master(
        workers=[
            SimulationWorker(gpu=TITAN_X),
            HardwareDatabaseWorker(device=EDGE_FPGA),
            PhysicalWorker(device=EDGE_FPGA),
        ],
        dataset=dataset,
        evaluation_protocol="10-fold",
        num_folds=2,
        training_config=TrainingConfig(epochs=6, batch_size=32, learning_rate=0.01),
        seed=0,
    )

    fitness = FitnessEvaluator(
        [
            FitnessObjective.accuracy(weight=1.0),
            FitnessObjective(name="latency_per_parameter", maximize=False, weight=0.5),
            FitnessObjective.fpga_throughput(weight=0.5),
        ]
    )
    engine = EvolutionaryEngine(
        space=space,
        evaluator=master,
        fitness=fitness,
        config=EngineConfig(population_size=6, max_evaluations=18, seed=0),
        device=EDGE_FPGA,
    )
    result = engine.run()

    rows = []
    for member in list(result.population)[:5]:
        evaluation = member.evaluation
        rows.append(
            {
                "accuracy": round(evaluation.accuracy, 4),
                "outputs_per_s": evaluation.fpga_outputs_per_second,
                "latency_us": round(evaluation.fpga_metrics.latency_seconds * 1e6, 1)
                if evaluation.fpga_metrics
                else float("nan"),
                "parameters": evaluation.parameter_count,
                "grid": str(evaluation.genome.hardware.grid),
                "fitness": round(member.fitness_value, 3),
            }
        )
    print()
    print(format_table(rows, title=f"Top designs for {EDGE_FPGA.name} (custom latency-aware fitness)"))
    print()
    stats = result.statistics
    print(f"evaluated {stats.models_evaluated} models "
          f"({stats.cache_hits} cache hits) in {stats.wall_clock_seconds:.1f}s")


if __name__ == "__main__":
    main()
