"""Accuracy-only architecture search on the MNIST analogue (Tables I/II flow).

The paper's Table I/II results come from running the evolutionary search with
accuracy as the only fitness criterion.  This example does the same on the
synthetic MNIST analogue, compares the evolved network against a fixed
single-hidden-layer baseline (the ``MLPClassifier`` topology the paper's
tables quote), and then shows what the evolved network would cost on the
Stratix 10 overlay and the Titan X — i.e. what you give up by ignoring
hardware during the search.

Run with::

    python examples/mnist_accuracy_search.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_scientific, format_table
from repro.core.config import ECADConfig, OptimizationTargetConfig
from repro.core.search import CoDesignSearch
from repro.datasets.registry import dataset_entry, load_dataset
from repro.hardware.device import STRATIX10_2800, TITAN_X
from repro.hardware.fpga_model import FPGAPerformanceModel
from repro.hardware.gpu_model import GPUPerformanceModel
from repro.hardware.systolic import GridSearchSpace
from repro.nn.evaluation import evaluate_single_fold
from repro.nn.mlp import MLPSpec
from repro.nn.training import TrainingConfig


def main() -> None:
    dataset = load_dataset("mnist", seed=0, scale=0.02)
    entry = dataset_entry("mnist")
    print(f"dataset: {dataset}")
    print(f"paper reference accuracies: best MLP {entry.paper_top_accuracy_mlp}, "
          f"ECAD {entry.paper_ecad_accuracy}")

    training = TrainingConfig(epochs=8, batch_size=32, learning_rate=0.01)

    # Fixed baseline: one hidden layer of 100 ReLU neurons.
    baseline_spec = MLPSpec(
        input_size=dataset.num_features,
        output_size=dataset.num_classes,
        hidden_sizes=(100,),
        activations=("relu",),
    )
    baseline = evaluate_single_fold(
        baseline_spec,
        dataset.features,
        dataset.labels,
        dataset.test_features,
        dataset.test_labels,
        training_config=training,
        seed=0,
    )
    print(f"\nfixed 100-neuron MLP baseline accuracy: {baseline.accuracy:.4f}")

    # Accuracy-only evolutionary search.
    config = ECADConfig.template_for_dataset(
        dataset,
        optimization=OptimizationTargetConfig.accuracy_only(),
        population_size=6,
        max_evaluations=16,
        training_epochs=training.epochs,
        seed=0,
    )
    result = CoDesignSearch(dataset, config=config).run()
    best = result.best_accuracy_candidate
    print(f"ECAD evolved MLP accuracy:              {result.best_accuracy:.4f}")
    print(f"  evolved hidden layers: {list(best.genome.mlp.hidden_layers)}")
    print(f"  evolved activations:   {list(best.genome.mlp.activations)}")

    # What the evolved network costs on hardware (outside the fitness loop).
    spec = best.genome.mlp.to_spec(dataset.num_features, dataset.num_classes)
    fpga = FPGAPerformanceModel(STRATIX10_2800)
    grid, fpga_metrics = fpga.best_grid_for(
        spec, GridSearchSpace().feasible_configs(STRATIX10_2800)[::7], batch_size=2048
    )
    gpu_metrics = GPUPerformanceModel(TITAN_X).evaluate(spec, batch_size=512)
    rows = [
        {
            "device": "Stratix 10 2800 (best grid)",
            "outputs_per_s": fpga_metrics.outputs_per_second,
            "efficiency": round(fpga_metrics.efficiency, 3),
            "latency_us": round(fpga_metrics.latency_seconds * 1e6, 1),
        },
        {
            "device": "Titan X",
            "outputs_per_s": gpu_metrics.outputs_per_second,
            "efficiency": round(gpu_metrics.efficiency, 4),
            "latency_us": round(gpu_metrics.latency_seconds * 1e6, 1),
        },
    ]
    print()
    print(f"best overlay grid for the evolved network: {grid}")
    print(format_table(rows, title="Hardware cost of the accuracy-optimal network"))
    print(f"\nFPGA vs GPU throughput: "
          f"{format_scientific(fpga_metrics.outputs_per_second)} vs "
          f"{format_scientific(gpu_metrics.outputs_per_second)} outputs/s")


if __name__ == "__main__":
    main()
