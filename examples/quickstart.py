"""Quickstart: evolve an MLP and its FPGA overlay together.

This is the smallest end-to-end use of the library: load one of the built-in
synthetic datasets (an analogue of the paper's Credit-g), generate an ECAD
configuration from it automatically, run a short joint accuracy + throughput
search, and print the best candidates and the Pareto frontier.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_scientific, format_table
from repro.core.callbacks import ProgressLogger
from repro.core.config import ECADConfig, OptimizationTargetConfig
from repro.core.search import CoDesignSearch
from repro.datasets.registry import load_dataset


def main() -> None:
    # 1. A dataset.  scale=0.3 keeps the synthetic Credit-g analogue small so
    #    the example finishes in well under a minute.
    dataset = load_dataset("credit-g", seed=0, scale=0.3)
    print(f"dataset: {dataset}")

    # 2. A configuration, generated from the dataset exactly as the paper
    #    describes ("generated automatically based on a template and the
    #    dataset").  We ask for the joint accuracy + FPGA-throughput search.
    config = ECADConfig.template_for_dataset(
        dataset,
        fpga="arria10",
        gpu="titan_x",
        optimization=OptimizationTargetConfig.accuracy_and_throughput(),
        population_size=8,
        max_evaluations=24,
        training_epochs=8,
        num_folds=3,
        seed=0,
    )

    # 3. Run the search.  The CoDesignSearch front-end wires up the three
    #    workers (simulation, hardware database, physical) and the
    #    steady-state evolutionary engine for us.
    search = CoDesignSearch(dataset, config=config, callbacks=[ProgressLogger(interval=8)])
    result = search.run()

    # 4. Inspect the results.
    best = result.best_accuracy_candidate
    print()
    print(f"best accuracy: {result.best_accuracy:.4f}")
    print(f"  hidden layers : {list(best.genome.mlp.hidden_layers)}")
    print(f"  activations   : {list(best.genome.mlp.activations)}")
    print(f"  overlay grid  : {best.genome.hardware.grid}")
    print(f"  FPGA outputs/s: {format_scientific(best.fpga_outputs_per_second)}")
    print(f"  GPU outputs/s : {format_scientific(best.gpu_outputs_per_second)}")
    print(f"  FPGA efficiency: {best.fpga_metrics.efficiency:.1%}")
    print()

    rows = [
        {
            "accuracy": round(candidate.accuracy, 4),
            "fpga_outputs_per_s": candidate.fpga_outputs_per_second,
            "gpu_outputs_per_s": candidate.gpu_outputs_per_second,
            "hidden_layers": "x".join(str(h) for h in candidate.genome.mlp.hidden_layers),
            "grid": str(candidate.genome.hardware.grid),
        }
        for candidate in result.pareto_rows(count=4)
    ]
    print(format_table(rows, title="Accuracy vs FPGA-throughput Pareto frontier (best rows)"))
    print()
    print(format_table([result.statistics.to_dict()], title="Run statistics (Table III columns)"))


if __name__ == "__main__":
    main()
