"""Table II — Top single-fold accuracy for MNIST and Fashion-MNIST analogues.

Paper row structure: the pre-split (1-fold) datasets from the Keras
collection, comparing the best previously-published MLP against the ECAD
search.  Here the datasets are the synthetic analogues at reduced scale and
the baseline is the fixed 100-neuron MLP.

Expected shape: ECAD >= fixed MLP baseline on both datasets, and the MNIST
analogue reaches a higher accuracy than the (noisier) Fashion-MNIST analogue,
mirroring the ordering in the paper (0.985 vs 0.892).
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import dataset_entry

from conftest import baseline_mlp_accuracy, bench_config, bench_dataset, emit_table, run_search

DATASETS = ["mnist_like", "fashion_mnist_like"]
TOLERANCE = 0.03


def _run_table2() -> list[dict]:
    rows = []
    for name in DATASETS:
        dataset = bench_dataset(name)
        entry = dataset_entry(name)
        baseline = baseline_mlp_accuracy(dataset)
        config = bench_config(dataset, objective="accuracy", evaluations=10, population=5)
        result = run_search(dataset, config)
        rows.append(
            {
                "dataset": name,
                "paper_top_mlp_acc": entry.paper_top_accuracy_mlp,
                "paper_ecad_acc": entry.paper_ecad_accuracy,
                "baseline_mlp_acc": round(baseline, 4),
                "ecad_mlp_acc": round(result.best_accuracy, 4),
                "models_evaluated": result.statistics.models_evaluated,
            }
        )
    return rows


@pytest.mark.benchmark(group="table2")
def test_table2_single_fold_accuracy(benchmark, results_dir):
    rows = benchmark.pedantic(_run_table2, rounds=1, iterations=1)
    emit_table(
        rows,
        columns=[
            "dataset",
            "paper_top_mlp_acc",
            "paper_ecad_acc",
            "baseline_mlp_acc",
            "ecad_mlp_acc",
            "models_evaluated",
        ],
        title="Table II (reproduced): top 1-fold accuracy, ECAD vs fixed-MLP baseline",
        csv_name="table2_single_fold_accuracy.csv",
    )
    by_name = {row["dataset"]: row for row in rows}
    for row in rows:
        assert row["ecad_mlp_acc"] >= row["baseline_mlp_acc"] - TOLERANCE, row
    # MNIST analogue is easier than Fashion-MNIST analogue, as in the paper.
    assert by_name["mnist_like"]["ecad_mlp_acc"] >= by_name["fashion_mnist_like"]["ecad_mlp_acc"] - 0.02
