"""Table IV — Best Pareto-frontier rows for joint accuracy + throughput search.

Paper row structure: per dataset, two rows from the accuracy-vs-throughput
Pareto frontier, with outputs/s on a Stratix 10 FPGA and on a Titan X GPU.
The headline shapes:

* in the majority of cases the FPGA achieves higher throughput than the GPU,
  and
* sacrificing a small amount of accuracy (second row) buys a large FPGA
  throughput improvement, while GPU throughput barely moves.

The harness runs a scaled-down co-design search per dataset on the Stratix 10
model and evaluates the same candidates on the Titan X model (the GPU metrics
are produced by the simulation worker during the same search).
"""

from __future__ import annotations

import pytest

from conftest import bench_config, bench_dataset, emit_table, run_search

DATASETS = ["credit_g_like", "har_like", "mnist_like"]


def _run_table4() -> list[dict]:
    rows = []
    for name in DATASETS:
        dataset = bench_dataset(name)
        config = bench_config(
            dataset,
            objective="codesign",
            fpga="stratix10",
            gpu="titan_x",
            evaluations=20,
            population=8,
            num_folds=2,
        )
        result = run_search(dataset, config)
        for rank, candidate in enumerate(result.pareto_rows(count=2)):
            rows.append(
                {
                    "dataset": name,
                    "row": rank,
                    "accuracy": round(candidate.accuracy, 4),
                    "s10_outputs_per_s": candidate.fpga_outputs_per_second,
                    "tx_outputs_per_s": candidate.gpu_outputs_per_second,
                    "hidden_layers": "x".join(str(h) for h in candidate.genome.mlp.hidden_layers),
                    "grid": str(candidate.genome.hardware.grid),
                }
            )
    return rows


@pytest.mark.benchmark(group="table4")
def test_table4_pareto_frontier(benchmark, results_dir):
    rows = benchmark.pedantic(_run_table4, rounds=1, iterations=1)
    emit_table(
        rows,
        columns=[
            "dataset",
            "row",
            "accuracy",
            "s10_outputs_per_s",
            "tx_outputs_per_s",
            "hidden_layers",
            "grid",
        ],
        title="Table IV (reproduced): best Pareto-frontier rows, Stratix 10 vs Titan X",
        csv_name="table4_pareto_frontier.csv",
    )
    # Shape 1: the FPGA wins throughput on the majority of reported rows.
    fpga_wins = sum(1 for row in rows if row["s10_outputs_per_s"] > row["tx_outputs_per_s"])
    assert fpga_wins >= len(rows) / 2, f"FPGA won only {fpga_wins}/{len(rows)} rows"

    # Shape 2: within a dataset, the lower-accuracy frontier row has FPGA
    # throughput at least as high as the top-accuracy row (Pareto ordering),
    # and somewhere in the table a small accuracy sacrifice buys a >= 1.5x
    # FPGA throughput gain (the paper's credit-g example shows ~1700x).
    gains = []
    for name in DATASETS:
        dataset_rows = sorted((r for r in rows if r["dataset"] == name), key=lambda r: r["row"])
        if len(dataset_rows) == 2:
            top, tradeoff = dataset_rows
            assert tradeoff["s10_outputs_per_s"] >= top["s10_outputs_per_s"] - 1e-6
            if top["s10_outputs_per_s"] > 0:
                gains.append(tradeoff["s10_outputs_per_s"] / top["s10_outputs_per_s"])
    assert gains and max(gains) >= 1.5
