"""Table IV — Best Pareto-frontier rows for joint accuracy + throughput search.

Paper row structure: per dataset, two rows from the accuracy-vs-throughput
Pareto frontier, with outputs/s on a Stratix 10 FPGA and on a Titan X GPU.
The headline shapes:

* in the majority of cases the FPGA achieves higher throughput than the GPU,
  and
* sacrificing a small amount of accuracy (second row) buys a large FPGA
  throughput improvement, while GPU throughput barely moves.

The harness runs a scaled-down co-design search per dataset on the Stratix 10
model and evaluates the same candidates on the Titan X model (the GPU metrics
are produced by the simulation worker during the same search).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from conftest import BENCH_TRAINING, bench_config, bench_dataset, emit_table, run_search
from repro.core.pareto import hypervolume_2d
from repro.core.search import CoDesignSearch

DATASETS = ["credit_g_like", "har_like", "mnist_like"]


def _run_table4() -> list[dict]:
    rows = []
    for name in DATASETS:
        dataset = bench_dataset(name)
        config = bench_config(
            dataset,
            objective="codesign",
            fpga="stratix10",
            gpu="titan_x",
            evaluations=20,
            population=8,
            num_folds=2,
        )
        result = run_search(dataset, config)
        for rank, candidate in enumerate(result.pareto_rows(count=2)):
            rows.append(
                {
                    "dataset": name,
                    "row": rank,
                    "accuracy": round(candidate.accuracy, 4),
                    "s10_outputs_per_s": candidate.fpga_outputs_per_second,
                    "tx_outputs_per_s": candidate.gpu_outputs_per_second,
                    "hidden_layers": "x".join(str(h) for h in candidate.genome.mlp.hidden_layers),
                    "grid": str(candidate.genome.hardware.grid),
                }
            )
    return rows


@pytest.mark.benchmark(group="table4")
def test_table4_pareto_frontier(benchmark, results_dir):
    rows = benchmark.pedantic(_run_table4, rounds=1, iterations=1)
    emit_table(
        rows,
        columns=[
            "dataset",
            "row",
            "accuracy",
            "s10_outputs_per_s",
            "tx_outputs_per_s",
            "hidden_layers",
            "grid",
        ],
        title="Table IV (reproduced): best Pareto-frontier rows, Stratix 10 vs Titan X",
        csv_name="table4_pareto_frontier.csv",
    )
    # Shape 1: the FPGA wins throughput on the majority of reported rows.
    fpga_wins = sum(1 for row in rows if row["s10_outputs_per_s"] > row["tx_outputs_per_s"])
    assert fpga_wins >= len(rows) / 2, f"FPGA won only {fpga_wins}/{len(rows)} rows"

    # Shape 2: within a dataset, the lower-accuracy frontier row has FPGA
    # throughput at least as high as the top-accuracy row (Pareto ordering),
    # and somewhere in the table a small accuracy sacrifice buys a >= 1.5x
    # FPGA throughput gain (the paper's credit-g example shows ~1700x).
    gains = []
    for name in DATASETS:
        dataset_rows = sorted((r for r in rows if r["dataset"] == name), key=lambda r: r["row"])
        if len(dataset_rows) == 2:
            top, tradeoff = dataset_rows
            assert tradeoff["s10_outputs_per_s"] >= top["s10_outputs_per_s"] - 1e-6
            if top["s10_outputs_per_s"] > 0:
                gains.append(tradeoff["s10_outputs_per_s"] / top["s10_outputs_per_s"])
    assert gains and max(gains) >= 1.5


# ---------------------------------------------------------------------------
# NSGA-II vs weighted-sum frontier quality at an equal evaluation budget
# ---------------------------------------------------------------------------


def _run_strategy(dataset, config, strategy: str):
    """Run one search under a named strategy with the harness training budget."""
    search = CoDesignSearch(dataset, config=replace(config, strategy=strategy))
    master = search.build_master()
    master.training_config = BENCH_TRAINING
    try:
        return search.run(evaluator=master)
    finally:
        master.shutdown()


def _run_hypervolume_comparison() -> list[dict]:
    dataset = bench_dataset("credit_g_like")
    config = bench_config(
        dataset,
        objective="codesign",
        fpga="stratix10",
        gpu="titan_x",
        evaluations=20,
        population=8,
        num_folds=2,
    )
    results = {
        strategy: _run_strategy(dataset, config, strategy)
        for strategy in ("evolutionary", "nsga2")
    }
    frontiers = {
        strategy: [(v.values[0], v.values[1]) for v in result.frontier_archive.vectors()]
        for strategy, result in results.items()
    }
    # One shared throughput scale across both runs — per-run normalization
    # would pin each frontier's own best point to 1.0 and make the areas
    # incomparable.
    throughput_max = max(
        (t for points in frontiers.values() for _, t in points), default=0.0
    )
    rows = []
    for strategy, result in results.items():
        points = frontiers[strategy]
        hypervolume = (
            hypervolume_2d([(accuracy, t / throughput_max) for accuracy, t in points])
            if points and throughput_max > 0
            else 0.0
        )
        rows.append(
            {
                "strategy": strategy,
                "evaluations": result.statistics.models_generated,
                "frontier_size": result.statistics.frontier_size,
                "frontier_updates": result.statistics.frontier_updates,
                "hypervolume": round(hypervolume, 4),
                "best_accuracy": round(result.best_accuracy, 4),
            }
        )
    return rows


@pytest.mark.benchmark(group="table4")
def test_nsga2_vs_weighted_sum_hypervolume(benchmark, results_dir):
    """Equal budget, two strategies: NSGA-II must hold the frontier quality.

    The weighted-sum search optimizes a fused scalar, NSGA-II the frontier
    itself; at the same evaluation budget NSGA-II's streamed frontier should
    dominate at least comparable area (hypervolume) and be non-degenerate.
    """
    rows = benchmark.pedantic(_run_hypervolume_comparison, rounds=1, iterations=1)
    emit_table(
        rows,
        columns=[
            "strategy",
            "evaluations",
            "frontier_size",
            "frontier_updates",
            "hypervolume",
            "best_accuracy",
        ],
        title="NSGA-II vs weighted-sum frontier quality (equal 20-evaluation budget)",
        csv_name="table4_hypervolume_nsga2_vs_weighted.csv",
    )
    by_strategy = {row["strategy"]: row for row in rows}
    weighted, nsga2 = by_strategy["evolutionary"], by_strategy["nsga2"]
    assert weighted["evaluations"] == nsga2["evaluations"]  # equal budget
    assert nsga2["frontier_size"] >= 3  # non-degenerate frontier
    assert nsga2["hypervolume"] > 0
    # At this tiny budget the exact winner is landscape noise; the gate is
    # that NSGA-II's frontier area does not *collapse* relative to the
    # scalarized search (the CSV records the exact comparison).
    assert nsga2["hypervolume"] >= 0.5 * weighted["hypervolume"]
