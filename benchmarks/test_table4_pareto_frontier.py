"""Table IV — Best Pareto-frontier rows for joint accuracy + throughput search.

Paper row structure: per dataset, two rows from the accuracy-vs-throughput
Pareto frontier, with outputs/s on a Stratix 10 FPGA and on a Titan X GPU.
The headline shapes:

* in the majority of cases the FPGA achieves higher throughput than the GPU,
  and
* sacrificing a small amount of accuracy (second row) buys a large FPGA
  throughput improvement, while GPU throughput barely moves.

The harness runs a scaled-down co-design search per dataset on the Stratix 10
model and evaluates the same candidates on the Titan X model (the GPU metrics
are produced by the simulation worker during the same search).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from conftest import BENCH_TRAINING, bench_config, bench_dataset, emit_table, run_search
from repro.core.pareto import hypervolume_2d
from repro.core.search import CoDesignSearch

DATASETS = ["credit_g_like", "har_like", "mnist_like"]


def _run_table4() -> list[dict]:
    rows = []
    for name in DATASETS:
        dataset = bench_dataset(name)
        config = bench_config(
            dataset,
            objective="codesign",
            fpga="stratix10",
            gpu="titan_x",
            evaluations=20,
            population=8,
            num_folds=2,
        )
        result = run_search(dataset, config)
        for rank, candidate in enumerate(result.pareto_rows(count=2)):
            rows.append(
                {
                    "dataset": name,
                    "row": rank,
                    "accuracy": round(candidate.accuracy, 4),
                    "s10_outputs_per_s": candidate.fpga_outputs_per_second,
                    "tx_outputs_per_s": candidate.gpu_outputs_per_second,
                    "hidden_layers": "x".join(str(h) for h in candidate.genome.mlp.hidden_layers),
                    "grid": str(candidate.genome.hardware.grid),
                }
            )
    return rows


@pytest.mark.benchmark(group="table4")
def test_table4_pareto_frontier(benchmark, results_dir):
    rows = benchmark.pedantic(_run_table4, rounds=1, iterations=1)
    emit_table(
        rows,
        columns=[
            "dataset",
            "row",
            "accuracy",
            "s10_outputs_per_s",
            "tx_outputs_per_s",
            "hidden_layers",
            "grid",
        ],
        title="Table IV (reproduced): best Pareto-frontier rows, Stratix 10 vs Titan X",
        csv_name="table4_pareto_frontier.csv",
    )
    # Shape 1: the FPGA wins throughput on the majority of reported rows.
    fpga_wins = sum(1 for row in rows if row["s10_outputs_per_s"] > row["tx_outputs_per_s"])
    assert fpga_wins >= len(rows) / 2, f"FPGA won only {fpga_wins}/{len(rows)} rows"

    # Shape 2: within a dataset, the lower-accuracy frontier row has FPGA
    # throughput at least as high as the top-accuracy row (Pareto ordering),
    # and somewhere in the table a small accuracy sacrifice buys a >= 1.5x
    # FPGA throughput gain (the paper's credit-g example shows ~1700x).
    gains = []
    for name in DATASETS:
        dataset_rows = sorted((r for r in rows if r["dataset"] == name), key=lambda r: r["row"])
        if len(dataset_rows) == 2:
            top, tradeoff = dataset_rows
            assert tradeoff["s10_outputs_per_s"] >= top["s10_outputs_per_s"] - 1e-6
            if top["s10_outputs_per_s"] > 0:
                gains.append(tradeoff["s10_outputs_per_s"] / top["s10_outputs_per_s"])
    assert gains and max(gains) >= 1.5


# ---------------------------------------------------------------------------
# NSGA-II vs weighted-sum frontier quality at an equal evaluation budget
# ---------------------------------------------------------------------------


def _run_strategy(dataset, config, strategy: str):
    """Run one search under a named strategy with the harness training budget."""
    search = CoDesignSearch(dataset, config=replace(config, strategy=strategy))
    master = search.build_master()
    master.training_config = BENCH_TRAINING
    try:
        return search.run(evaluator=master)
    finally:
        master.shutdown()


#: Seeds the hypervolume comparison averages over: one 20-evaluation run is
#: dominated by landscape noise, so a single-seed winner is a coin flip.
HYPERVOLUME_SEEDS = (0, 1, 2)


def _run_hypervolume_comparison() -> list[dict]:
    dataset = bench_dataset("credit_g_like")
    rows = []
    per_strategy: dict[str, list[dict]] = {"evolutionary": [], "nsga2": []}
    for seed in HYPERVOLUME_SEEDS:
        config = bench_config(
            dataset,
            objective="codesign",
            fpga="stratix10",
            gpu="titan_x",
            evaluations=20,
            population=8,
            num_folds=2,
            seed=seed,
        )
        # Matched selection pressure: the scalarized search runs a 3-way
        # tournament (the engine default), so NSGA-II gets the same
        # tournament size here instead of its classic binary default —
        # otherwise the comparison confounds ranking scheme with pressure.
        config = replace(config, nsga2_tournament_size=3)
        results = {
            strategy: _run_strategy(dataset, config, strategy)
            for strategy in ("evolutionary", "nsga2")
        }
        frontiers = {
            strategy: [(v.values[0], v.values[1]) for v in result.frontier_archive.vectors()]
            for strategy, result in results.items()
        }
        # One shared throughput scale across the seed's two runs — per-run
        # normalization would pin each frontier's own best point to 1.0 and
        # make the areas incomparable.
        throughput_max = max(
            (t for points in frontiers.values() for _, t in points), default=0.0
        )
        for strategy, result in results.items():
            points = frontiers[strategy]
            hypervolume = (
                hypervolume_2d([(accuracy, t / throughput_max) for accuracy, t in points])
                if points and throughput_max > 0
                else 0.0
            )
            row = {
                "strategy": strategy,
                "seed": seed,
                "evaluations": result.statistics.models_generated,
                "frontier_size": result.statistics.frontier_size,
                "frontier_updates": result.statistics.frontier_updates,
                "hypervolume": round(hypervolume, 4),
                "best_accuracy": round(result.best_accuracy, 4),
            }
            per_strategy[strategy].append(row)
            rows.append(row)
    for strategy, seed_rows in per_strategy.items():
        count = len(seed_rows)
        rows.append(
            {
                "strategy": strategy,
                "seed": "mean",
                "evaluations": round(sum(r["evaluations"] for r in seed_rows) / count, 1),
                "frontier_size": round(sum(r["frontier_size"] for r in seed_rows) / count, 1),
                "frontier_updates": round(
                    sum(r["frontier_updates"] for r in seed_rows) / count, 1
                ),
                "hypervolume": round(sum(r["hypervolume"] for r in seed_rows) / count, 4),
                "best_accuracy": round(
                    sum(r["best_accuracy"] for r in seed_rows) / count, 4
                ),
            }
        )
    return rows


@pytest.mark.benchmark(group="table4")
def test_nsga2_vs_weighted_sum_hypervolume(benchmark, results_dir):
    """Equal budget, two strategies: NSGA-II must hold the frontier quality.

    The weighted-sum search optimizes a fused scalar, NSGA-II the frontier
    itself; at the same evaluation budget NSGA-II's streamed frontier should
    dominate at least comparable area (hypervolume) and be non-degenerate.

    History: NSGA-II used to lose this comparison badly (0.68 vs 0.83 on the
    old single-seed CSV).  The cause was selection pressure, not ranking: the
    NSGA-II path hardcoded a *binary* tournament while the scalarized search
    used the engine's configured ``tournament_size`` (3).  Generational
    NSGA-II gets its pressure from mu+lambda survival, but this steady-state
    loop replaces one member per step, so with population 8 a 2-member
    sample rarely contains the (2-3 member) first front at all and most
    offspring were bred from dominated parents.  NSGA-II pressure is now
    configurable (``nsga2_tournament_size``, default still the classic
    binary tournament) and this comparison runs both strategies at the same
    3-way tournament so it measures ranking scheme, not pressure; it is
    seed-averaged because a single 20-evaluation run is landscape noise.
    """
    rows = benchmark.pedantic(_run_hypervolume_comparison, rounds=1, iterations=1)
    emit_table(
        rows,
        columns=[
            "strategy",
            "seed",
            "evaluations",
            "frontier_size",
            "frontier_updates",
            "hypervolume",
            "best_accuracy",
        ],
        title="NSGA-II vs weighted-sum frontier quality (equal 20-evaluation budget)",
        csv_name="table4_hypervolume_nsga2_vs_weighted.csv",
    )
    seed_rows = [row for row in rows if row["seed"] != "mean"]
    means = {row["strategy"]: row for row in rows if row["seed"] == "mean"}
    weighted, nsga2 = means["evolutionary"], means["nsga2"]
    for seed in HYPERVOLUME_SEEDS:
        pair = {r["strategy"]: r for r in seed_rows if r["seed"] == seed}
        assert pair["evolutionary"]["evaluations"] == pair["nsga2"]["evaluations"]
        assert pair["nsga2"]["frontier_size"] >= 2  # never a single-point frontier
        assert pair["nsga2"]["hypervolume"] > 0
    # Somewhere in the sweep NSGA-II produces a genuinely multi-point
    # frontier (>= 3 mutually non-dominated designs).
    assert max(r["frontier_size"] for r in seed_rows if r["strategy"] == "nsga2") >= 3
    # The tightened gate: with matched selection pressure, NSGA-II holds the
    # scalarized search's seed-averaged frontier area (was >= 0.5x before
    # the tournament-size fix).
    assert nsga2["hypervolume"] >= 0.9 * weighted["hypervolume"]
