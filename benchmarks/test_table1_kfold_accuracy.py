"""Table I — Top k-fold accuracy for the OpenML-style datasets.

Paper row structure: for each of Credit-g, HAR, Phishing and Bioresponse,
the best previously-published MLP accuracy vs the accuracy found by the ECAD
evolutionary search (10-fold protocol).  Here the "previous MLP" baseline is a
fixed one-hidden-layer, 100-neuron ReLU network (the sklearn ``MLPClassifier``
topology the paper's tables quote), trained with the same budget, and the
ECAD column is a scaled-down accuracy-only evolutionary search.

Expected shape (as in the paper): the evolved MLP matches or beats the fixed
baseline on every dataset.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import dataset_entry

from conftest import baseline_mlp_accuracy, bench_config, bench_dataset, emit_table, run_search

DATASETS = ["credit_g_like", "har_like", "phishing_like", "bioresponse_like"]

#: Accuracy slack allowed before the "ECAD >= baseline" shape check fails.
#: The harness uses tiny data and few epochs, so some noise is expected.
TOLERANCE = 0.03


def _run_table1() -> list[dict]:
    rows = []
    for name in DATASETS:
        dataset = bench_dataset(name)
        entry = dataset_entry(name)
        baseline = baseline_mlp_accuracy(dataset, num_folds=3)
        config = bench_config(dataset, objective="accuracy", evaluations=14, num_folds=3)
        result = run_search(dataset, config)
        rows.append(
            {
                "dataset": name,
                "paper_top_mlp_acc": entry.paper_top_accuracy_mlp,
                "paper_ecad_acc": entry.paper_ecad_accuracy,
                "baseline_mlp_acc": round(baseline, 4),
                "ecad_mlp_acc": round(result.best_accuracy, 4),
                "models_evaluated": result.statistics.models_evaluated,
            }
        )
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_kfold_accuracy(benchmark, results_dir):
    rows = benchmark.pedantic(_run_table1, rounds=1, iterations=1)
    emit_table(
        rows,
        columns=[
            "dataset",
            "paper_top_mlp_acc",
            "paper_ecad_acc",
            "baseline_mlp_acc",
            "ecad_mlp_acc",
            "models_evaluated",
        ],
        title="Table I (reproduced): top k-fold accuracy, ECAD vs fixed-MLP baseline",
        csv_name="table1_kfold_accuracy.csv",
    )
    # Shape check: the evolved MLP is at least as good as the fixed baseline
    # on every dataset (allowing small noise from the scaled-down harness).
    for row in rows:
        assert row["ecad_mlp_acc"] >= row["baseline_mlp_acc"] - TOLERANCE, row
    # And on the majority of datasets it strictly improves or ties.
    wins = sum(1 for row in rows if row["ecad_mlp_acc"] >= row["baseline_mlp_acc"])
    assert wins >= len(rows) - 1
