"""Ablation — persistent evaluation store: warm repeated sweeps + bit-identity.

The ECAD cache amortizes candidate evaluations within one run; the persistent
store amortizes them *across* runs.  This benchmark measures both promises:

* **Warm repeat speedup** — the same two-cell experiment sweep (real NN
  training on the Credit-g analogue) is executed cold (empty store, every
  candidate trained) and then repeated into a fresh output directory against
  the now-warm store.  The warm pass must be at least 2x faster end to end,
  because every evaluation is answered by the store instead of re-training.
* **Cold bit-identity** — enabling the store must never change what a search
  computes: a seeded run with a cold store attached produces exactly the
  same evaluation history (genomes and accuracies) and the same best
  candidate as the identical run without a store.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import ECADConfig, StoreConfig
from repro.core.search import CoDesignSearch
from repro.datasets.registry import load_dataset
from repro.experiment import ExperimentRunner, ExperimentSpec

from conftest import emit_table

#: Sweep shape: one dataset x one objective x two seeds, real training.
SWEEP_SEEDS = (0, 1)
SWEEP_OVERRIDES = {
    "population_size": 4,
    "max_evaluations": 10,
    "training_epochs": 4,
}
DATASET_SCALE = 0.3


def _sweep_spec(store_path: str) -> ExperimentSpec:
    return ExperimentSpec(
        name="store_warmstart_ablation",
        datasets=("credit-g",),
        objectives=("codesign",),
        seeds=SWEEP_SEEDS,
        scale=DATASET_SCALE,
        store_path=store_path,
        overrides=dict(SWEEP_OVERRIDES),
    )


def _run_sweep(store_path: str, output_dir) -> tuple[float, list]:
    runner = ExperimentRunner(_sweep_spec(store_path), output_dir=output_dir)
    start = time.perf_counter()
    report = runner.run(resume=False)
    elapsed = time.perf_counter() - start
    assert not report.failed
    return elapsed, report.artifacts


def _sweep_row(label: str, elapsed: float, artifacts: list) -> dict:
    return {
        "variant": label,
        "wall_clock_seconds": round(elapsed, 4),
        "cells": len(artifacts),
        "models_evaluated": sum(a.statistics["models_evaluated"] for a in artifacts),
        "store_hits": sum(a.statistics["store_hits"] for a in artifacts),
        "best_accuracy": round(max(a.best_accuracy for a in artifacts), 4),
    }


@pytest.mark.benchmark(group="ablation_store_warmstart")
def test_repeated_sweep_with_warm_store(benchmark, results_dir, tmp_path):
    store_path = str(tmp_path / "store.sqlite")

    def comparison() -> list[dict]:
        cold_elapsed, cold_artifacts = _run_sweep(store_path, tmp_path / "cold")
        warm_elapsed, warm_artifacts = _run_sweep(store_path, tmp_path / "warm")
        return [
            _sweep_row("cold_store", cold_elapsed, cold_artifacts),
            _sweep_row("warm_store", warm_elapsed, warm_artifacts),
        ]

    rows = benchmark.pedantic(comparison, rounds=1, iterations=1)
    cold, warm = rows[0], rows[1]
    speedup = cold["wall_clock_seconds"] / max(warm["wall_clock_seconds"], 1e-9)
    for row in rows:
        row["speedup_vs_cold"] = round(
            cold["wall_clock_seconds"] / max(row["wall_clock_seconds"], 1e-9), 2
        )
    emit_table(
        rows,
        columns=[
            "variant",
            "wall_clock_seconds",
            "cells",
            "models_evaluated",
            "store_hits",
            "best_accuracy",
            "speedup_vs_cold",
        ],
        title="Ablation: repeated sweep against a warm evaluation store",
        csv_name="ablation_store_warmstart.csv",
    )

    # The cold pass trained everything; the warm pass trained nothing.
    assert cold["models_evaluated"] > 0
    assert cold["store_hits"] == 0
    assert warm["models_evaluated"] == 0
    assert warm["store_hits"] > 0

    # Results are unchanged — only the time it took to get them.
    assert warm["best_accuracy"] == cold["best_accuracy"]

    # The headline claim: a warm store makes the repeated sweep >= 2x faster.
    assert speedup >= 2.0, f"expected >=2x warm-store speedup, measured {speedup:.2f}x"


def test_cold_store_run_is_bit_identical(tmp_path):
    """A seeded run computes exactly the same search with or without a store."""
    dataset = load_dataset("credit-g", seed=0, scale=DATASET_SCALE)

    def run(store_path: str):
        config = ECADConfig.template_for_dataset(
            dataset,
            seed=0,
            store=StoreConfig(path=store_path),
            **SWEEP_OVERRIDES,
        )
        return CoDesignSearch(dataset, config=config).run()

    with_store = run(str(tmp_path / "identity.sqlite"))
    without_store = run("")

    history_with = [
        (e.genome.cache_key(), e.accuracy) for e in with_store.history.evaluations()
    ]
    history_without = [
        (e.genome.cache_key(), e.accuracy) for e in without_store.history.evaluations()
    ]
    assert history_with == history_without
    assert (
        with_store.best_fitness_candidate.genome
        == without_store.best_fitness_candidate.genome
    )
    assert with_store.best_accuracy == without_store.best_accuracy
    assert (
        with_store.statistics.models_evaluated
        == without_store.statistics.models_evaluated
    )
