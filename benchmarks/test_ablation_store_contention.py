"""Ablation — sharded evaluation store: concurrent writers, 1 vs N shards.

The evaluation store turns into a bottleneck when several co-design jobs
share one file: SQLite allows exactly one writer at a time, so every commit
from every process queues on the same lock (and, past the busy timeout,
fails outright — the write-loss bug this PR's flush retry path closes).
The sharded layout routes each problem digest to its own SQLite file,
giving concurrent jobs on different problems independent writer locks.

This benchmark measures that promise with the write pattern the search
actually produces: M worker processes x K writer threads, each flushing one
evaluation result per generation epoch, so the whole fleet's commits land
on the store in synchronized bursts.  Two metrics are compared between a
shared single-file store and a 4-shard store whose problems spread evenly
across shards:

* **aggregate write throughput** — rows per second of store-blocked time on
  the slowest writer (the time stolen from evaluation work).  With
  independent writer locks this scales near-linearly with shard count on
  multi-core hosts (>= 2.5x at 4 shards; the CI floor is 2x).  A host with
  a single usable CPU serializes the writers' Python work itself, capping
  the measurable gain, so the floor drops to 1.2x there.
* **p99 write stall** — the tail commit latency a writer sees.  Lock
  convoys and busy-handler sleeps push the single-file p99 an order of
  magnitude above the uncontended cost; shards must cut it at least 2x on
  any host.  This is the contention signature that survives even a
  single-CPU runner.

Every row is also accounted for: both variants finish with exactly
``processes x threads x epochs`` rows — contention may slow writers down,
but it must never lose writes.
"""

from __future__ import annotations

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.core.candidate import CandidateEvaluation
from repro.core.genome import CoDesignSearchSpace
from repro.hardware.results import HardwareMetrics
from repro.store import EvaluationStore, StoreBackedCache, shard_index

from conftest import emit_table

#: Contention shape: PROCESSES x THREADS writers, one row per epoch each.
PROCESSES = 4
THREADS = 2
EPOCHS = 200
WARMUP_EPOCHS = 20
EPOCH_SECONDS = 0.005
SHARDS = 4

#: One problem per writer thread, hex-prefixed so the workload spreads
#: evenly across SHARDS files (writer i's problem lands on shard i % SHARDS).
PROBLEMS = tuple(
    f"{index:08x}-contention-problem" for index in range(PROCESSES * THREADS)
)


def _fake_evaluation(genome, accuracy: float) -> CandidateEvaluation:
    metrics = HardwareMetrics(
        device_name="fpga",
        batch_size=1024,
        potential_gflops=100.0,
        effective_gflops=10.0,
        total_time_seconds=1e-3,
        outputs_per_second=1e6,
        latency_seconds=1e-4,
        efficiency=0.1,
    )
    return CandidateEvaluation(
        genome=genome,
        accuracy=accuracy,
        parameter_count=genome.mlp.total_hidden_neurons * 10,
        fpga_metrics=metrics,
        evaluation_seconds=0.01,
    )


def _distinct_evaluations(count: int, seed: int) -> list[CandidateEvaluation]:
    space = CoDesignSearchSpace()
    rng = np.random.default_rng(seed)
    evaluations, keys = [], set()
    while len(evaluations) < count:
        genome = space.random_genome(rng)
        if genome.cache_key() in keys:
            continue
        keys.add(genome.cache_key())
        evaluations.append(_fake_evaluation(genome, 0.9 - 1e-4 * len(evaluations)))
    return evaluations


def _contended_writer(path, worker, barrier, queue):
    """Child-process body: K threads each flush one row per generation epoch.

    Rows are generated *before* the barrier, and every writer aligns its
    flush to the same wall-clock epoch grid, so the timed region reproduces
    the fleet-wide commit bursts a generation boundary produces.  Per-write
    stall times (after warm-up) are reported back to the parent.
    """
    import threading

    batches = [
        _distinct_evaluations(EPOCHS + WARMUP_EPOCHS, seed=worker * 100 + thread)
        for thread in range(THREADS)
    ]
    store = EvaluationStore(str(path), timeout_seconds=5.0)
    caches = [
        StoreBackedCache(
            store,
            PROBLEMS[worker * THREADS + thread],
            write_batch_size=1,
            write_retries=10,
            retry_backoff_seconds=0.02,
        )
        for thread in range(THREADS)
    ]
    stalls = [[] for _ in range(THREADS)]

    def body(thread: int) -> None:
        cache = caches[thread]
        for epoch, evaluation in enumerate(batches[thread]):
            now = time.time()
            time.sleep((EPOCH_SECONDS - now % EPOCH_SECONDS) % EPOCH_SECONDS)
            start = time.perf_counter()
            cache.store(evaluation)  # write_batch_size=1 -> flushes inline
            elapsed = time.perf_counter() - start
            if epoch >= WARMUP_EPOCHS:
                stalls[thread].append(elapsed)
        while cache.pending_writes():
            cache.flush()

    workers = [
        threading.Thread(target=body, args=(thread,)) for thread in range(THREADS)
    ]
    barrier.wait()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    store.close()
    dropped = sum(cache.store_statistics.write_errors for cache in caches)
    queue.put((stalls, dropped))


def _measure(path, shards: int) -> dict:
    """One contended run: spawn the writer fleet, collect stall times."""
    EvaluationStore(str(path), shards=shards).close()
    barrier = multiprocessing.Barrier(PROCESSES)
    queue = multiprocessing.Queue()
    processes = [
        multiprocessing.Process(
            target=_contended_writer, args=(str(path), worker, barrier, queue)
        )
        for worker in range(PROCESSES)
    ]
    for process in processes:
        process.start()
    per_writer, dropped = [], 0
    for _ in processes:
        stalls, writer_dropped = queue.get(timeout=300)
        per_writer.extend(stalls)
        dropped += writer_dropped
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0
    with EvaluationStore(str(path), readonly=True) as store:
        stored = store.count()
    flat = np.array([stall for writer in per_writer for stall in writer])
    timed_rows = PROCESSES * THREADS * EPOCHS
    blocked = max(sum(writer) for writer in per_writer)
    return {
        "variant": f"{shards}_shard{'s' if shards > 1 else ''}",
        "shards": shards,
        "writers": f"{PROCESSES}x{THREADS}",
        "rows": PROCESSES * THREADS * (EPOCHS + WARMUP_EPOCHS),
        "rows_stored": stored,
        "rows_dropped": dropped,
        "store_blocked_seconds": round(blocked, 4),
        "rows_per_blocked_second": round(timed_rows / blocked, 1),
        "p50_stall_ms": round(float(np.percentile(flat, 50)) * 1e3, 3),
        "p99_stall_ms": round(float(np.percentile(flat, 99)) * 1e3, 3),
    }


@pytest.mark.benchmark(group="ablation_store_contention")
def test_concurrent_writers_scale_with_shards(benchmark, results_dir, tmp_path):
    # Sanity: the crafted digests spread evenly — SHARDS problems per shard.
    spread = [shard_index(p, SHARDS) for p in PROBLEMS]
    assert sorted(spread) == sorted(list(range(SHARDS)) * (len(PROBLEMS) // SHARDS))

    def comparison() -> list[dict]:
        single = _measure(tmp_path / "single.sqlite", shards=1)
        sharded = _measure(tmp_path / "sharded", shards=SHARDS)
        return [single, sharded]

    rows = benchmark.pedantic(comparison, rounds=1, iterations=1)
    single, sharded = rows[0], rows[1]
    throughput_gain = (
        sharded["rows_per_blocked_second"] / single["rows_per_blocked_second"]
    )
    stall_gain = single["p99_stall_ms"] / sharded["p99_stall_ms"]
    for row in rows:
        row["throughput_vs_single"] = round(
            row["rows_per_blocked_second"] / single["rows_per_blocked_second"], 2
        )
    emit_table(
        rows,
        columns=[
            "variant",
            "shards",
            "writers",
            "rows",
            "rows_stored",
            "rows_dropped",
            "store_blocked_seconds",
            "rows_per_blocked_second",
            "p50_stall_ms",
            "p99_stall_ms",
            "throughput_vs_single",
        ],
        title="Ablation: concurrent writers against 1 vs 4 store shards",
        csv_name="ablation_store_contention.csv",
    )
    print(
        f"4-shard gains vs single file: {throughput_gain:.2f}x write throughput, "
        f"{stall_gain:.2f}x lower p99 write stall"
    )

    # Contention may slow writers down, but it must never lose rows: every
    # write either committed or is still queued for retry — never dropped.
    for row in rows:
        assert row["rows_stored"] == row["rows"], row
        assert row["rows_dropped"] == 0, row

    # The contention signature: lock convoys on the shared file blow up the
    # tail commit latency; independent per-shard writer locks cut the p99
    # stall at least in half on any host (measured ~4-10x).
    assert stall_gain >= 2.0, (
        f"expected >=2x lower p99 write stall at {SHARDS} shards, "
        f"measured {stall_gain:.2f}x"
    )

    # The headline scaling claim: aggregate write throughput grows
    # near-linearly with shard count (expected >= 2.5x at 4 shards, CI
    # floor 2x).  A single-CPU host serializes the writers' Python work
    # itself, so no store layout can scale throughput there — the floor
    # drops to the contention-overhead savings alone.
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    floor = 2.0 if cores >= 2 else 1.2
    assert throughput_gain >= floor, (
        f"expected >={floor}x write throughput at {SHARDS} shards "
        f"({cores} usable cores), measured {throughput_gain:.2f}x"
    )
