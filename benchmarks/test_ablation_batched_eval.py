"""Ablation — batched population evaluation vs per-candidate dispatch.

PR 6 makes the population, not the candidate, the unit of evaluation: the
engine fuses its in-flight window into ``evaluate_batch`` calls, workers group
same-topology candidates into one batched GEMM training run, datasets are
preprocessed once per process, and the FPGA model scores whole candidate
batches in one vectorized sweep.  This benchmark measures the payoff in two
parts:

1. **Engine throughput** on the async-throughput workload (same space, budget,
   seed and simulated evaluation latency as
   ``test_ablation_async_throughput.py``): serial vs threads_x4 per-candidate
   dispatch vs the batched pipeline.  The batch evaluator pays the fixed
   per-dispatch latency once per batch plus a small per-candidate marginal
   cost — the cost structure the fused GEMM/vectorized-hardware path creates.
   Floor: >=2x ``evaluations_per_second`` over the same-run threads_x4
   baseline (target, reported in the CSV: >=3x).
2. **Real fused training** on ``mnist_like`` — the paper's most expensive
   dataset per evaluation — where :class:`SimulationWorker.evaluate_batch`
   must produce *bit-identical* accuracies to looped ``evaluate`` while
   spending less wall clock.

Both parts also assert bit-identity: batching is a scheduling change, never a
numerics change.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.candidate import CandidateEvaluation
from repro.core.engine import EngineConfig, EngineResult, EvolutionaryEngine
from repro.core.fitness import FitnessEvaluator, FitnessObjective
from repro.core.genome import CoDesignGenome, CoDesignSearchSpace, HardwareGenome, MLPGenome
from repro.hardware.device import ARRIA10_GX1150
from repro.hardware.results import HardwareMetrics
from repro.hardware.systolic import GridConfig
from repro.nn.training import TrainingConfig
from repro.workers.base import EvaluationRequest
from repro.workers.simulation import SimulationWorker

from conftest import bench_dataset, emit_table

BUDGET = 48
POPULATION = 8
PARALLELISM = 4
EVAL_BATCH = 8
#: Fixed per-dispatch latency (request setup, preprocessing, model spin-up).
#: Identical to the async-throughput ablation so the threads_x4 rows match.
EVAL_LATENCY_SECONDS = 0.02
#: Marginal per-candidate cost inside one fused batch: the incremental GEMM
#: rows added to an already-running batched training pass.
BATCH_MARGINAL_SECONDS = 0.001
OBJECTIVES = [FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()]


def _score(genome: CoDesignGenome) -> CandidateEvaluation:
    """The deterministic landscape (no latency), shared by both dispatch paths."""
    neurons = genome.mlp.total_hidden_neurons
    accuracy = min(0.99, 0.55 + 0.4 * (1.0 - np.exp(-neurons / 96.0)))
    compute = genome.hardware.grid.dsp_blocks_used
    throughput = 4e7 * compute / (compute + 256.0) / (1.0 + neurons / 64.0)
    metrics = HardwareMetrics(
        device_name="synthetic_fpga",
        batch_size=genome.hardware.batch_size,
        potential_gflops=2.0 * compute * 0.25,
        effective_gflops=min(2.0 * compute * 0.25, throughput * neurons * 2e-9),
        total_time_seconds=genome.hardware.batch_size / throughput,
        outputs_per_second=throughput,
        latency_seconds=1e-5,
        efficiency=min(1.0, throughput / 4e7),
    )
    return CandidateEvaluation(
        genome=genome,
        accuracy=accuracy,
        parameter_count=neurons * 10,
        fpga_metrics=metrics,
        evaluation_seconds=EVAL_LATENCY_SECONDS,
    )


class BatchAwareEvaluator:
    """Synthetic evaluator with the fused path's cost structure.

    Per-candidate dispatch pays the full fixed latency every time; a batch
    pays it once plus a small marginal cost per extra candidate.  The sleep
    releases the GIL exactly like numpy's BLAS kernels do.
    """

    def __call__(self, genome: CoDesignGenome) -> CandidateEvaluation:
        time.sleep(EVAL_LATENCY_SECONDS)
        return _score(genome)

    def evaluate_batch(self, genomes: list[CoDesignGenome]) -> list[CandidateEvaluation]:
        time.sleep(EVAL_LATENCY_SECONDS + BATCH_MARGINAL_SECONDS * (len(genomes) - 1))
        return [_score(genome) for genome in genomes]


def _run_engine(eval_parallelism: int, eval_batch_size: int) -> tuple[EngineResult, float]:
    engine = EvolutionaryEngine(
        space=CoDesignSearchSpace(),
        evaluator=BatchAwareEvaluator(),
        fitness=FitnessEvaluator(OBJECTIVES),
        config=EngineConfig(
            population_size=POPULATION,
            max_evaluations=BUDGET,
            seed=5,
            eval_parallelism=eval_parallelism,
            eval_batch_size=eval_batch_size,
        ),
        device=ARRIA10_GX1150,
    )
    start = time.perf_counter()
    result = engine.run()
    return result, time.perf_counter() - start


def _engine_rows() -> list[dict]:
    rows = []
    variants = (
        ("serial", 1, 1),
        (f"threads_x{PARALLELISM}", PARALLELISM, 1),
        (f"batched_x{PARALLELISM}x{EVAL_BATCH}", PARALLELISM, EVAL_BATCH),
    )
    for label, parallelism, batch_size in variants:
        result, wall_clock = _run_engine(parallelism, batch_size)
        stats = result.statistics
        # Bit-identity: the batched pipeline must score every genome exactly
        # as the per-candidate landscape does.
        for evaluation in result.history.evaluations():
            reference = _score(evaluation.genome)
            assert evaluation.accuracy == reference.accuracy
            assert (
                evaluation.fpga_metrics.outputs_per_second
                == reference.fpga_metrics.outputs_per_second
            )
        rows.append(
            {
                "variant": label,
                "eval_parallelism": parallelism,
                "eval_batch_size": batch_size,
                "wall_clock_seconds": round(wall_clock, 4),
                "evaluations_per_second": round(stats.evaluations_per_second, 1),
                "peak_in_flight": stats.peak_in_flight,
                "models_generated": stats.models_generated,
                "models_evaluated": stats.models_evaluated,
                "cache_hits": stats.cache_hits,
                "best_accuracy": round(max(e.accuracy for e in result.history.evaluations()), 4),
            }
        )
    return rows


def _mnist_rows() -> list[dict]:
    """Real fused-GEMM training on the paper's most expensive dataset."""
    dataset = bench_dataset("mnist_like")
    training = TrainingConfig(
        epochs=4, batch_size=64, learning_rate=0.01,
        early_stopping_patience=0, validation_fraction=0.0,
    )
    grid = GridConfig(rows=8, columns=8, interleave_rows=4, interleave_columns=4, vector_width=4)
    genomes = [
        CoDesignGenome(
            mlp=MLPGenome(hidden_layers=(32, 16), activations=("relu", "relu")),
            hardware=HardwareGenome(grid=grid, batch_size=256),
            gpu_batch_size=128,
        )
        for _ in range(POPULATION)
    ]
    requests = [
        EvaluationRequest(
            genome=genome,
            dataset=dataset,
            evaluation_protocol="1-fold",
            training_config=training,
            seed=1000 + index,
        )
        for index, genome in enumerate(genomes)
    ]
    worker = SimulationWorker(gpu=None, measure_gpu=False)

    start = time.perf_counter()
    looped = [worker.evaluate(request) for request in requests]
    looped_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = worker.evaluate_batch(requests)
    batched_seconds = time.perf_counter() - start

    # Bit-identity on the real path: fused training is a scheduling change.
    for batched_report, looped_report in zip(batched, looped):
        assert batched_report.accuracy == looped_report.accuracy
        assert batched_report.accuracy_std == looped_report.accuracy_std
        assert not batched_report.failed and not looped_report.failed

    return [
        {
            "path": "per_candidate",
            "dataset": dataset.name,
            "candidates": len(requests),
            "wall_clock_seconds": round(looped_seconds, 4),
            "evaluations_per_second": round(len(requests) / looped_seconds, 2),
            "speedup": 1.0,
        },
        {
            "path": "batched",
            "dataset": dataset.name,
            "candidates": len(requests),
            "wall_clock_seconds": round(batched_seconds, 4),
            "evaluations_per_second": round(len(requests) / batched_seconds, 2),
            "speedup": round(looped_seconds / max(batched_seconds, 1e-9), 2),
        },
    ]


@pytest.mark.benchmark(group="ablation_batched_eval")
def test_ablation_batched_eval(benchmark, results_dir):
    engine_rows, mnist_rows = benchmark.pedantic(
        lambda: (_engine_rows(), _mnist_rows()), rounds=1, iterations=1
    )
    serial, threaded, batched = engine_rows
    for row in engine_rows:
        row["speedup_vs_threads"] = round(
            row["evaluations_per_second"] / max(threaded["evaluations_per_second"], 1e-9), 2
        )
    emit_table(
        engine_rows,
        columns=[
            "variant",
            "eval_parallelism",
            "eval_batch_size",
            "wall_clock_seconds",
            "evaluations_per_second",
            "peak_in_flight",
            "models_generated",
            "models_evaluated",
            "cache_hits",
            "best_accuracy",
            "speedup_vs_threads",
        ],
        title="Ablation: batched population evaluation vs per-candidate dispatch",
        csv_name="ablation_batched_eval.csv",
    )
    emit_table(
        mnist_rows,
        columns=[
            "path",
            "dataset",
            "candidates",
            "wall_clock_seconds",
            "evaluations_per_second",
            "speedup",
        ],
        title="Fused GEMM training on mnist_like (bit-identical accuracies)",
        csv_name="ablation_batched_eval_mnist.csv",
    )

    # Budget accounting is unchanged by batching.
    for row in engine_rows:
        assert row["models_generated"] == BUDGET
        assert row["models_evaluated"] + row["cache_hits"] == BUDGET
    assert serial["peak_in_flight"] == 1
    assert batched["peak_in_flight"] >= EVAL_BATCH

    # CI floor: >=2x evaluations/second over the same-run threads_x4 baseline
    # (the target, visible in the CSV, is >=3x).
    floor = 2.0 * threaded["evaluations_per_second"]
    assert batched["evaluations_per_second"] >= floor, (
        f"expected >=2x threads_x{PARALLELISM} "
        f"({threaded['evaluations_per_second']}/s), "
        f"measured {batched['evaluations_per_second']}/s"
    )

    # The real fused path on mnist_like must not be slower than the loop.
    assert mnist_rows[1]["speedup"] >= 1.0
