"""Ablation — engine design choices: steady-state vs generational vs random,
and the effect of the evaluation cache.

DESIGN.md calls out two design choices of the ECAD engine worth ablating:

* the steady-state replacement model (versus a generational GA and a pure
  random search over the same space and budget), and
* the evaluation cache that avoids re-evaluating identical NNA/HW candidates
  (Table III's "duplicates are not evaluated twice").

To keep the ablation about the *engine* rather than the training substrate, a
deterministic synthetic fitness landscape is used (accuracy saturating with
network size, FPGA throughput decreasing with network size and increasing with
grid compute), so thousands of candidate evaluations cost microseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.candidate import CandidateEvaluation
from repro.core.engine import EngineConfig, EvolutionaryEngine
from repro.core.fitness import FitnessEvaluator, FitnessObjective
from repro.core.genome import CoDesignGenome, CoDesignSearchSpace
from repro.core.search import RandomSearch
from repro.hardware.device import ARRIA10_GX1150
from repro.hardware.results import HardwareMetrics

from conftest import emit_table

BUDGET = 120
OBJECTIVES = [FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()]


def synthetic_evaluator(genome: CoDesignGenome) -> CandidateEvaluation:
    """Deterministic fitness landscape with a real accuracy/throughput trade-off."""
    neurons = genome.mlp.total_hidden_neurons
    accuracy = min(0.99, 0.55 + 0.4 * (1.0 - np.exp(-neurons / 96.0)))
    compute = genome.hardware.grid.dsp_blocks_used
    throughput = 4e7 * compute / (compute + 256.0) / (1.0 + neurons / 64.0)
    metrics = HardwareMetrics(
        device_name="synthetic_fpga",
        batch_size=genome.hardware.batch_size,
        potential_gflops=2.0 * compute * 0.25,
        effective_gflops=min(2.0 * compute * 0.25, throughput * neurons * 2e-9),
        total_time_seconds=genome.hardware.batch_size / throughput,
        outputs_per_second=throughput,
        latency_seconds=1e-5,
        efficiency=min(1.0, throughput / 4e7),
    )
    return CandidateEvaluation(
        genome=genome,
        accuracy=accuracy,
        parameter_count=neurons * 10,
        fpga_metrics=metrics,
        evaluation_seconds=1e-6,
    )


def _best_scores(history_evaluations) -> tuple[float, float]:
    best_accuracy = max(e.accuracy for e in history_evaluations)
    best_throughput = max(e.fpga_outputs_per_second for e in history_evaluations)
    return best_accuracy, best_throughput


def _run_variants() -> list[dict]:
    space = CoDesignSearchSpace()
    rows = []
    for label, steady_state, avoid_duplicates in (
        ("steady_state", True, True),
        ("steady_state_no_cache_dedup", True, False),
        ("generational", False, True),
    ):
        engine = EvolutionaryEngine(
            space=space,
            evaluator=synthetic_evaluator,
            fitness=FitnessEvaluator(OBJECTIVES),
            config=EngineConfig(
                population_size=12,
                max_evaluations=BUDGET,
                seed=3,
                steady_state=steady_state,
                avoid_duplicate_genomes=avoid_duplicates,
            ),
            device=ARRIA10_GX1150,
        )
        result = engine.run()
        best_accuracy, best_throughput = _best_scores(result.history.evaluations())
        rows.append(
            {
                "variant": label,
                "best_accuracy": round(best_accuracy, 4),
                "best_fpga_outputs_per_s": best_throughput,
                "models_generated": result.statistics.models_generated,
                "models_evaluated": result.statistics.models_evaluated,
                "cache_hits": result.statistics.cache_hits,
            }
        )

    random_result = RandomSearch(
        space=space,
        evaluator=synthetic_evaluator,
        objectives=OBJECTIVES,
        max_evaluations=BUDGET,
        seed=3,
        device=ARRIA10_GX1150,
    ).run()
    best_accuracy, best_throughput = _best_scores(
        [e for e in random_result.history.evaluations() if not e.failed]
    )
    rows.append(
        {
            "variant": "random_search",
            "best_accuracy": round(best_accuracy, 4),
            "best_fpga_outputs_per_s": best_throughput,
            "models_generated": random_result.statistics.models_generated,
            "models_evaluated": random_result.statistics.models_evaluated,
            "cache_hits": random_result.statistics.cache_hits,
        }
    )
    return rows


@pytest.mark.benchmark(group="ablation_engine")
def test_ablation_engine_variants(benchmark, results_dir):
    rows = benchmark.pedantic(_run_variants, rounds=1, iterations=1)
    emit_table(
        rows,
        columns=[
            "variant",
            "best_accuracy",
            "best_fpga_outputs_per_s",
            "models_generated",
            "models_evaluated",
            "cache_hits",
        ],
        title="Ablation: engine variants on a synthetic co-design landscape",
        csv_name="ablation_engine_variants.csv",
    )
    by_variant = {row["variant"]: row for row in rows}
    steady = by_variant["steady_state"]
    random_row = by_variant["random_search"]

    # The steady-state engine finds throughput at least as good as random
    # search under the same evaluation budget (the paper's motivation for
    # using evolution), and its accuracy is within noise of random's best.
    assert steady["best_fpga_outputs_per_s"] >= 0.95 * random_row["best_fpga_outputs_per_s"]
    assert steady["best_accuracy"] >= random_row["best_accuracy"] - 0.02

    # Every variant respects the budget accounting.
    for row in rows:
        assert row["models_generated"] <= BUDGET
        assert row["models_evaluated"] + row["cache_hits"] == row["models_generated"]
