"""Ablation — linearity of throughput scaling with memory bandwidth.

Section IV-C claims "mostly a linear scaling going from 1 to 4" DDR banks for
bandwidth-constrained designs.  This ablation checks the claim directly on the
hardware model, without any search in the loop: it builds a deliberately
bandwidth-starved design point (a large grid working on a wide network so that
DRAM traffic, not compute, dominates) and sweeps 1, 2 and 4 banks.

Shape checks: the 1→2 and 2→4 scaling factors are both well above 1.4 and the
overall 1→4 factor is at least 2.5 (i.e. "mostly linear"), while a
compute-bound design point shows almost no scaling — demonstrating that the
effect is specifically a bandwidth phenomenon.
"""

from __future__ import annotations

import pytest

from repro.hardware.device import ARRIA10_GX1150
from repro.hardware.fpga_model import FPGAPerformanceModel
from repro.hardware.memory import DDR4_BANK, MemorySystem
from repro.hardware.systolic import GridConfig
from repro.nn.mlp import MLPSpec

from conftest import emit_table

#: A wide network whose weight traffic swamps a single DDR4 bank.
MEMORY_BOUND_SPEC = MLPSpec(
    input_size=1776, output_size=2, hidden_sizes=(1024, 512), activations=("relu", "relu")
)
#: A big grid with a shallow row interleave: very little operand reuse per
#: DRAM byte, so the array starves on a single DDR bank.
MEMORY_BOUND_GRID = GridConfig(rows=16, columns=16, interleave_rows=1, interleave_columns=8, vector_width=4)

#: A small network on a small batch: compute/overhead bound, not bandwidth bound.
COMPUTE_BOUND_SPEC = MLPSpec(input_size=20, output_size=2, hidden_sizes=(32,), activations=("relu",))
COMPUTE_BOUND_GRID = GridConfig(rows=4, columns=4, interleave_rows=4, interleave_columns=4, vector_width=2)


def _sweep(spec: MLPSpec, grid: GridConfig, batch: int) -> dict[int, float]:
    throughput = {}
    for banks in (1, 2, 4):
        model = FPGAPerformanceModel(ARRIA10_GX1150, memory=MemorySystem(DDR4_BANK, banks=banks))
        throughput[banks] = model.evaluate(spec, grid, batch_size=batch).outputs_per_second
    return throughput


def _run_ablation():
    memory_bound = _sweep(MEMORY_BOUND_SPEC, MEMORY_BOUND_GRID, batch=2048)
    compute_bound = _sweep(COMPUTE_BOUND_SPEC, COMPUTE_BOUND_GRID, batch=2048)
    return memory_bound, compute_bound


@pytest.mark.benchmark(group="ablation_bandwidth")
def test_ablation_bandwidth_linearity(benchmark, results_dir):
    memory_bound, compute_bound = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    rows = []
    for label, sweep in (("memory_bound", memory_bound), ("compute_bound", compute_bound)):
        for banks, outputs in sweep.items():
            rows.append(
                {
                    "design_point": label,
                    "ddr_banks": banks,
                    "outputs_per_second": outputs,
                    "scaling_vs_1_bank": round(outputs / sweep[1], 3),
                }
            )
    emit_table(
        rows,
        columns=["design_point", "ddr_banks", "outputs_per_second", "scaling_vs_1_bank"],
        title="Ablation: throughput scaling with DDR bank count",
        csv_name="ablation_bandwidth_linearity.csv",
    )

    # Bandwidth-starved design: mostly linear scaling from 1 to 4 banks.
    assert memory_bound[2] / memory_bound[1] >= 1.4
    assert memory_bound[4] / memory_bound[1] >= 2.5
    # Compute-bound design: adding bandwidth changes little (< 20%).
    assert compute_bound[4] / compute_bound[1] < 1.2
