"""Table III — Run-time statistics of the accuracy searches.

Paper row structure: per dataset, the number of NNA/HW combinations evaluated,
the average evaluation time per model, and the total evaluation time, with the
note that similar configurations are cached and never evaluated twice.

The harness runs a scaled-down accuracy search per dataset and reports the
same columns, plus the cache-hit count so the deduplication mechanism is
visible.  Shape checks: every model generated is accounted for (evaluated +
cache hits), average time is positive, and for the small Credit-g-style
dataset the average evaluation time is much lower than for the wide
MNIST-style dataset (the ordering the paper's table shows: 2.24 s vs 71 s).
"""

from __future__ import annotations

import pytest

from conftest import bench_config, bench_dataset, emit_table, run_search

DATASETS = ["credit_g_like", "phishing_like", "mnist_like"]


def _run_table3() -> list[dict]:
    rows = []
    for name in DATASETS:
        dataset = bench_dataset(name)
        config = bench_config(dataset, objective="accuracy", evaluations=14, num_folds=3)
        result = run_search(dataset, config)
        stats = result.statistics
        rows.append(
            {
                "dataset": name,
                "models_generated": stats.models_generated,
                "models_evaluated": stats.models_evaluated,
                "cache_hits": stats.cache_hits,
                "avg_eval_seconds": round(stats.average_evaluation_seconds, 4),
                "total_eval_seconds": round(stats.total_evaluation_seconds, 3),
                "wall_clock_seconds": round(stats.wall_clock_seconds, 3),
            }
        )
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_runtime_statistics(benchmark, results_dir):
    rows = benchmark.pedantic(_run_table3, rounds=1, iterations=1)
    emit_table(
        rows,
        columns=[
            "dataset",
            "models_generated",
            "models_evaluated",
            "cache_hits",
            "avg_eval_seconds",
            "total_eval_seconds",
            "wall_clock_seconds",
        ],
        title="Table III (reproduced): ECAD run-time statistics",
        csv_name="table3_runtime_stats.csv",
    )
    by_name = {row["dataset"]: row for row in rows}
    for row in rows:
        # every generated candidate is either freshly evaluated or a cache hit
        assert row["models_generated"] == row["models_evaluated"] + row["cache_hits"]
        assert row["avg_eval_seconds"] > 0
        assert row["total_eval_seconds"] <= row["wall_clock_seconds"] + 1e-6
    # the narrow Credit-g-style dataset evaluates much faster per model than
    # the 784-feature MNIST-style dataset, matching the paper's ordering
    assert by_name["credit_g_like"]["avg_eval_seconds"] < by_name["mnist_like"]["avg_eval_seconds"]
