"""Figure 3 — Throughput and hardware efficiency vs DDR bank count (Credit-g).

The paper observes that most evolved designs were bandwidth constrained on the
single-DDR-bank Arria 10 card, reruns the hardware model with 2 and 4 banks,
and finds "mostly a linear scaling going from 1 to 4"; higher bandwidth did
not produce greater efficiency but did raise overall throughput.

The harness takes a throughput-oriented network/grid pair for the Credit-g
analogue (chosen by a small co-design search), then sweeps the memory system
over 1, 2 and 4 banks with everything else fixed — exactly the experiment in
section IV-C.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import BandwidthSweepPoint
from repro.hardware.device import ARRIA10_GX1150
from repro.hardware.fpga_model import FPGAPerformanceModel
from repro.hardware.memory import DDR4_BANK, MemorySystem

from conftest import bench_config, bench_dataset, emit_table, run_search

BANK_COUNTS = (1, 2, 4)


def _run_fig3():
    dataset = bench_dataset("credit_g_like")
    config = bench_config(
        dataset, objective="codesign", fpga="arria10", evaluations=16, population=6, num_folds=2
    )
    result = run_search(dataset, config)
    # The candidate with the best FPGA throughput defines the design point swept.
    best = max(
        (e for e in result.history.evaluations() if not e.failed),
        key=lambda e: e.fpga_outputs_per_second,
    )
    spec = best.genome.mlp.to_spec(dataset.num_features, dataset.num_classes)
    grid = best.genome.hardware.grid
    batch = best.genome.hardware.batch_size

    points = []
    for banks in BANK_COUNTS:
        model = FPGAPerformanceModel(ARRIA10_GX1150, memory=MemorySystem(DDR4_BANK, banks=banks))
        metrics = model.evaluate(spec, grid, batch_size=batch)
        points.append(
            BandwidthSweepPoint(
                ddr_banks=banks,
                outputs_per_second=metrics.outputs_per_second,
                efficiency=metrics.efficiency,
                effective_gflops=metrics.effective_gflops,
            )
        )
    return best, points


@pytest.mark.benchmark(group="fig3")
def test_fig3_bandwidth_scaling(benchmark, results_dir):
    best, points = benchmark.pedantic(_run_fig3, rounds=1, iterations=1)
    rows = [point.to_dict() for point in points]
    for row in rows:
        row["accuracy"] = round(best.accuracy, 4)
        row["grid"] = str(best.genome.hardware.grid)
    emit_table(
        rows,
        columns=["ddr_banks", "outputs_per_second", "efficiency", "effective_gflops", "accuracy", "grid"],
        title="Figure 3 (reproduced): throughput and efficiency vs DDR banks (Credit-g analogue)",
        csv_name="fig3_bandwidth_scaling.csv",
    )
    by_banks = {point.ddr_banks: point for point in points}

    # Shape 1: throughput never decreases with more banks and improves overall.
    assert by_banks[2].outputs_per_second >= by_banks[1].outputs_per_second
    assert by_banks[4].outputs_per_second >= by_banks[2].outputs_per_second
    assert by_banks[4].outputs_per_second > by_banks[1].outputs_per_second

    # Shape 2: higher bandwidth does not produce greater (allocated) hardware
    # efficiency — it stays in the same band or the workload becomes
    # compute-bound; it never jumps above 1.0 or collapses.
    assert by_banks[4].efficiency <= 1.0
    assert by_banks[4].efficiency >= 0.5 * by_banks[1].efficiency
