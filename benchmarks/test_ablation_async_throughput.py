"""Ablation — asynchronous batched evaluation pipeline throughput.

The ECAD master/worker design exists to hide evaluation latency: candidate
training and synthesis dominate the search wall-clock, so keeping several
candidates in flight at once is the paper's central scalability lever.  This
benchmark measures that lever directly: the same steady-state search (same
space, same budget, same fitness) is run once through the serial engine
(``eval_parallelism=1``) and once through the asynchronous pipeline with four
candidate evaluations in flight on threads.

Candidate evaluation uses the deterministic synthetic-dataset landscape of the
engine ablation plus a fixed simulated worker latency (a sleep standing in for
training/synthesis time, which releases the GIL exactly like numpy's BLAS
kernels do), so the measured speedup reflects pipeline overlap, not noise.
The acceptance bar is a >= 2x wall-clock win for the threaded pipeline.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.candidate import CandidateEvaluation
from repro.core.engine import EngineConfig, EngineResult, EvolutionaryEngine
from repro.core.fitness import FitnessEvaluator, FitnessObjective
from repro.core.genome import CoDesignGenome, CoDesignSearchSpace
from repro.hardware.device import ARRIA10_GX1150
from repro.hardware.results import HardwareMetrics

from conftest import emit_table

BUDGET = 48
POPULATION = 8
PARALLELISM = 4
#: Simulated per-candidate worker latency (training + synthesis stand-in).
#: Large enough to dominate the main thread's per-completion bookkeeping even
#: on slow CI runners, so the >=2x assertion has a wide margin.
EVAL_LATENCY_SECONDS = 0.02
OBJECTIVES = [FitnessObjective.accuracy(), FitnessObjective.fpga_throughput()]


def slow_synthetic_evaluator(genome: CoDesignGenome) -> CandidateEvaluation:
    """Deterministic landscape with a fixed, GIL-releasing evaluation latency."""
    time.sleep(EVAL_LATENCY_SECONDS)
    neurons = genome.mlp.total_hidden_neurons
    accuracy = min(0.99, 0.55 + 0.4 * (1.0 - np.exp(-neurons / 96.0)))
    compute = genome.hardware.grid.dsp_blocks_used
    throughput = 4e7 * compute / (compute + 256.0) / (1.0 + neurons / 64.0)
    metrics = HardwareMetrics(
        device_name="synthetic_fpga",
        batch_size=genome.hardware.batch_size,
        potential_gflops=2.0 * compute * 0.25,
        effective_gflops=min(2.0 * compute * 0.25, throughput * neurons * 2e-9),
        total_time_seconds=genome.hardware.batch_size / throughput,
        outputs_per_second=throughput,
        latency_seconds=1e-5,
        efficiency=min(1.0, throughput / 4e7),
    )
    return CandidateEvaluation(
        genome=genome,
        accuracy=accuracy,
        parameter_count=neurons * 10,
        fpga_metrics=metrics,
        evaluation_seconds=EVAL_LATENCY_SECONDS,
    )


def _run_engine(eval_parallelism: int) -> tuple[EngineResult, float]:
    engine = EvolutionaryEngine(
        space=CoDesignSearchSpace(),
        evaluator=slow_synthetic_evaluator,
        fitness=FitnessEvaluator(OBJECTIVES),
        config=EngineConfig(
            population_size=POPULATION,
            max_evaluations=BUDGET,
            seed=5,
            eval_parallelism=eval_parallelism,
        ),
        device=ARRIA10_GX1150,
    )
    start = time.perf_counter()
    result = engine.run()
    return result, time.perf_counter() - start


def _run_comparison() -> list[dict]:
    rows = []
    for label, parallelism in (("serial", 1), (f"threads_x{PARALLELISM}", PARALLELISM)):
        result, wall_clock = _run_engine(parallelism)
        stats = result.statistics
        rows.append(
            {
                "variant": label,
                "eval_parallelism": parallelism,
                "wall_clock_seconds": round(wall_clock, 4),
                "evaluations_per_second": round(stats.evaluations_per_second, 1),
                "peak_in_flight": stats.peak_in_flight,
                "models_generated": stats.models_generated,
                "models_evaluated": stats.models_evaluated,
                "cache_hits": stats.cache_hits,
                "best_accuracy": round(max(e.accuracy for e in result.history.evaluations()), 4),
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation_async_throughput")
def test_ablation_async_throughput(benchmark, results_dir):
    rows = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    serial, threaded = rows[0], rows[1]
    speedup = serial["wall_clock_seconds"] / max(threaded["wall_clock_seconds"], 1e-9)
    for row in rows:
        row["speedup_vs_serial"] = round(
            serial["wall_clock_seconds"] / max(row["wall_clock_seconds"], 1e-9), 2
        )
    emit_table(
        rows,
        columns=[
            "variant",
            "eval_parallelism",
            "wall_clock_seconds",
            "evaluations_per_second",
            "peak_in_flight",
            "models_generated",
            "models_evaluated",
            "cache_hits",
            "best_accuracy",
            "speedup_vs_serial",
        ],
        title="Ablation: async batched pipeline vs serial engine (same search)",
        csv_name="ablation_async_throughput.csv",
    )

    # Both runs spent the full evaluation budget and respected the accounting.
    for row in rows:
        assert row["models_generated"] == BUDGET
        assert row["models_evaluated"] + row["cache_hits"] == BUDGET

    # The pipeline actually overlapped evaluations...
    assert serial["peak_in_flight"] == 1
    assert threaded["peak_in_flight"] > 1

    # ...and bought at least the 2x wall-clock win the refactor promises.
    assert speedup >= 2.0, f"expected >=2x speedup, measured {speedup:.2f}x"
    assert threaded["evaluations_per_second"] >= 2.0 * serial["evaluations_per_second"]
