"""Figure 4 — Hardware efficiency: Stratix 10 vs Titan X on the MNIST analogue.

Paper: searching the MNIST dataset on a Stratix 10 2800 (4 DDR banks) against
a Titan X, the top-accuracy solutions reach almost identical outputs/s
(~7.9e5 vs ~7.7e5), but the FPGA uses 41.5% of its *allocated* logic while the
GPU uses only 0.3% of the device — efficiency is where the reconfigurable
architecture wins.

The harness reruns a scaled-down co-design search on the MNIST analogue with
the Stratix 10 model and the Titan X baseline and checks:

* FPGA hardware efficiency (effective/potential of the allocated grid) is much
  higher than GPU device efficiency for every candidate, and
* at the top-accuracy point the two devices' throughputs are within the same
  order of magnitude (the "almost identical" observation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.figures import ascii_scatter, efficiency_series
from repro.hardware.efficiency import compare_efficiency

from conftest import bench_config, bench_dataset, emit_table, run_search


def _run_fig4():
    dataset = bench_dataset("mnist_like")
    config = bench_config(
        dataset,
        objective="codesign",
        fpga="stratix10",
        gpu="titan_x",
        evaluations=16,
        population=6,
        num_folds=2,
    )
    result = run_search(dataset, config)
    evaluations = [
        e
        for e in result.history.evaluations()
        if not e.failed and e.fpga_metrics is not None and e.gpu_metrics is not None
    ]
    return evaluations


@pytest.mark.benchmark(group="fig4")
def test_fig4_hardware_efficiency(benchmark, results_dir):
    evaluations = benchmark.pedantic(_run_fig4, rounds=1, iterations=1)
    assert len(evaluations) >= 10

    fpga_series = efficiency_series(evaluations, device="fpga", name="Fig 4: Stratix 10 efficiency")
    gpu_series = efficiency_series(evaluations, device="gpu", name="Fig 4: Titan X efficiency")
    print()
    print(ascii_scatter(fpga_series))
    print()
    print(ascii_scatter(gpu_series))

    rows = []
    for evaluation in evaluations:
        comparison = compare_efficiency(evaluation.accuracy, evaluation.fpga_metrics, evaluation.gpu_metrics)
        rows.append(
            {
                "accuracy": round(evaluation.accuracy, 4),
                "s10_outputs_per_s": comparison.fpga_outputs_per_second,
                "tx_outputs_per_s": comparison.gpu_outputs_per_second,
                "s10_efficiency": round(comparison.fpga_efficiency, 4),
                "tx_efficiency": round(comparison.gpu_efficiency, 4),
                "efficiency_advantage": round(comparison.efficiency_advantage, 1),
            }
        )
    emit_table(
        rows,
        columns=[
            "accuracy",
            "s10_outputs_per_s",
            "tx_outputs_per_s",
            "s10_efficiency",
            "tx_efficiency",
            "efficiency_advantage",
        ],
        title="Figure 4 (reproduced): hardware efficiency, Stratix 10 vs Titan X (MNIST analogue)",
        csv_name="fig4_efficiency.csv",
    )

    # Shape 1: the FPGA's allocated-configuration efficiency beats the GPU's
    # device efficiency for (at least) the overwhelming majority of candidates.
    wins = sum(1 for row in rows if row["s10_efficiency"] > row["tx_efficiency"])
    assert wins >= 0.9 * len(rows)

    # Shape 2: the median efficiency advantage is large (paper: 41.5% vs 0.3%,
    # i.e. >100x; we only require an order of magnitude on the scaled harness).
    advantages = [row["efficiency_advantage"] for row in rows if np.isfinite(row["efficiency_advantage"])]
    assert np.median(advantages) >= 10.0

    # Shape 3: at the top-accuracy point the throughputs are within an order
    # of magnitude of each other ("almost identical" in the paper).
    top = max(rows, key=lambda row: row["accuracy"])
    ratio = top["s10_outputs_per_s"] / max(top["tx_outputs_per_s"], 1e-9)
    assert 0.1 <= ratio <= 100.0
