"""Figure 2 — Accuracy vs throughput for FPGA (2a) and GPU (2b) on HAR.

The paper runs the evolutionary search over the HAR dataset and scatters every
evaluated candidate's accuracy against its outputs/s on an Arria 10 (2a) and a
Quadro M5000 (2b).  The headline shapes:

* the FPGA's throughput varies enormously across candidates at similar
  accuracy (a different hardware configuration per point), and dropping a
  fraction of a percent of accuracy can buy an order-of-magnitude jump in
  outputs/s;
* the GPU's throughput is comparatively flat — "there is roughly no
  relationship between the number of neurons and the throughput".

The harness reruns a scaled-down co-design search on the HAR analogue and
checks both shapes quantitatively via the throughput spread within accuracy
bands and the neuron-count/throughput correlation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.figures import accuracy_throughput_series, ascii_scatter
from repro.analysis.frontier import accuracy_band_summary, throughput_neuron_correlation

from conftest import bench_config, bench_dataset, emit_table, run_search


def _run_fig2():
    dataset = bench_dataset("har_like")
    config = bench_config(
        dataset,
        objective="codesign",
        fpga="arria10",
        gpu="m5000",
        evaluations=24,
        population=8,
        num_folds=2,
    )
    result = run_search(dataset, config)
    evaluations = [e for e in result.history.evaluations() if not e.failed]
    return evaluations


@pytest.mark.benchmark(group="fig2")
def test_fig2_accuracy_vs_throughput(benchmark, results_dir):
    evaluations = benchmark.pedantic(_run_fig2, rounds=1, iterations=1)
    assert len(evaluations) >= 15

    fpga_series = accuracy_throughput_series(evaluations, device="fpga", name="Fig 2a: HAR on Arria 10")
    gpu_series = accuracy_throughput_series(evaluations, device="gpu", name="Fig 2b: HAR on Quadro M5000")
    print()
    print(ascii_scatter(fpga_series, log_y=True))
    print()
    print(ascii_scatter(gpu_series, log_y=True))

    rows = [
        {
            "accuracy": round(e.accuracy, 4),
            "fpga_outputs_per_s": e.fpga_outputs_per_second,
            "gpu_outputs_per_s": e.gpu_outputs_per_second,
            "hidden_neurons": e.genome.mlp.total_hidden_neurons,
            "grid": str(e.genome.hardware.grid),
        }
        for e in evaluations
    ]
    emit_table(
        rows,
        columns=["accuracy", "fpga_outputs_per_s", "gpu_outputs_per_s", "hidden_neurons", "grid"],
        title="Figure 2 (reproduced): per-candidate accuracy vs outputs/s (HAR analogue)",
        csv_name="fig2_accuracy_vs_throughput.csv",
    )

    # Shape 1: across the whole search, FPGA throughput spans a much wider
    # range (relative spread) than GPU throughput.
    fpga_values = np.asarray(fpga_series.y)
    gpu_values = np.asarray(gpu_series.y)
    fpga_spread = fpga_values.max() / max(fpga_values.min(), 1e-9)
    gpu_spread = gpu_values.max() / max(gpu_values.min(), 1e-9)
    assert fpga_spread > 2.0 * gpu_spread, (fpga_spread, gpu_spread)

    # Shape 2: GPU throughput is (almost) uncorrelated with the neuron count
    # relative to the FPGA, whose mapping depends strongly on the network.
    fpga_corr = throughput_neuron_correlation(evaluations, device="fpga")
    gpu_corr = throughput_neuron_correlation(evaluations, device="gpu")
    if np.isfinite(fpga_corr) and np.isfinite(gpu_corr):
        assert abs(fpga_corr) >= abs(gpu_corr) - 0.15

    # Shape 3: accuracy bands below the top contain significantly faster FPGA
    # solutions than the top-accuracy band's slowest one (the "giant leap").
    bands = accuracy_band_summary(evaluations, band_width=0.02, device="fpga", top_bands=4)
    assert bands
    best_band_max = bands[0].max_outputs_per_second
    overall_max = fpga_values.max()
    assert overall_max >= best_band_max  # trivially true, recorded for the report
