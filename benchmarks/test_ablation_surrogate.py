"""Ablation — surrogate-assisted search: fewer real trainings, same frontier.

The surrogate subsystem promises that once the evaluation store holds enough
rows for a problem, a store-trained screen plus warm-starting reaches the
same frontier quality as an unscreened search while *training* far fewer
networks.  This benchmark measures that promise end to end on real NN
training (the Credit-g analogue, stratix10 co-design objective):

* **Baseline (unscreened)** — the weighted-sum search runs a full budget
  against a cold store, training every candidate; its frontier hypervolume
  is the quality bar and its rows become the surrogate's training data.
* **Surrogate** — the same problem and seed (the store digest covers both)
  reruns under the ``surrogate`` strategy: the population warm-starts from
  stored rows (store hits, zero real trainings) and each steady-state step
  breeds a pool of offspring, really evaluating only the screen's pick.

Asserted floor (mirrored in CI): the surrogate run performs **at least 5x
fewer real NN evaluations** than the baseline while its frontier
hypervolume stays **within 5%** of the unscreened baseline — and the
screen must have actually engaged (``surrogate_screened > 0``), so the
reduction cannot come from warm-starting alone.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.config import StoreConfig, SurrogateConfig
from repro.core.pareto import hypervolume_2d
from repro.core.search import CoDesignSearch

from conftest import BENCH_TRAINING, bench_config, bench_dataset, emit_table

SEED = 0
POPULATION = 8
#: Full budget for the unscreened baseline pass.
BASELINE_EVALUATIONS = 24
#: Surrogate-pass budget: POPULATION warm-start slots (served by the store,
#: no training) plus a handful of really-trained screened winners.
SURROGATE_EVALUATIONS = 12

#: The CI-asserted floors.
MIN_REAL_EVAL_REDUCTION = 5.0
HYPERVOLUME_TOLERANCE = 0.05


def _run(dataset, config):
    search = CoDesignSearch(dataset, config=config)
    master = search.build_master()
    master.training_config = BENCH_TRAINING
    try:
        return search.run(evaluator=master)
    finally:
        master.shutdown()


def _run_comparison(store_path: str) -> list[dict]:
    dataset = bench_dataset("credit_g_like")
    base = bench_config(
        dataset,
        objective="codesign",
        fpga="stratix10",
        gpu="titan_x",
        evaluations=BASELINE_EVALUATIONS,
        population=POPULATION,
        num_folds=2,
        seed=SEED,
    )
    baseline = _run(dataset, replace(base, store=StoreConfig(path=store_path)))
    surrogate = _run(
        dataset,
        replace(
            base,
            max_evaluations=SURROGATE_EVALUATIONS,
            strategy="surrogate",
            store=StoreConfig(path=store_path, warm_start=POPULATION),
            surrogate=SurrogateConfig(
                min_rows=16,
                pool_size=6,
                exploration_fraction=0.1,
                refit_interval=4,
            ),
        ),
    )
    frontiers = {
        "baseline_unscreened": [
            (v.values[0], v.values[1]) for v in baseline.frontier_archive.vectors()
        ],
        "surrogate_screened": [
            (v.values[0], v.values[1]) for v in surrogate.frontier_archive.vectors()
        ],
    }
    # One shared throughput scale so the two areas are commensurable.
    throughput_max = max(
        (t for points in frontiers.values() for _, t in points), default=0.0
    )
    rows = []
    for variant, result in (
        ("baseline_unscreened", baseline),
        ("surrogate_screened", surrogate),
    ):
        points = frontiers[variant]
        hypervolume = (
            hypervolume_2d([(a, t / throughput_max) for a, t in points])
            if points and throughput_max > 0
            else 0.0
        )
        stats = result.statistics
        rows.append(
            {
                "variant": variant,
                "evaluations": stats.models_generated,
                "real_nn_evaluations": stats.models_evaluated,
                "store_hits": stats.store_hits,
                "surrogate_screened": stats.surrogate_screened,
                "real_evals_saved": stats.real_evals_saved,
                "frontier_size": stats.frontier_size,
                "hypervolume": round(hypervolume, 4),
                "best_accuracy": round(result.best_accuracy, 4),
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation_surrogate")
def test_surrogate_reduces_real_evaluations_at_matched_hypervolume(
    benchmark, results_dir, tmp_path
):
    store_path = str(tmp_path / "surrogate_ablation.sqlite")
    rows = benchmark.pedantic(
        _run_comparison, args=(store_path,), rounds=1, iterations=1
    )
    emit_table(
        rows,
        columns=[
            "variant",
            "evaluations",
            "real_nn_evaluations",
            "store_hits",
            "surrogate_screened",
            "real_evals_saved",
            "frontier_size",
            "hypervolume",
            "best_accuracy",
        ],
        title="Surrogate screen vs unscreened search (real NN trainings at matched frontier quality)",
        csv_name="ablation_surrogate.csv",
    )
    baseline, surrogate = rows[0], rows[1]
    # The baseline really trained its candidates (cold store, no screen).
    assert baseline["surrogate_screened"] == 0
    assert baseline["real_nn_evaluations"] >= BASELINE_EVALUATIONS - 4
    # The screen engaged: pools were ranked and losers never trained.
    assert surrogate["surrogate_screened"] > 0
    assert surrogate["real_evals_saved"] > 0
    # >= 5x fewer real NN trainings...
    assert surrogate["real_nn_evaluations"] > 0
    reduction = baseline["real_nn_evaluations"] / surrogate["real_nn_evaluations"]
    assert reduction >= MIN_REAL_EVAL_REDUCTION
    # ...at a frontier within 5% of the unscreened baseline's hypervolume.
    assert surrogate["hypervolume"] >= (1 - HYPERVOLUME_TOLERANCE) * baseline["hypervolume"]
