"""Shared fixtures and helpers for the benchmark harness.

Every benchmark module regenerates one table or figure from the paper's
evaluation section.  The runs are scaled down (smaller synthetic datasets,
fewer candidate evaluations, fewer training epochs) so that the whole harness
completes in minutes on a laptop, but the *structure* of each experiment — the
search objectives, the devices compared, the metrics reported — matches the
paper.  Each module prints the regenerated rows/series and asserts the
qualitative "shape" the paper reports.

Generated tables are also written as CSV files under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.reporting import format_table, save_rows_csv
from repro.core.config import ECADConfig, OptimizationTargetConfig
from repro.core.search import CoDesignSearch
from repro.datasets.registry import load_dataset
from repro.nn.evaluation import evaluate_kfold, evaluate_single_fold
from repro.nn.mlp import MLPSpec
from repro.nn.training import TrainingConfig

#: Directory where every benchmark writes its regenerated table as CSV.
RESULTS_DIR = Path(__file__).parent / "results"

#: Sample-count scale applied to every synthetic dataset in the harness.
DATASET_SCALES = {
    "mnist_like": 0.02,
    "fashion_mnist_like": 0.02,
    "credit_g_like": 0.30,
    "har_like": 0.03,
    "phishing_like": 0.03,
    "bioresponse_like": 0.04,
}

#: Training budget used for every candidate evaluation in the harness.
BENCH_TRAINING = TrainingConfig(
    epochs=8, batch_size=32, learning_rate=0.01, early_stopping_patience=3, validation_fraction=0.15
)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def bench_dataset(name: str, seed: int = 0):
    """Load a paper dataset at harness scale."""
    return load_dataset(name, seed=seed, scale=DATASET_SCALES.get(name, 0.05))


def bench_config(
    dataset,
    objective: str = "codesign",
    fpga: str = "arria10",
    gpu: str = "titan_x",
    population: int = 6,
    evaluations: int = 18,
    num_folds: int = 3,
    seed: int = 0,
) -> ECADConfig:
    """Build a small-but-structurally-faithful search configuration."""
    optimization = (
        OptimizationTargetConfig.accuracy_only()
        if objective == "accuracy"
        else OptimizationTargetConfig.accuracy_and_throughput()
    )
    return ECADConfig.template_for_dataset(
        dataset,
        fpga=fpga,
        gpu=gpu,
        optimization=optimization,
        population_size=population,
        max_evaluations=evaluations,
        seed=seed,
        num_folds=num_folds,
        training_epochs=BENCH_TRAINING.epochs,
        training_batch_size=BENCH_TRAINING.batch_size,
    )


def run_search(dataset, config: ECADConfig):
    """Run a CoDesignSearch with the harness training budget."""
    search = CoDesignSearch(dataset, config=config)
    # Swap the template's default training configuration for the faster
    # harness one (higher learning rate so few epochs still converge).
    master = search.build_master()
    master.training_config = BENCH_TRAINING
    engine = search.build_engine(evaluator=master)
    outcome = engine.run()
    return search._package(outcome)


def baseline_mlp_accuracy(dataset, num_folds: int = 3, seed: int = 0) -> float:
    """Fixed-topology baseline: one hidden layer of 100 ReLU units (the
    sklearn ``MLPClassifier`` default the paper's tables quote)."""
    spec = MLPSpec(
        input_size=dataset.num_features,
        output_size=dataset.num_classes,
        hidden_sizes=(100,),
        activations=("relu",),
    )
    if dataset.has_test_split:
        result = evaluate_single_fold(
            spec,
            dataset.features,
            dataset.labels,
            dataset.test_features,
            dataset.test_labels,
            training_config=BENCH_TRAINING,
            seed=seed,
        )
    else:
        result = evaluate_kfold(
            spec,
            dataset.features,
            dataset.labels,
            num_folds=num_folds,
            training_config=BENCH_TRAINING,
            seed=seed,
        )
    return result.accuracy


def emit_table(rows, columns, title: str, csv_name: str) -> None:
    """Print a regenerated table and persist it as CSV."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    print()
    print(format_table(rows, columns=columns, title=title))
    save_rows_csv(rows, RESULTS_DIR / csv_name, columns=columns)
