"""Execution backends: how the master fans worker calls out.

The original ECAD system distributes candidate evaluation across machines (the
master "orchestrates the evaluation process by distributing the co-design
population").  This module abstracts the dispatch mechanism so the same master
can run:

* **serially** in-process (deterministic, best for tests and small searches),
* **in a thread pool** (overlaps numpy training compute, which releases the
  GIL inside BLAS, with model evaluation; best-effort parallelism on one
  machine),
* **in a process pool** (true multi-core parallelism; work functions and
  their arguments must be picklable).

Every backend presents the same futures-based interface: ``submit`` schedules
one work item and returns a :class:`concurrent.futures.Future`,
``as_completed`` yields finished futures in completion order, and ``map`` is a
batch convenience built on top of ``submit`` that preserves input order.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures import as_completed as _futures_as_completed
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from ..registry import Registry

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "NonOwningBackend",
    "register_backend",
    "resolve_backend",
    "available_backends",
]

RequestT = TypeVar("RequestT")
ResultT = TypeVar("ResultT")

#: Factories accepted by :func:`resolve_backend`: ``(max_workers) -> backend``.
BACKENDS: Registry[Callable[[int], "ExecutionBackend"]] = Registry("execution backend")


class ExecutionBackend:
    """Base class: schedules work items and exposes their futures."""

    name: str = "backend"

    def submit(self, function: Callable[[RequestT], ResultT], item: RequestT) -> "Future[ResultT]":
        """Schedule ``function(item)`` and return its future."""
        raise NotImplementedError

    def as_completed(
        self, futures: Iterable["Future[ResultT]"], timeout: float | None = None
    ) -> Iterator["Future[ResultT]"]:
        """Yield futures as they finish (completion order, not submission order)."""
        return _futures_as_completed(list(futures), timeout=timeout)

    def wait_first(
        self, futures: Iterable["Future[ResultT]"], timeout: float | None = None
    ) -> tuple[set["Future[ResultT]"], set["Future[ResultT]"]]:
        """Block until at least one future finishes; return (done, pending)."""
        done, pending = wait(list(futures), timeout=timeout, return_when=FIRST_COMPLETED)
        return done, pending

    def map(self, function: Callable[[RequestT], ResultT], items: Sequence[RequestT]) -> list[ResultT]:
        """Apply ``function`` to every item, preserving order."""
        futures = [self.submit(function, item) for item in items]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        """Release any resources held by the backend (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()


class SerialBackend(ExecutionBackend):
    """Evaluates work items one at a time on the calling thread.

    ``submit`` runs the work item eagerly and returns an already-resolved
    future, so code written against the futures API behaves identically
    (including exception propagation through ``Future.result``) without any
    concurrency.
    """

    name = "serial"

    def submit(self, function: Callable[[RequestT], ResultT], item: RequestT) -> "Future[ResultT]":
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(function(item))
        except Exception as exc:  # noqa: BLE001 - mirrored into the future, as executors do
            future.set_exception(exc)
        return future

    def map(self, function: Callable[[RequestT], ResultT], items: Sequence[RequestT]) -> list[ResultT]:
        return [function(item) for item in items]


class _ExecutorBackend(ExecutionBackend):
    """Shared plumbing for backends built on ``concurrent.futures`` executors."""

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = int(max_workers)
        self._executor = None
        self._executor_lock = threading.Lock()

    def _create_executor(self):
        raise NotImplementedError

    def _ensure_executor(self):
        # submit/map may be called from many threads at once (the engine's
        # async pipeline evaluates candidates concurrently), so lazy creation
        # must not race and leak extra pools.
        with self._executor_lock:
            if self._executor is None:
                self._executor = self._create_executor()
            return self._executor

    def submit(self, function: Callable[[RequestT], ResultT], item: RequestT) -> "Future[ResultT]":
        return self._ensure_executor().submit(function, item)

    def map(self, function: Callable[[RequestT], ResultT], items: Sequence[RequestT]) -> list[ResultT]:
        return list(self._ensure_executor().map(function, items))

    def shutdown(self) -> None:
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)


class ThreadPoolBackend(_ExecutorBackend):
    """Evaluates work items concurrently on a bounded thread pool.

    Numpy's BLAS kernels release the GIL, so candidate training and hardware
    modeling overlap reasonably well across threads on a multi-core machine.
    """

    name = "thread_pool"

    def _create_executor(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.max_workers)


class ProcessPoolBackend(_ExecutorBackend):
    """Evaluates work items on a pool of worker processes.

    Sidesteps the GIL entirely, at the cost of pickling: both the work
    function and its items must be picklable (module-level functions or
    ``functools.partial`` over them; no lambdas or closures).
    """

    name = "process_pool"

    def _create_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.max_workers)


class NonOwningBackend(ExecutionBackend):
    """Delegates to a shared backend but never shuts it down.

    Searches treat their backend as owned and call ``shutdown`` when they
    finish.  When several runs share one pool (the arena runner, the job
    service), each run gets a ``NonOwningBackend`` wrapper instead: work is
    delegated to the real pool, ``shutdown`` is a no-op, and whoever created
    the pool remains responsible for tearing it down.
    """

    name = "non_owning"

    def __init__(self, inner: ExecutionBackend) -> None:
        self.inner = inner

    def submit(self, function: Callable[[RequestT], ResultT], item: RequestT) -> "Future[ResultT]":
        return self.inner.submit(function, item)

    def as_completed(
        self, futures: Iterable["Future[ResultT]"], timeout: float | None = None
    ) -> Iterator["Future[ResultT]"]:
        return self.inner.as_completed(futures, timeout=timeout)

    def wait_first(
        self, futures: Iterable["Future[ResultT]"], timeout: float | None = None
    ) -> tuple[set["Future[ResultT]"], set["Future[ResultT]"]]:
        return self.inner.wait_first(futures, timeout=timeout)

    def map(self, function: Callable[[RequestT], ResultT], items: Sequence[RequestT]) -> list[ResultT]:
        return self.inner.map(function, items)

    def shutdown(self) -> None:
        """Intentionally a no-op: the shared pool's owner shuts it down."""


register_backend = BACKENDS.register

BACKENDS.register("serial", lambda max_workers=1: SerialBackend(), aliases=("sync", "none"))
BACKENDS.register(
    "threads",
    lambda max_workers=4: ThreadPoolBackend(max_workers=max_workers),
    aliases=("thread", "thread_pool", "threadpool"),
)
BACKENDS.register(
    "processes",
    lambda max_workers=4: ProcessPoolBackend(max_workers=max_workers),
    aliases=("process", "process_pool", "processpool", "procs"),
)


def available_backends() -> list[str]:
    """Canonical names accepted by :func:`resolve_backend`."""
    return BACKENDS.available()


def resolve_backend(
    backend: str | ExecutionBackend | None, max_workers: int = 4
) -> ExecutionBackend:
    """Resolve a backend by registered name or pass an instance through
    unchanged (``max_workers`` is ignored for instances)."""
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        factory = BACKENDS.resolve(str(backend))
    except KeyError as exc:
        # The registry message already lists what is available and suggests
        # near-miss names; re-raising it verbatim keeps the hint.
        raise ValueError(str(exc.args[0])) from exc
    return factory(max_workers=max_workers)
