"""Execution backends: how the master fans worker calls out.

The original ECAD system distributes candidate evaluation across machines (the
master "orchestrates the evaluation process by distributing the co-design
population").  This module abstracts the dispatch mechanism so the same master
can run:

* **serially** in-process (deterministic, best for tests and small searches),
* **in a thread pool** (overlaps numpy training compute, which releases the
  GIL inside BLAS, with model evaluation; best-effort parallelism on one
  machine).

Both backends present the same ``map`` interface over request batches.  A
process-pool backend would slot in behind the same interface but is not
provided because candidate training closures capture non-picklable state.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["ExecutionBackend", "SerialBackend", "ThreadPoolBackend"]

RequestT = TypeVar("RequestT")
ResultT = TypeVar("ResultT")


class ExecutionBackend:
    """Base class: maps a function over a batch of work items."""

    name: str = "backend"

    def map(self, function: Callable[[RequestT], ResultT], items: Sequence[RequestT]) -> list[ResultT]:
        """Apply ``function`` to every item, preserving order."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any resources held by the backend (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()


class SerialBackend(ExecutionBackend):
    """Evaluates work items one at a time on the calling thread."""

    name = "serial"

    def map(self, function: Callable[[RequestT], ResultT], items: Sequence[RequestT]) -> list[ResultT]:
        return [function(item) for item in items]


class ThreadPoolBackend(ExecutionBackend):
    """Evaluates work items concurrently on a bounded thread pool.

    Numpy's BLAS kernels release the GIL, so candidate training and hardware
    modeling overlap reasonably well across threads on a multi-core machine.
    """

    name = "thread_pool"

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = int(max_workers)
        self._executor: ThreadPoolExecutor | None = None

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def map(self, function: Callable[[RequestT], ResultT], items: Sequence[RequestT]) -> list[ResultT]:
        executor = self._ensure_executor()
        return list(executor.map(function, items))

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def resolve_backend(backend: str | ExecutionBackend | None, max_workers: int = 4) -> ExecutionBackend:
    """Resolve a backend by name ('serial', 'threads') or pass an instance through."""
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    key = str(backend).strip().lower()
    if key in ("serial", "sync", "none"):
        return SerialBackend()
    if key in ("threads", "thread", "thread_pool", "threadpool"):
        return ThreadPoolBackend(max_workers=max_workers)
    raise ValueError(f"unknown execution backend {backend!r}; use 'serial' or 'threads'")


__all__.append("resolve_backend")
