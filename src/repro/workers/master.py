"""The master process: orchestrates workers and merges their reports.

Section III-A: *"The Worker returns the raw evaluation information to a Master
process.  The Master process orchestrates the evaluation process by
distributing the co-design population and by evaluating the results."*

The :class:`Master` owns a set of workers (simulation, hardware database,
physical), fans each candidate's evaluation out to all of them through an
execution backend, and merges the individual
:class:`~repro.workers.base.WorkerReport` records into a single
:class:`~repro.core.candidate.CandidateEvaluation` the engine and fitness
functions consume.  It is also a plain callable ``genome -> CandidateEvaluation``
so it plugs directly into the engine's ``evaluator`` slot.

Two dispatch granularities are offered:

* :meth:`evaluate` — synchronous, per-candidate: the candidate's worker
  reports are fanned out through the backend and merged on return.  This is
  the path the evolutionary engine drives (its async pipeline calls it from
  several threads at once, so the backend must also absorb concurrent
  ``map`` calls).
* :meth:`submit` / :meth:`drain` — asynchronous, per-batch: each call
  schedules one whole candidate evaluation on the backend and returns a
  future, so batch callers (:meth:`evaluate_population`, external
  pipelines) can keep several candidates in flight at once.  Inside a
  submitted task the workers run serially — nesting backend dispatch inside
  backend tasks would let the outer tasks starve the pool and deadlock it.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from functools import partial
from typing import Iterator

from ..core.candidate import CandidateEvaluation
from ..core.genome import CoDesignGenome
from ..datasets.base import Dataset
from ..nn.training import TrainingConfig
from .backends import ExecutionBackend, ProcessPoolBackend, SerialBackend, resolve_backend
from .base import EvaluationRequest, Worker, WorkerReport

__all__ = ["Master"]


def _evaluate_worker(worker: Worker, request: EvaluationRequest) -> WorkerReport:
    """Run one worker on one request (module-level so process pools can pickle it)."""
    return worker.evaluate(request.materialize())


def _run_workers_serial(task: tuple[list[Worker], EvaluationRequest]) -> tuple[list[WorkerReport], float]:
    """Evaluate every worker for one request on the current thread/process.

    This is the body of a submitted candidate evaluation; it is module-level
    and takes only picklable arguments so the same code path serves thread
    and process backends.
    """
    workers, request = task
    start = time.perf_counter()
    request = request.materialize()
    reports = [worker.evaluate(request) for worker in workers]
    return reports, time.perf_counter() - start


def _run_workers_serial_batch(
    task: tuple[list[Worker], list[EvaluationRequest]],
) -> tuple[list[list[WorkerReport]], float]:
    """Evaluate every worker for a whole batch of requests in one task.

    Each worker sees the full batch through :meth:`Worker.evaluate_batch`, so
    workers that fuse work across candidates (batched GEMM training,
    vectorized hardware sweeps) amortize it here.  Returns one report list
    per request, in request order, plus the total elapsed wall clock.
    """
    workers, requests = task
    if not requests:
        return [], 0.0
    start = time.perf_counter()
    requests = [request.materialize() for request in requests]
    per_worker = [worker.evaluate_batch(requests) for worker in workers]
    reports_per_request = [list(reports) for reports in zip(*per_worker)]
    return reports_per_request, time.perf_counter() - start


class Master:
    """Distributes candidate evaluations to workers and merges their reports.

    Parameters
    ----------
    workers:
        The workers to consult for every candidate.  Order does not matter;
        reports are merged field-wise (last non-None wins per field, errors
        are concatenated).
    dataset:
        Dataset attached to every evaluation request.
    evaluation_protocol / num_folds:
        The accuracy-evaluation protocol ("1-fold" or "10-fold").
    training_config:
        Per-candidate training hyperparameters.
    backend:
        Execution backend ("serial", "threads", "processes" or an instance)
        used both to fan one candidate's worker reports out
        (:meth:`evaluate`) and to keep several whole candidates in flight
        (:meth:`submit` / :meth:`evaluate_population`).
    max_workers:
        Pool size handed to the backend when it is resolved from a name
        (ignored when an :class:`ExecutionBackend` instance is passed).
    seed:
        Base seed; each request derives its own seed from the genome hash so
        repeated evaluations of the same genome are reproducible.
    """

    def __init__(
        self,
        workers: list[Worker],
        dataset: Dataset | None = None,
        evaluation_protocol: str = "1-fold",
        num_folds: int = 10,
        training_config: TrainingConfig | None = None,
        backend: str | ExecutionBackend | None = None,
        max_workers: int = 4,
        seed: int | None = 0,
    ) -> None:
        if not workers:
            raise ValueError("the master needs at least one worker")
        if max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.workers = list(workers)
        self.dataset = dataset
        self.evaluation_protocol = evaluation_protocol
        self.num_folds = num_folds
        self.training_config = training_config or TrainingConfig()
        self.max_workers = int(max_workers)
        self.backend = resolve_backend(backend, max_workers=self.max_workers)
        self.seed = seed
        # Futures submitted but not yet collected by drain()/evaluate_population().
        self._pending: list[Future] = []
        self._pending_lock = threading.Lock()
        # Lazily-created shared-memory export of the dataset (processes backend
        # only): requests then ship a tiny handle instead of the arrays.
        self._shared_dataset = None
        self._shared_lock = threading.Lock()

    # ------------------------------------------------------------- requests
    def _shared_handle(self):
        """Handle of the shared-memory dataset export, or None.

        Only the processes backend pays a per-request serialization cost for
        the dataset, so only it gets the shared-memory path; serial and
        thread backends share the dataset object directly.
        """
        if self.dataset is None or not isinstance(self.backend, ProcessPoolBackend):
            return None
        with self._shared_lock:
            if self._shared_dataset is None:
                from ..datasets.shared import SharedDataset

                self._shared_dataset = SharedDataset(self.dataset)
            return self._shared_dataset.handle

    def build_request(self, genome: CoDesignGenome) -> EvaluationRequest:
        """Build the evaluation request for one genome."""
        derived_seed = None
        if self.seed is not None:
            derived_seed = (self.seed + int(genome.cache_key()[:8], 16)) % (2**32)
        shared_handle = self._shared_handle()
        return EvaluationRequest(
            genome=genome,
            dataset=self.dataset if shared_handle is None else None,
            evaluation_protocol=self.evaluation_protocol,
            num_folds=self.num_folds,
            training_config=self.training_config,
            seed=derived_seed,
            shared_dataset=shared_handle,
        )

    # ------------------------------------------------------------ evaluation
    def evaluate(self, genome: CoDesignGenome) -> CandidateEvaluation:
        """Evaluate one candidate, fanning its worker reports out through the
        backend, and merge them."""
        request = self.build_request(genome)
        start = time.perf_counter()
        reports = self.backend.map(partial(_evaluate_worker, request=request), self.workers)
        elapsed = time.perf_counter() - start
        return self._merge(genome, reports, elapsed)

    # The engine expects a plain callable evaluator.
    __call__ = evaluate

    def submit(self, genome: CoDesignGenome) -> "Future[CandidateEvaluation]":
        """Schedule one whole candidate evaluation; return its future.

        The returned future resolves to the merged
        :class:`CandidateEvaluation`.  Outstanding futures are tracked so
        :meth:`drain` can collect everything still in flight.
        """
        request = self.build_request(genome)
        inner = self.backend.submit(_run_workers_serial, (self.workers, request))
        outer: Future = Future()
        outer.set_running_or_notify_cancel()

        def _finish(done: Future) -> None:
            try:
                exc = done.exception()
                if exc is not None:
                    outer.set_exception(exc)
                else:
                    reports, elapsed = done.result()
                    outer.set_result(self._merge(genome, reports, elapsed))
            except Exception as unexpected:  # noqa: BLE001 - never lose a waiter
                outer.set_exception(unexpected)

        inner.add_done_callback(_finish)
        with self._pending_lock:
            self._pending.append(outer)
        return outer

    def submit_batch(self, genomes: list[CoDesignGenome]) -> "Future[list[CandidateEvaluation]]":
        """Schedule a whole batch of candidates as one backend task.

        The batch runs through :meth:`Worker.evaluate_batch` on each worker,
        so same-topology candidates share fused training and hardware sweeps.
        The returned future resolves to one merged evaluation per genome, in
        input order; per-candidate ``evaluation_seconds`` is the batch wall
        clock split evenly across candidates.
        """
        genomes = list(genomes)
        requests = [self.build_request(genome) for genome in genomes]
        inner = self.backend.submit(_run_workers_serial_batch, (self.workers, requests))
        outer: Future = Future()
        outer.set_running_or_notify_cancel()

        def _finish(done: Future) -> None:
            try:
                exc = done.exception()
                if exc is not None:
                    outer.set_exception(exc)
                else:
                    reports_per_request, elapsed = done.result()
                    per_candidate = elapsed / max(1, len(genomes))
                    outer.set_result(
                        [
                            self._merge(genome, reports, per_candidate)
                            for genome, reports in zip(genomes, reports_per_request)
                        ]
                    )
            except Exception as unexpected:  # noqa: BLE001 - never lose a waiter
                outer.set_exception(unexpected)

        inner.add_done_callback(_finish)
        with self._pending_lock:
            self._pending.append(outer)
        return outer

    def evaluate_batch(self, genomes: list[CoDesignGenome]) -> list[CandidateEvaluation]:
        """Evaluate a batch of candidates as one fused task, in input order."""
        genomes = list(genomes)
        if not genomes:
            return []
        future = self.submit_batch(genomes)
        results = future.result()
        with self._pending_lock:
            self._pending = [f for f in self._pending if f is not future]
        return results

    @property
    def in_flight_count(self) -> int:
        """Number of submitted candidate evaluations not yet completed."""
        with self._pending_lock:
            return sum(1 for future in self._pending if not future.done())

    def drain(self) -> list[CandidateEvaluation]:
        """Collect every submitted-but-not-yet-drained evaluation, blocking
        until all have finished; results come back in completion order.

        Batch futures (from :meth:`submit_batch`) are flattened in place, so
        the result is always one flat list of evaluations."""
        with self._pending_lock:
            pending = list(self._pending)
            self._pending.clear()
        results: list[CandidateEvaluation] = []
        for future in self.backend.as_completed(pending):
            value = future.result()
            if isinstance(value, list):
                results.extend(value)
            else:
                results.append(value)
        return results

    def as_completed(self, futures) -> Iterator["Future[CandidateEvaluation]"]:
        """Yield candidate futures in completion order (backend passthrough)."""
        return self.backend.as_completed(futures)

    def evaluate_population(self, genomes: list[CoDesignGenome]) -> list[CandidateEvaluation]:
        """Evaluate a batch of candidates through the execution backend,
        preserving input order."""
        futures = [self.submit(genome) for genome in genomes]
        results = [future.result() for future in futures]
        collected = set(map(id, futures))
        with self._pending_lock:
            self._pending = [f for f in self._pending if id(f) not in collected]
        return results

    # --------------------------------------------------------------- merging
    def _merge(
        self, genome: CoDesignGenome, reports: list[WorkerReport], elapsed: float
    ) -> CandidateEvaluation:
        accuracy = 0.0
        accuracy_std = 0.0
        parameter_count = 0
        train_seconds = 0.0
        fpga_metrics = None
        gpu_metrics = None
        synthesis = None
        errors: list[str] = []
        extras: dict = {}

        for report in reports:
            if report.accuracy is not None:
                accuracy = report.accuracy
                accuracy_std = report.accuracy_std or 0.0
            if report.parameter_count is not None:
                parameter_count = report.parameter_count
            if report.fpga_metrics is not None:
                fpga_metrics = report.fpga_metrics
            if report.gpu_metrics is not None:
                gpu_metrics = report.gpu_metrics
            if report.synthesis is not None:
                synthesis = report.synthesis
            train_seconds += report.train_seconds
            if report.error:
                errors.append(f"{report.worker_name}: {report.error}")
            if report.extras:
                extras[report.worker_name] = dict(report.extras)

        return CandidateEvaluation(
            genome=genome,
            accuracy=accuracy,
            accuracy_std=accuracy_std,
            parameter_count=parameter_count,
            fpga_metrics=fpga_metrics,
            gpu_metrics=gpu_metrics,
            synthesis=synthesis,
            train_seconds=train_seconds,
            evaluation_seconds=elapsed,
            error="; ".join(errors),
            extras=extras,
        )

    def shutdown(self) -> None:
        """Wait for in-flight work and release the execution backend."""
        with self._pending_lock:
            pending = list(self._pending)
            self._pending.clear()
        for future in pending:
            try:
                future.result()
            except Exception:  # noqa: BLE001 - shutdown must not raise on failed work
                pass
        self.backend.shutdown()
        # Unlink shared-memory segments only after the pool is gone, so no
        # child can race an unlinked segment on first attach.
        with self._shared_lock:
            shared, self._shared_dataset = self._shared_dataset, None
        if shared is not None:
            shared.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        worker_names = ", ".join(worker.name for worker in self.workers)
        return f"Master(workers=[{worker_names}], backend={self.backend.name})"
