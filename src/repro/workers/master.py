"""The master process: orchestrates workers and merges their reports.

Section III-A: *"The Worker returns the raw evaluation information to a Master
process.  The Master process orchestrates the evaluation process by
distributing the co-design population and by evaluating the results."*

The :class:`Master` owns a set of workers (simulation, hardware database,
physical), fans each candidate's evaluation out to all of them through an
execution backend, and merges the individual
:class:`~repro.workers.base.WorkerReport` records into a single
:class:`~repro.core.candidate.CandidateEvaluation` the engine and fitness
functions consume.  It is also a plain callable ``genome -> CandidateEvaluation``
so it plugs directly into the engine's ``evaluator`` slot.
"""

from __future__ import annotations

import time

from ..core.candidate import CandidateEvaluation
from ..core.genome import CoDesignGenome
from ..datasets.base import Dataset
from ..nn.training import TrainingConfig
from .backends import ExecutionBackend, SerialBackend, resolve_backend
from .base import EvaluationRequest, Worker, WorkerReport

__all__ = ["Master"]


class Master:
    """Distributes candidate evaluations to workers and merges their reports.

    Parameters
    ----------
    workers:
        The workers to consult for every candidate.  Order does not matter;
        reports are merged field-wise (last non-None wins per field, errors
        are concatenated).
    dataset:
        Dataset attached to every evaluation request.
    evaluation_protocol / num_folds:
        The accuracy-evaluation protocol ("1-fold" or "10-fold").
    training_config:
        Per-candidate training hyperparameters.
    backend:
        Execution backend for fanning a *population* out
        (:meth:`evaluate_population`); single-candidate calls always run
        serially in the calling thread.
    seed:
        Base seed; each request derives its own seed from the genome hash so
        repeated evaluations of the same genome are reproducible.
    """

    def __init__(
        self,
        workers: list[Worker],
        dataset: Dataset | None = None,
        evaluation_protocol: str = "1-fold",
        num_folds: int = 10,
        training_config: TrainingConfig | None = None,
        backend: str | ExecutionBackend | None = None,
        seed: int | None = 0,
    ) -> None:
        if not workers:
            raise ValueError("the master needs at least one worker")
        self.workers = list(workers)
        self.dataset = dataset
        self.evaluation_protocol = evaluation_protocol
        self.num_folds = num_folds
        self.training_config = training_config or TrainingConfig()
        self.backend = resolve_backend(backend)
        self.seed = seed

    # ------------------------------------------------------------- requests
    def build_request(self, genome: CoDesignGenome) -> EvaluationRequest:
        """Build the evaluation request for one genome."""
        derived_seed = None
        if self.seed is not None:
            derived_seed = (self.seed + int(genome.cache_key()[:8], 16)) % (2**32)
        return EvaluationRequest(
            genome=genome,
            dataset=self.dataset,
            evaluation_protocol=self.evaluation_protocol,
            num_folds=self.num_folds,
            training_config=self.training_config,
            seed=derived_seed,
        )

    # ------------------------------------------------------------ evaluation
    def evaluate(self, genome: CoDesignGenome) -> CandidateEvaluation:
        """Evaluate one candidate with every worker and merge the reports."""
        request = self.build_request(genome)
        start = time.perf_counter()
        reports = [worker.evaluate(request) for worker in self.workers]
        elapsed = time.perf_counter() - start
        return self._merge(genome, reports, elapsed)

    # The engine expects a plain callable evaluator.
    __call__ = evaluate

    def evaluate_population(self, genomes: list[CoDesignGenome]) -> list[CandidateEvaluation]:
        """Evaluate a batch of candidates through the execution backend."""
        return self.backend.map(self.evaluate, list(genomes))

    # --------------------------------------------------------------- merging
    def _merge(
        self, genome: CoDesignGenome, reports: list[WorkerReport], elapsed: float
    ) -> CandidateEvaluation:
        accuracy = 0.0
        accuracy_std = 0.0
        parameter_count = 0
        train_seconds = 0.0
        fpga_metrics = None
        gpu_metrics = None
        synthesis = None
        errors: list[str] = []
        extras: dict = {}

        for report in reports:
            if report.accuracy is not None:
                accuracy = report.accuracy
                accuracy_std = report.accuracy_std or 0.0
            if report.parameter_count is not None:
                parameter_count = report.parameter_count
            if report.fpga_metrics is not None:
                fpga_metrics = report.fpga_metrics
            if report.gpu_metrics is not None:
                gpu_metrics = report.gpu_metrics
            if report.synthesis is not None:
                synthesis = report.synthesis
            train_seconds += report.train_seconds
            if report.error:
                errors.append(f"{report.worker_name}: {report.error}")
            if report.extras:
                extras[report.worker_name] = dict(report.extras)

        return CandidateEvaluation(
            genome=genome,
            accuracy=accuracy,
            accuracy_std=accuracy_std,
            parameter_count=parameter_count,
            fpga_metrics=fpga_metrics,
            gpu_metrics=gpu_metrics,
            synthesis=synthesis,
            train_seconds=train_seconds,
            evaluation_seconds=elapsed,
            error="; ".join(errors),
            extras=extras,
        )

    def shutdown(self) -> None:
        """Release the execution backend's resources."""
        self.backend.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        worker_names = ", ".join(worker.name for worker in self.workers)
        return f"Master(workers=[{worker_names}], backend={self.backend.name})"
