"""Physical worker: synthesis-level fitness of the hardware design itself.

Section III-B: *"Physical workers can be used to synthesize and evaluate
hardware designs.  While the hardware database worker provides fitness of the
overall application with metrics such as throughput, the physical worker aims
to provide the fitness of the hardware design itself through metrics such as
power, logic utilization, and operation frequency.  In the case of Intel
FPGAs, the physical worker responds with ALM, M20K, and DSP utilization, power
estimations, and clock frequency (Fmax)."*

Running Quartus is replaced by the analytical
:class:`~repro.hardware.synthesis.SynthesisModel`; the report interface is the
same, so a real synthesis backend could be substituted without touching the
master or the engine.
"""

from __future__ import annotations

from ..hardware.device import ARRIA10_GX1150, FPGADevice
from ..hardware.synthesis import SynthesisModel
from .base import EvaluationRequest, Worker, WorkerReport, register_worker

__all__ = ["PhysicalWorker"]


class PhysicalWorker(Worker):
    """Estimates synthesis-level metrics (ALM/M20K/DSP, Fmax, power)."""

    name = "physical"

    def __init__(self, device: FPGADevice = ARRIA10_GX1150, model: SynthesisModel | None = None) -> None:
        self.device = device
        self.model = model or SynthesisModel()

    def evaluate(self, request: EvaluationRequest) -> WorkerReport:
        """Estimate the synthesis outcome of the candidate's grid configuration."""
        report = WorkerReport(worker_name=self.name)
        try:
            report.synthesis = self.model.estimate(request.genome.hardware.grid, self.device)
        except Exception as exc:  # noqa: BLE001 - report, don't crash the master
            report.error = f"synthesis model failed: {exc}"
        return report


register_worker("physical", PhysicalWorker, aliases=("synthesis",))
