"""Worker protocol and shared request/report types.

Section III-B of the paper describes three kinds of workers the evolutionary
engine can query:

* the **simulation worker** for instruction-set architectures (CPU/GPU) — it
  also performs the network training that produces accuracy,
* the **hardware database worker** for modeled FPGA overlays, and
* the **physical worker** for synthesis-level metrics (ALM/M20K/DSP, Fmax,
  power).

All workers implement the same small protocol: ``evaluate(request) ->
WorkerReport``.  Requests carry the genome plus the dataset/evaluation context
so workers stay stateless with respect to the search and can be distributed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..core.genome import CoDesignGenome
from ..datasets.base import Dataset
from ..nn.training import TrainingConfig
from ..registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datasets.shared import SharedDatasetHandle

__all__ = [
    "EvaluationRequest",
    "WorkerReport",
    "Worker",
    "WORKER_TYPES",
    "register_worker",
    "available_workers",
    "resolve_worker",
]


@dataclass(frozen=True)
class EvaluationRequest:
    """One unit of work handed to a worker.

    Attributes
    ----------
    genome:
        The co-design candidate to evaluate.
    dataset:
        The dataset the candidate's network is trained/evaluated on.  Workers
        that do not need data (hardware database, physical) ignore it.
    evaluation_protocol:
        ``"1-fold"`` or ``"10-fold"``, matching the paper's two protocols.
    num_folds:
        Fold count for the 10-fold protocol.
    training_config:
        Hyperparameters of the per-candidate training loop.
    seed:
        Seed controlling training and fold shuffling, for reproducibility.
    """

    genome: CoDesignGenome
    dataset: Dataset | None = None
    evaluation_protocol: str = "1-fold"
    num_folds: int = 10
    training_config: TrainingConfig = field(default_factory=TrainingConfig)
    seed: int | None = None
    shared_dataset: "SharedDatasetHandle | None" = None

    def __post_init__(self) -> None:
        if self.evaluation_protocol not in ("1-fold", "10-fold"):
            raise ValueError(
                f"evaluation_protocol must be '1-fold' or '10-fold', got {self.evaluation_protocol!r}"
            )
        if self.num_folds < 2:
            raise ValueError(f"num_folds must be >= 2, got {self.num_folds}")

    def materialize(self) -> "EvaluationRequest":
        """Resolve the shared-memory dataset handle, if any, into a dataset.

        With the processes backend the master ships a tiny
        :class:`~repro.datasets.shared.SharedDatasetHandle` instead of the
        arrays; the receiving process attaches (memoized per process) before
        the workers run.  Requests without a handle pass through unchanged.
        """
        if self.dataset is not None or self.shared_dataset is None:
            return self
        from ..datasets.shared import attach_shared_dataset

        return replace(self, dataset=attach_shared_dataset(self.shared_dataset), shared_dataset=None)


@dataclass
class WorkerReport:
    """The raw measurements one worker produced for one request.

    Only the fields a given worker knows about are populated; the master
    merges reports from all workers into a single
    :class:`~repro.core.candidate.CandidateEvaluation`.
    """

    worker_name: str
    accuracy: float | None = None
    accuracy_std: float | None = None
    parameter_count: int | None = None
    train_seconds: float = 0.0
    fpga_metrics: object | None = None
    gpu_metrics: object | None = None
    synthesis: object | None = None
    error: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Whether this worker failed on the request."""
        return bool(self.error)


class Worker:
    """Base class for all workers."""

    #: Stable identifier used in reports and diagnostics.
    name: str = "worker"

    def evaluate(self, request: EvaluationRequest) -> WorkerReport:
        """Evaluate one request and return the raw measurements."""
        raise NotImplementedError

    def evaluate_batch(self, requests: list[EvaluationRequest]) -> list[WorkerReport]:
        """Evaluate many requests, one report per request, in input order.

        The default simply loops :meth:`evaluate`; workers that can amortize
        work across a population (fused training, vectorized hardware sweeps)
        override this.  Overrides must return results identical to the looped
        default for the same requests.
        """
        return [self.evaluate(request) for request in requests]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


#: Registry of worker classes, keyed by stable type name.  The paper's three
#: worker types register themselves on import; plugins may add (or override)
#: types so the search front-end builds them by name.
WORKER_TYPES: Registry[type] = Registry("worker type")

register_worker = WORKER_TYPES.register


def available_workers() -> list[str]:
    """Canonical names of all registered worker types."""
    return WORKER_TYPES.available()


def resolve_worker(name: str) -> type:
    """Look up a worker class by registered type name."""
    return WORKER_TYPES.resolve(name)
