"""Worker/master evaluation substrate.

Implements the paper's three worker types (simulation, hardware database,
physical) and the master process that distributes candidate evaluations and
merges the results, plus the execution backends used for single-machine
parallelism.
"""

from .backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    available_backends,
    resolve_backend,
)
from .base import EvaluationRequest, Worker, WorkerReport
from .hardware_db import HardwareDatabaseWorker
from .master import Master
from .physical import PhysicalWorker
from .simulation import SimulationWorker

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "available_backends",
    "resolve_backend",
    "EvaluationRequest",
    "Worker",
    "WorkerReport",
    "HardwareDatabaseWorker",
    "Master",
    "PhysicalWorker",
    "SimulationWorker",
]
