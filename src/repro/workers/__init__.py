"""Worker/master evaluation substrate.

Implements the paper's three worker types (simulation, hardware database,
physical) and the master process that distributes candidate evaluations and
merges the results, plus the execution backends used for single-machine
parallelism.
"""

from .backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    available_backends,
    register_backend,
    resolve_backend,
)
from .base import (
    WORKER_TYPES,
    EvaluationRequest,
    Worker,
    WorkerReport,
    available_workers,
    register_worker,
    resolve_worker,
)
from .hardware_db import HardwareDatabaseWorker
from .master import Master
from .physical import PhysicalWorker
from .simulation import SimulationWorker

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "available_backends",
    "register_backend",
    "resolve_backend",
    "WORKER_TYPES",
    "EvaluationRequest",
    "Worker",
    "WorkerReport",
    "available_workers",
    "register_worker",
    "resolve_worker",
    "HardwareDatabaseWorker",
    "Master",
    "PhysicalWorker",
    "SimulationWorker",
]
