"""Simulation worker: trains candidate networks and models GPU execution.

In the paper the simulation worker handles "instruction-set based
architectures such as CPU and GPU": it converts the ANN description into a
runnable form, executes it on the target, and returns throughput/latency/power
metrics.  In this reproduction the simulation worker does two things:

* **Accuracy measurement** — it trains the candidate MLP from scratch on the
  request's dataset (single fold or k-fold, per the request protocol).  This
  replaces the TensorFlow training runs of the original system.
* **GPU performance modeling** — it runs the
  :class:`~repro.hardware.gpu_model.GPUPerformanceModel` for the configured
  GPU baseline, replacing the TensorFlow-trace profiling of the original
  system.

The two concerns are kept in one worker because that is how the original flow
behaves (the GPU path both trains and measures); a ``measure_gpu=False`` flag
turns the worker into a pure training worker for accuracy-only searches.
"""

from __future__ import annotations

import time

from ..hardware.device import GPUDevice, TITAN_X
from ..hardware.gpu_model import GPUPerformanceModel
from ..nn.evaluation import evaluate_kfold, evaluate_single_fold
from ..nn.preprocessing import train_test_split
from .base import EvaluationRequest, Worker, WorkerReport, register_worker

__all__ = ["SimulationWorker"]


class SimulationWorker(Worker):
    """Trains candidates and models the GPU baseline.

    Parameters
    ----------
    gpu:
        The GPU device to model; defaults to the Titan X used for the paper's
        Stratix 10 comparisons.
    measure_gpu:
        When false, only accuracy is measured (no GPU metrics in the report).
    holdout_fraction:
        Test fraction used when the dataset has no pre-split test partition
        but the request still asks for single-fold evaluation.
    """

    name = "simulation"

    def __init__(
        self,
        gpu: GPUDevice | None = TITAN_X,
        measure_gpu: bool = True,
        holdout_fraction: float = 0.25,
    ) -> None:
        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError(f"holdout_fraction must be in (0, 1), got {holdout_fraction}")
        self.gpu = gpu
        self.measure_gpu = measure_gpu and gpu is not None
        self.holdout_fraction = float(holdout_fraction)

    def evaluate(self, request: EvaluationRequest) -> WorkerReport:
        """Train the candidate network and (optionally) model GPU execution."""
        report = WorkerReport(worker_name=self.name)
        if request.dataset is None:
            report.error = "simulation worker requires a dataset"
            return report

        dataset = request.dataset
        spec = request.genome.mlp.to_spec(dataset.num_features, dataset.num_classes)
        report.parameter_count = spec.parameter_count

        start = time.perf_counter()
        try:
            if request.evaluation_protocol == "10-fold":
                result = evaluate_kfold(
                    spec,
                    dataset.features,
                    dataset.labels,
                    num_folds=request.num_folds,
                    training_config=request.training_config,
                    seed=request.seed,
                )
            else:
                train_x, train_y, test_x, test_y = self._single_fold_partitions(dataset, request.seed)
                result = evaluate_single_fold(
                    spec,
                    train_x,
                    train_y,
                    test_x,
                    test_y,
                    training_config=request.training_config,
                    seed=request.seed,
                )
        except Exception as exc:  # noqa: BLE001 - report, don't crash the master
            report.error = f"training failed: {exc}"
            return report
        report.accuracy = result.accuracy
        report.accuracy_std = result.accuracy_std
        report.train_seconds = time.perf_counter() - start
        report.extras["fold_accuracies"] = list(result.fold_accuracies)

        if self.measure_gpu:
            try:
                model = GPUPerformanceModel(self.gpu)
                report.gpu_metrics = model.evaluate(spec, batch_size=request.genome.gpu_batch_size)
            except Exception as exc:  # noqa: BLE001
                report.error = f"GPU model failed: {exc}"
        return report

    def _single_fold_partitions(self, dataset, seed):
        """Return (train_x, train_y, test_x, test_y) for single-fold evaluation."""
        if dataset.has_test_split:
            return dataset.features, dataset.labels, dataset.test_features, dataset.test_labels
        train_x, test_x, train_y, test_y = train_test_split(
            dataset.features, dataset.labels, test_fraction=self.holdout_fraction, seed=seed
        )
        return train_x, train_y, test_x, test_y

    # ---------------------------------------------------------------- batch
    def evaluate_batch(self, requests: list[EvaluationRequest]) -> list[WorkerReport]:
        """Train a whole population slice with fused GEMM batches.

        Requests are grouped by (dataset, topology, protocol); each group is
        trained through the batched evaluation path, which is bit-identical
        to per-request :meth:`evaluate` at the same seeds.  Preprocessing
        that does not depend on the candidate (the pre-split scaler fit and
        transform) is done once per dataset via
        :func:`~repro.datasets.prepared.prepare_dataset`.  Any group that
        fails the fused path falls back to per-request scalar evaluation, so
        error reports also match the scalar path.
        """
        reports: list[WorkerReport | None] = [None] * len(requests)
        groups: dict[tuple, list[int]] = {}
        for position, request in enumerate(requests):
            if request.dataset is None:
                report = WorkerReport(worker_name=self.name)
                report.error = "simulation worker requires a dataset"
                reports[position] = report
                continue
            dataset = request.dataset
            spec = request.genome.mlp.to_spec(dataset.num_features, dataset.num_classes)
            key = (
                id(dataset),
                spec,
                request.evaluation_protocol,
                request.num_folds,
                id(request.training_config),
            )
            groups.setdefault(key, []).append(position)

        for positions in groups.values():
            group = [requests[p] for p in positions]
            try:
                group_reports = self._evaluate_group(group)
            except Exception:  # noqa: BLE001 - fused path failed; redo scalar
                group_reports = [self.evaluate(request) for request in group]
            for position, report in zip(positions, group_reports):
                reports[position] = report
        return reports  # type: ignore[return-value]

    def _evaluate_group(self, requests: list[EvaluationRequest]) -> list[WorkerReport]:
        """Fused evaluation of same-(dataset, spec, protocol) requests."""
        from ..datasets.prepared import prepare_dataset
        from ..nn.evaluation import _score_runs_batched, evaluate_kfold_batch

        template = requests[0]
        dataset = template.dataset
        spec = template.genome.mlp.to_spec(dataset.num_features, dataset.num_classes)
        seeds = [request.seed for request in requests]

        start = time.perf_counter()
        if template.evaluation_protocol == "10-fold":
            results = evaluate_kfold_batch(
                spec,
                dataset.features,
                dataset.labels,
                num_folds=template.num_folds,
                training_config=template.training_config,
                seeds=seeds,
            )
            scored = [(result.accuracy, result.accuracy_std, result.fold_accuracies) for result in results]
        elif dataset.has_test_split:
            # Candidate-independent preprocessing, done once per dataset per
            # process: the scaler is fitted on the full train split exactly as
            # _train_and_score would, so standardize=False below is bit-safe.
            prepared = prepare_dataset(dataset)
            runs = [
                (
                    prepared.standardized_features,
                    dataset.labels,
                    prepared.standardized_test_features,
                    dataset.test_labels,
                    seed,
                )
                for seed in seeds
            ]
            outcomes = _score_runs_batched(
                spec, runs, template.training_config, standardize=False, max_group_size=8
            )
            scored = [(score, 0.0, [score]) for score, _history in outcomes]
        else:
            runs = []
            for seed in seeds:
                train_x, train_y, test_x, test_y = self._single_fold_partitions(dataset, seed)
                runs.append((train_x, train_y, test_x, test_y, seed))
            outcomes = _score_runs_batched(
                spec, runs, template.training_config, standardize=True, max_group_size=8
            )
            scored = [(score, 0.0, [score]) for score, _history in outcomes]
        per_request_seconds = (time.perf_counter() - start) / len(requests)

        reports = []
        for request, (accuracy, accuracy_std, fold_accuracies) in zip(requests, scored):
            report = WorkerReport(worker_name=self.name)
            report.parameter_count = spec.parameter_count
            report.accuracy = accuracy
            report.accuracy_std = accuracy_std
            report.train_seconds = per_request_seconds
            report.extras["fold_accuracies"] = list(fold_accuracies)
            if self.measure_gpu:
                try:
                    model = GPUPerformanceModel(self.gpu)
                    report.gpu_metrics = model.evaluate(
                        spec, batch_size=request.genome.gpu_batch_size
                    )
                except Exception as exc:  # noqa: BLE001
                    report.error = f"GPU model failed: {exc}"
            reports.append(report)
        return reports


register_worker("simulation", SimulationWorker, aliases=("sim",))
