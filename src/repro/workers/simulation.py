"""Simulation worker: trains candidate networks and models GPU execution.

In the paper the simulation worker handles "instruction-set based
architectures such as CPU and GPU": it converts the ANN description into a
runnable form, executes it on the target, and returns throughput/latency/power
metrics.  In this reproduction the simulation worker does two things:

* **Accuracy measurement** — it trains the candidate MLP from scratch on the
  request's dataset (single fold or k-fold, per the request protocol).  This
  replaces the TensorFlow training runs of the original system.
* **GPU performance modeling** — it runs the
  :class:`~repro.hardware.gpu_model.GPUPerformanceModel` for the configured
  GPU baseline, replacing the TensorFlow-trace profiling of the original
  system.

The two concerns are kept in one worker because that is how the original flow
behaves (the GPU path both trains and measures); a ``measure_gpu=False`` flag
turns the worker into a pure training worker for accuracy-only searches.
"""

from __future__ import annotations

import time

from ..hardware.device import GPUDevice, TITAN_X
from ..hardware.gpu_model import GPUPerformanceModel
from ..nn.evaluation import evaluate_kfold, evaluate_single_fold
from ..nn.preprocessing import train_test_split
from .base import EvaluationRequest, Worker, WorkerReport, register_worker

__all__ = ["SimulationWorker"]


class SimulationWorker(Worker):
    """Trains candidates and models the GPU baseline.

    Parameters
    ----------
    gpu:
        The GPU device to model; defaults to the Titan X used for the paper's
        Stratix 10 comparisons.
    measure_gpu:
        When false, only accuracy is measured (no GPU metrics in the report).
    holdout_fraction:
        Test fraction used when the dataset has no pre-split test partition
        but the request still asks for single-fold evaluation.
    """

    name = "simulation"

    def __init__(
        self,
        gpu: GPUDevice | None = TITAN_X,
        measure_gpu: bool = True,
        holdout_fraction: float = 0.25,
    ) -> None:
        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError(f"holdout_fraction must be in (0, 1), got {holdout_fraction}")
        self.gpu = gpu
        self.measure_gpu = measure_gpu and gpu is not None
        self.holdout_fraction = float(holdout_fraction)

    def evaluate(self, request: EvaluationRequest) -> WorkerReport:
        """Train the candidate network and (optionally) model GPU execution."""
        report = WorkerReport(worker_name=self.name)
        if request.dataset is None:
            report.error = "simulation worker requires a dataset"
            return report

        dataset = request.dataset
        spec = request.genome.mlp.to_spec(dataset.num_features, dataset.num_classes)
        report.parameter_count = spec.parameter_count

        start = time.perf_counter()
        try:
            if request.evaluation_protocol == "10-fold":
                result = evaluate_kfold(
                    spec,
                    dataset.features,
                    dataset.labels,
                    num_folds=request.num_folds,
                    training_config=request.training_config,
                    seed=request.seed,
                )
            else:
                train_x, train_y, test_x, test_y = self._single_fold_partitions(dataset, request.seed)
                result = evaluate_single_fold(
                    spec,
                    train_x,
                    train_y,
                    test_x,
                    test_y,
                    training_config=request.training_config,
                    seed=request.seed,
                )
        except Exception as exc:  # noqa: BLE001 - report, don't crash the master
            report.error = f"training failed: {exc}"
            return report
        report.accuracy = result.accuracy
        report.accuracy_std = result.accuracy_std
        report.train_seconds = time.perf_counter() - start
        report.extras["fold_accuracies"] = list(result.fold_accuracies)

        if self.measure_gpu:
            try:
                model = GPUPerformanceModel(self.gpu)
                report.gpu_metrics = model.evaluate(spec, batch_size=request.genome.gpu_batch_size)
            except Exception as exc:  # noqa: BLE001
                report.error = f"GPU model failed: {exc}"
        return report

    def _single_fold_partitions(self, dataset, seed):
        """Return (train_x, train_y, test_x, test_y) for single-fold evaluation."""
        if dataset.has_test_split:
            return dataset.features, dataset.labels, dataset.test_features, dataset.test_labels
        train_x, test_x, train_y, test_y = train_test_split(
            dataset.features, dataset.labels, test_fraction=self.holdout_fraction, seed=seed
        )
        return train_x, train_y, test_x, test_y


register_worker("simulation", SimulationWorker, aliases=("sim",))
