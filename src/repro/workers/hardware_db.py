"""Hardware database worker: FPGA overlay performance from the analytical model.

Section III-B: *"Hardware database workers provide a means for hardware
platforms that are easily simulated or modeled.  In our experiments ... we
leveraged the hardware database worker to provide a means of accepting both an
ANN description and hardware configuration that together were run through a
model to obtain the metrics for fitness evaluation."*  The reconfigurable
nature of FPGAs plus the modeled overlay "allows the worker to assess many
configurations in a relatively swift manner compared to running through
synthesis tools" — which is exactly why the evolutionary search is feasible.

This worker needs no dataset: the dataset's only influence on hardware
performance is through the GEMM dimensions, which the genome + dataset shape
already determine.  The input/output sizes are taken from the request's
dataset when present, or can be fixed at construction time for dataset-free
use (e.g. hardware-only sweeps).
"""

from __future__ import annotations

from ..hardware.device import ARRIA10_GX1150, FPGADevice
from ..hardware.fpga_model import FPGAPerformanceModel
from ..hardware.memory import DDR4_BANK, MemorySystem
from .base import EvaluationRequest, Worker, WorkerReport, register_worker

__all__ = ["HardwareDatabaseWorker"]


class HardwareDatabaseWorker(Worker):
    """Runs the FPGA overlay model for a co-design candidate.

    Parameters
    ----------
    device:
        The FPGA target; defaults to the Arria 10 GX 1150 used in most of the
        paper's experiments.
    memory:
        Optional explicit memory system; by default one is built from the
        device's DDR bank count (the Figure 3 sweep passes explicit systems).
    input_size / output_size:
        Fallback problem dimensions used when a request carries no dataset.
    """

    name = "hardware_database"

    def __init__(
        self,
        device: FPGADevice = ARRIA10_GX1150,
        memory: MemorySystem | None = None,
        input_size: int = 0,
        output_size: int = 0,
    ) -> None:
        self.device = device
        self.memory = memory if memory is not None else MemorySystem(DDR4_BANK, banks=device.ddr_banks)
        self.model = FPGAPerformanceModel(device, memory=self.memory)
        self.input_size = int(input_size)
        self.output_size = int(output_size)

    def evaluate(self, request: EvaluationRequest) -> WorkerReport:
        """Model the candidate's network on the candidate's grid configuration."""
        report = WorkerReport(worker_name=self.name)
        input_size, output_size = self._problem_dimensions(request)
        if input_size <= 0 or output_size <= 0:
            report.error = (
                "hardware database worker needs a dataset or explicit input/output sizes"
            )
            return report
        spec = request.genome.mlp.to_spec(input_size, output_size)
        hardware = request.genome.hardware
        try:
            report.fpga_metrics = self.model.evaluate(
                spec, hardware.grid, batch_size=hardware.batch_size
            )
        except Exception as exc:  # noqa: BLE001 - infeasible grids become reported errors
            report.error = f"FPGA model failed: {exc}"
        report.parameter_count = spec.parameter_count
        return report

    def evaluate_batch(self, requests: list[EvaluationRequest]) -> list[WorkerReport]:
        """Model a whole population slice in one vectorized sweep.

        All feasible candidates are scored together through
        :func:`~repro.hardware.vectorized.evaluate_workloads`, which produces
        metrics bit-identical to per-request :meth:`evaluate`.  Requests with
        missing dimensions or infeasible grids keep going through the scalar
        path so their error strings match.
        """
        from ..hardware.vectorized import evaluate_workloads

        reports: list[WorkerReport | None] = [None] * len(requests)
        workloads = []
        batched_positions = []
        for position, request in enumerate(requests):
            input_size, output_size = self._problem_dimensions(request)
            hardware = request.genome.hardware
            if (
                input_size <= 0
                or output_size <= 0
                or not hardware.grid.fits(self.device)
                or hardware.batch_size <= 0
            ):
                reports[position] = self.evaluate(request)
                continue
            spec = request.genome.mlp.to_spec(input_size, output_size)
            workloads.append(
                (spec.gemm_shapes(hardware.batch_size), hardware.grid, hardware.batch_size)
            )
            batched_positions.append((position, spec))

        if workloads:
            try:
                batched = evaluate_workloads(self.model, workloads)
            except Exception:  # noqa: BLE001 - fused path failed; redo scalar
                batched = None
            if batched is None:
                for (position, _spec), _workload in zip(batched_positions, workloads):
                    reports[position] = self.evaluate(requests[position])
            else:
                for (position, spec), metrics in zip(batched_positions, batched):
                    report = WorkerReport(worker_name=self.name)
                    report.fpga_metrics = metrics
                    report.parameter_count = spec.parameter_count
                    reports[position] = report
        return reports  # type: ignore[return-value]

    def _problem_dimensions(self, request: EvaluationRequest) -> tuple[int, int]:
        if request.dataset is not None:
            return request.dataset.num_features, request.dataset.num_classes
        return self.input_size, self.output_size


register_worker(
    "hardware_db", HardwareDatabaseWorker, aliases=("hardware_database", "hwdb")
)
