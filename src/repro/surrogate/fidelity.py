"""Successive-halving fidelity rungs: cheap trainings before the full budget.

The second fidelity lever (after the surrogate screen): instead of spending
the full training budget on every screened survivor, train them for a few
epochs first and promote only the top fraction rung by rung.  Low-epoch
accuracy is a noisy but usefully ranked proxy for full-budget accuracy, and
hardware metrics do not depend on the training budget at all, so the rungs
rank on accuracy alone.

Rung evaluations deliberately bypass the engine's cache and the persistent
store: their results were produced under a different training budget than
the problem digest describes, so caching them would poison full-budget
lookups.  They are counted separately (``RunStatistics.rung_evaluations``).
"""

from __future__ import annotations

import dataclasses
import logging
import math

from ..core.candidate import CandidateEvaluation
from ..core.genome import CoDesignGenome

__all__ = ["SuccessiveHalving"]

logger = logging.getLogger(__name__)


class SuccessiveHalving:
    """Winnows screened survivors through ascending low-epoch rungs.

    Parameters
    ----------
    evaluator:
        The candidate evaluator.  The fidelity lever needs an evaluator
        exposing a mutable ``training_config`` attribute (the
        :class:`~repro.workers.master.Master` does); anything else disables
        the rungs and :meth:`winnow` passes candidates through unchanged.
    rung_epochs:
        Ascending low-fidelity epoch budgets; empty disables the rungs.
    promote_fraction:
        Fraction of candidates promoted out of each rung (at least one
        always survives).
    """

    def __init__(
        self,
        evaluator,
        rung_epochs: tuple[int, ...] = (),
        promote_fraction: float = 0.5,
    ) -> None:
        self.evaluator = evaluator
        self.rung_epochs = tuple(int(e) for e in rung_epochs)
        self.promote_fraction = float(promote_fraction)
        self.supported = bool(self.rung_epochs) and hasattr(evaluator, "training_config")
        if self.rung_epochs and not self.supported:
            logger.info(
                "fidelity rungs disabled: evaluator %r has no mutable training_config",
                type(evaluator).__name__,
            )

    def winnow(self, genomes: list[CoDesignGenome]) -> tuple[list[CoDesignGenome], int]:
        """Run the rungs and return ``(survivors, rung_evaluation_count)``.

        With the lever disabled (no rungs, unsupported evaluator, or a
        single candidate) the input comes back unchanged at zero cost.
        Candidates failing a rung evaluation rank last, so a crashing rung
        can never promote a broken candidate over a working one.
        """
        survivors = list(genomes)
        spent = 0
        if not self.supported or len(survivors) <= 1:
            return survivors, spent
        full_epochs = self.evaluator.training_config.epochs
        for epochs in self.rung_epochs:
            if len(survivors) <= 1:
                break
            if epochs >= full_epochs:
                # A "low-fidelity" rung at or above the full budget saves nothing.
                continue
            scored: list[tuple[float, int, CoDesignGenome]] = []
            for index, genome in enumerate(survivors):
                evaluation = self._evaluate_at(genome, epochs)
                spent += 1
                score = float("-inf") if evaluation.failed else evaluation.accuracy
                scored.append((score, index, genome))
            keep = max(1, math.ceil(len(survivors) * self.promote_fraction))
            scored.sort(key=lambda item: (-item[0], item[1]))
            survivors = [genome for _score, _index, genome in scored[:keep]]
        return survivors, spent

    def _evaluate_at(self, genome: CoDesignGenome, epochs: int) -> CandidateEvaluation:
        """One reduced-epoch evaluation; restores the full training budget."""
        saved = self.evaluator.training_config
        self.evaluator.training_config = dataclasses.replace(saved, epochs=epochs)
        try:
            return self.evaluator(genome)
        except Exception as exc:  # noqa: BLE001 - a rung failure must not kill the search
            return CandidateEvaluation(genome=genome, error=str(exc))
        finally:
            self.evaluator.training_config = saved
