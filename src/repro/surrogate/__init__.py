"""Surrogate-assisted, multi-fidelity search over the evaluation store.

The persistent :class:`~repro.store.EvaluationStore` accumulates
``(genome, accuracy, throughput)`` rows per problem digest — a free training
set the searches only used for warm-start seeding until now.  This package
turns those rows into a *data flywheel*:

* :mod:`repro.surrogate.features` — deterministic genome → numeric feature
  vectors covering the NN-topology and hardware-mapping genes.
* :mod:`repro.surrogate.model` — a lightweight NumPy ridge regressor per
  objective with split-conformal calibration, so every prediction carries a
  finite-sample coverage-guaranteed interval.
* :mod:`repro.surrogate.screen` — the offspring pre-screener: ranks bred
  candidates by predicted Pareto contribution (using the optimistic interval
  end), always passes an exploration fraction, and feeds every real result
  back for online refit.
* :mod:`repro.surrogate.fidelity` — successive-halving early termination of
  NN training: low-epoch rungs promote only the top fraction to the full
  budget.
* :mod:`repro.surrogate.engine` — the :class:`SurrogateEngine` steady-state
  loop gluing the screen and the fidelity rungs into the evolutionary engine,
  plus :func:`build_surrogate_engine`, the factory the ``surrogate`` search
  strategy calls.

The screen makes *calibrated* skip decisions (conformal intervals, after
Johnstone & Nettleton) rather than trusting raw point estimates: a candidate
is only screened out when even the optimistic end of its prediction interval
offers no Pareto contribution.  With no store attached, or fewer stored rows
than ``surrogate.min_rows``, the whole path is a no-op and the run is
bit-identical to the wrapped base strategy.
"""

from .engine import SurrogateEngine, build_surrogate_engine
from .features import feature_names, genome_features, row_features
from .fidelity import SuccessiveHalving
from .model import ConformalRegressor, SurrogateModel
from .screen import OffspringScreener

__all__ = [
    "ConformalRegressor",
    "OffspringScreener",
    "SuccessiveHalving",
    "SurrogateEngine",
    "SurrogateModel",
    "build_surrogate_engine",
    "feature_names",
    "genome_features",
    "row_features",
]
