"""The offspring pre-screener: calibrated ranking by Pareto contribution.

Each steady-state step the surrogate engine breeds a *pool* of candidate
offspring and asks the screener which one deserves a real NN training.  The
screener scores every pool member with the conformal surrogate
(:mod:`repro.surrogate.model`) and ranks them by predicted Pareto
contribution:

* Per objective it takes the **optimistic end** of the conformal interval
  (upper for maximized, lower for minimized objectives).  A candidate is
  therefore only ranked low — i.e. screened out — when even an
  interval-width benefit of the doubt leaves it unattractive; that is the
  calibrated skip decision.
* Candidates whose optimistic objective vector is not dominated by any
  current population member get a flat Pareto bonus, so predicted frontier
  growth beats marginal improvements in crowded regions.

Every real evaluation flows back through :meth:`OffspringScreener.observe`
(online refit every ``refit_interval`` fresh results) and settles the
surrogate's running mean absolute error for the run statistics.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.candidate import CandidateEvaluation
from ..core.config import SurrogateConfig
from ..core.genome import CoDesignGenome
from ..core.objectives import ObjectiveSpec
from .features import genome_features, row_features
from .model import SurrogateModel

__all__ = ["OffspringScreener"]


class OffspringScreener:
    """Ranks offspring pools with a conformal surrogate over store rows.

    Parameters
    ----------
    objectives:
        The run's optimization objectives (name, weight, maximize).
    config:
        The ``surrogate`` configuration section (pool size, confidence,
        refit cadence, minimum rows).
    """

    def __init__(self, objectives: list[ObjectiveSpec], config: SurrogateConfig) -> None:
        self.objectives = list(objectives)
        self.config = config
        self.model = SurrogateModel(
            [obj.name for obj in objectives], confidence=config.confidence
        )
        self._rows: dict[str, dict] = {}
        self._seeded = 0
        self._fresh_since_fit = 0
        self._predicted: dict[str, float] = {}
        self._mae_objective = (
            "accuracy"
            if any(obj.name == "accuracy" for obj in self.objectives)
            else self.objectives[0].name
        )
        self._absolute_error_sum = 0.0
        self._absolute_error_count = 0

    # ------------------------------------------------------------- feeding
    def seed(self, rows: Iterable[dict]) -> int:
        """Load stored rows (``EvaluationStore.export_rows`` shape); refit once.

        Accepts any iterable — pass
        :meth:`~repro.store.EvaluationStore.export_rows_iter` to stream a
        large store without materializing it.

        Returns the number of usable rows added.  Failed rows and duplicates
        (by genome cache key) are skipped.
        """
        added = 0
        for row in rows:
            if self._add_row(row):
                added += 1
        self._seeded += added
        if added:
            self._refit()
        return added

    def observe(self, evaluation: CandidateEvaluation) -> None:
        """Feed one real evaluation back (online refit, MAE settlement)."""
        if evaluation.failed:
            return
        row = evaluation.summary()
        key = row.get("cache_key", "")
        predicted = self._predicted.pop(key, None)
        if predicted is not None:
            actual = SurrogateModel.targets_from_row(row, self._mae_objective)
            if np.isfinite(actual):
                self._absolute_error_sum += abs(predicted - actual)
                self._absolute_error_count += 1
        if not self._add_row(row):
            return
        self._fresh_since_fit += 1
        if not self.model.ready or self._fresh_since_fit >= self.config.refit_interval:
            self._refit()

    def _add_row(self, row: dict) -> bool:
        key = str(row.get("cache_key", ""))
        if not key or row.get("error") or key in self._rows:
            return False
        self._rows[key] = dict(row)
        return True

    def _refit(self) -> None:
        self._fresh_since_fit = 0
        if not self.model.supported or len(self._rows) < self.config.min_rows:
            return
        rows = list(self._rows.values())
        features = np.stack([row_features(row) for row in rows])
        self.model.fit(features, rows)

    # ------------------------------------------------------------- queries
    @property
    def ready(self) -> bool:
        """Whether the screen should gate offspring this step.

        Readiness is gated on the *seeded* (store-provided) row count, not
        the online observations: real results made during the run refine an
        already trusted model but never bootstrap one.  This keeps the no-op
        guarantee unconditional — a run over an empty or too-small store is
        bit-identical to the base strategy for its whole duration, however
        long it runs.
        """
        return (
            self._seeded >= self.config.min_rows
            and len(self._rows) >= self.config.min_rows
            and self.model.ready
        )

    @property
    def row_count(self) -> int:
        """Distinct usable evaluations currently backing the model."""
        return len(self._rows)

    @property
    def mean_absolute_error(self) -> float:
        """Running MAE of the promoted candidates' predictions (0 until settled)."""
        if self._absolute_error_count == 0:
            return 0.0
        return self._absolute_error_sum / self._absolute_error_count

    def rank(
        self,
        genomes: list[CoDesignGenome],
        reference: list[CandidateEvaluation],
    ) -> list[int]:
        """Pool indices ordered best-first by predicted Pareto contribution.

        Parameters
        ----------
        genomes:
            The bred offspring pool.
        reference:
            The current population's evaluations; their raw objective values
            define the normalization ranges and the dominance reference for
            the Pareto bonus.

        Raises
        ------
        RuntimeError
            When called before the model is :attr:`ready`.
        """
        if not self.ready:
            raise RuntimeError("OffspringScreener.rank called before the model is ready")
        features = np.stack([genome_features(genome) for genome in genomes])
        predictions = self.model.predict(features)

        reference_rows = [e.summary() for e in reference if not e.failed]
        scores = np.zeros(len(genomes), dtype=np.float64)
        # Directed optimistic vectors (maximize-space) for the Pareto bonus.
        directed = np.zeros((len(genomes), len(self.objectives)), dtype=np.float64)
        for column, objective in enumerate(self.objectives):
            means, half_width = predictions[objective.name]
            optimistic = means + half_width if objective.maximize else means - half_width
            low, high = self._observed_range(objective.name, reference_rows)
            span = high - low
            if span < 1e-12:
                normalized = np.zeros_like(optimistic)
            elif objective.maximize:
                normalized = (optimistic - low) / span
            else:
                normalized = (high - optimistic) / span
            scores += objective.weight * normalized
            directed[:, column] = optimistic if objective.maximize else -optimistic
        scores += self._pareto_bonus(directed, reference_rows)

        order = sorted(range(len(genomes)), key=lambda i: (-scores[i], i))
        for index in order:
            means, _ = predictions[self._mae_objective]
            self._predicted[genomes[index].cache_key()] = float(means[index])
        return order

    # ------------------------------------------------------------ internals
    def _observed_range(self, objective_name: str, reference_rows: list[dict]) -> tuple[float, float]:
        """Min/max of one objective over stored rows plus the reference set."""
        values = [
            SurrogateModel.targets_from_row(row, objective_name)
            for row in list(self._rows.values()) + reference_rows
        ]
        finite = [v for v in values if np.isfinite(v)]
        if not finite:
            return 0.0, 0.0
        return min(finite), max(finite)

    def _pareto_bonus(self, directed: np.ndarray, reference_rows: list[dict]) -> np.ndarray:
        """+1 for candidates whose optimistic vector no reference point dominates."""
        if not reference_rows:
            return np.ones(directed.shape[0], dtype=np.float64)
        reference = np.asarray(
            [
                [
                    value if objective.maximize else -value
                    for objective, value in (
                        (obj, SurrogateModel.targets_from_row(row, obj.name))
                        for obj in self.objectives
                    )
                ]
                for row in reference_rows
            ],
            dtype=np.float64,
        )
        reference = reference[np.all(np.isfinite(reference), axis=1)]
        if reference.shape[0] == 0:
            return np.ones(directed.shape[0], dtype=np.float64)
        bonus = np.empty(directed.shape[0], dtype=np.float64)
        for i in range(directed.shape[0]):
            at_least = np.all(reference >= directed[i], axis=1)
            strictly = np.any(reference > directed[i], axis=1)
            bonus[i] = 0.0 if bool(np.any(at_least & strictly)) else 1.0
        return bonus
