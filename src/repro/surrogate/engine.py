"""The surrogate-screened steady-state engine and its factory.

:class:`SurrogateEngine` subclasses the serial steady-state loop of
:class:`~repro.core.engine.EvolutionaryEngine`.  Until the screener's model
is ready (store empty, too few rows, unsupported objectives) every step
delegates to the base implementation and consumes the *same* RNG stream —
the surrogate path is provably a no-op in that regime, and a run over an
empty store is bit-identical to the wrapped base strategy.

Once the model is ready, each step:

1. breeds a pool of ``surrogate.pool_size`` unique offspring with the normal
   selection/crossover/mutation operators,
2. either promotes a uniformly random pool member (with probability
   ``exploration_fraction`` — the screen always keeps exploring) or ranks
   the pool by predicted Pareto contribution,
3. optionally winnows the top-ranked survivors through successive-halving
   fidelity rungs (:mod:`repro.surrogate.fidelity`),
4. spends exactly one full-budget evaluation on the winner and feeds the
   real result back into the screener.

Only the winner counts against ``max_evaluations``; the discarded pool
members are the ``real_evals_saved``.
"""

from __future__ import annotations

import dataclasses
import logging

from ..core.candidate import CandidateEvaluation
from ..core.engine import EvolutionaryEngine
from ..core.errors import StoreError
from ..core.fitness import ParetoRankingEvaluator
from ..core.genome import CoDesignGenome
from ..core.population import Population
from ..core.selection import get_selection
from .fidelity import SuccessiveHalving
from .screen import OffspringScreener

__all__ = ["SurrogateEngine", "build_surrogate_engine"]

logger = logging.getLogger(__name__)


class SurrogateEngine(EvolutionaryEngine):
    """Steady-state engine with a conformal offspring pre-screen.

    Parameters
    ----------
    screener:
        The :class:`~repro.surrogate.screen.OffspringScreener`, already
        seeded with the store's rows for the current problem.
    fidelity:
        The successive-halving rung runner (may be unsupported/disabled, in
        which case the top-ranked candidate goes straight to full budget).
    surrogate_config:
        The run's ``surrogate`` configuration section.

    Other parameters are forwarded to :class:`EvolutionaryEngine` unchanged.
    The screened loop is inherently sequential (every decision feeds the
    model that makes the next one), so the factory always builds this engine
    with ``eval_parallelism=1``.
    """

    def __init__(self, *args, screener: OffspringScreener, fidelity: SuccessiveHalving,
                 surrogate_config, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.screener = screener
        self.fidelity = fidelity
        self.surrogate_config = surrogate_config

    # ------------------------------------------------------------ the screen
    def _steady_state_step(self, population: Population, step: int) -> bool:
        if not self.screener.ready:
            # No-op regime: same code path, same RNG stream as the base
            # strategy — a run over an empty/too-small store is bit-identical.
            return super()._steady_state_step(population, step)

        pool = self._breed_pool(population)
        if len(pool) < 2:
            return super()._steady_state_step(population, step)

        explore = self._rng.random() < self.surrogate_config.exploration_fraction
        order = self.screener.rank(pool, population.evaluations())
        self.statistics.surrogate_screened += len(pool)
        if explore:
            winner = pool[int(self._rng.integers(len(pool)))]
        else:
            survivors = [pool[i] for i in order[: self.surrogate_config.rung_survivors]]
            survivors, rung_cost = self.fidelity.winnow(survivors)
            self.statistics.rung_evaluations += rung_cost
            winner = survivors[0]
        self.statistics.real_evals_saved += len(pool) - 1

        individual = self._evaluate_and_wrap(winner, step, population=population)
        population.add(individual)
        self._rescore(population)
        return True

    def _breed_pool(self, population: Population) -> list[CoDesignGenome]:
        """Breed up to ``pool_size`` unique offspring with the base operators."""
        pool: list[CoDesignGenome] = []
        keys: set[str] = set()
        for _ in range(self.surrogate_config.pool_size):
            genome = self._make_offspring(population, in_flight_keys=keys)
            if genome is None:
                break
            key = genome.cache_key()
            if key in keys:
                continue
            keys.add(key)
            pool.append(genome)
        return pool

    # ----------------------------------------------------------- feedback
    def _evaluate(self, genome: CoDesignGenome) -> CandidateEvaluation:
        evaluation = super()._evaluate(genome)
        self.screener.observe(evaluation)
        return evaluation

    def _record_frontier_statistics(self) -> None:
        super()._record_frontier_statistics()
        self.statistics.surrogate_mae = self.screener.mean_absolute_error


def build_surrogate_engine(search, evaluator) -> SurrogateEngine:
    """Wire a :class:`SurrogateEngine` for one configured search.

    Resolves the base strategy's fitness/selection (weighted-sum or NSGA-II),
    seeds the screener with the store's rows for the search's problem digest,
    and forces the serial steady-state loop (``eval_parallelism=1``) — the
    screened loop is sequential by construction.
    """
    config = search.config
    surrogate = config.surrogate
    fitness = None
    selection = None
    if surrogate.base == "nsga2":
        fitness = ParetoRankingEvaluator(
            config.optimization.to_fitness_objectives(),
            constraints=config.optimization.to_constraints(),
        )
        selection = get_selection(
            "nsga2", tournament_size=config.nsga2_tournament_size
        )

    screener = OffspringScreener(config.optimization.to_fitness_objectives(), surrogate)
    if not screener.model.supported:
        logger.info(
            "surrogate screen inactive: objective(s) %s cannot be modelled from store rows",
            ", ".join(obj.name for obj in screener.objectives),
        )
    if search.store is not None and search.problem_digest is not None:
        # Streamed, not materialized: a large (possibly sharded) store is
        # deserialized row by row instead of as one full-table list.
        seeded = 0
        try:
            seeded = screener.seed(
                search.store.export_rows_iter(problem_digest=search.problem_digest)
            )
        except StoreError as exc:
            logger.warning("surrogate could not read store rows: %s", exc)
        logger.info(
            "surrogate seeded with %d stored evaluations (model %s)",
            seeded,
            "ready" if screener.ready else f"needs >= {surrogate.min_rows} rows",
        )

    engine_config = config.to_engine_config()
    if engine_config.eval_parallelism > 1 or engine_config.eval_batch_size > 1:
        logger.info(
            "surrogate strategy runs the serial steady-state loop; "
            "ignoring eval_parallelism=%d / eval_batch_size=%d",
            engine_config.eval_parallelism,
            engine_config.eval_batch_size,
        )
        engine_config = dataclasses.replace(
            engine_config, eval_parallelism=1, eval_batch_size=1
        )
    return search.build_engine(
        evaluator=evaluator,
        fitness=fitness,
        selection=selection,
        engine_cls=SurrogateEngine,
        engine_config=engine_config,
        screener=screener,
        fidelity=SuccessiveHalving(
            evaluator,
            rung_epochs=surrogate.rung_epochs,
            promote_fraction=surrogate.promote_fraction,
        ),
        surrogate_config=surrogate,
    )
