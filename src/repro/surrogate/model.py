"""Lightweight NumPy regressors with split-conformal calibration.

One :class:`ConformalRegressor` per objective: closed-form ridge regression
on standardized features, calibrated with the *split-conformal* recipe
(Johnstone & Nettleton): hold out a deterministic calibration slice, collect
its absolute residuals, and use their ``ceil((n + 1) * confidence) / n``
quantile as the interval half-width.  Under exchangeability the interval
``prediction ± half_width`` then covers the true value with probability at
least ``confidence`` — a finite-sample guarantee that holds regardless of
how wrong the ridge model is, which is exactly what lets the screener make
*calibrated* skip decisions instead of trusting raw point estimates.

Everything is deterministic: the train/calibration split is by row index
(every fourth row calibrates), so refits on the same rows give identical
models in every process.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ConformalRegressor", "SurrogateModel", "TARGET_COLUMNS"]

#: Objective name → store-row column carrying its raw value.  Objectives
#: outside this table cannot be modelled from stored rows; the screener
#: stays inactive for runs optimizing one of those.
TARGET_COLUMNS: dict[str, str] = {
    "accuracy": "accuracy",
    "fpga_throughput": "fpga_outputs_per_second",
    "gpu_throughput": "gpu_outputs_per_second",
    "fpga_efficiency": "fpga_efficiency",
    "gpu_efficiency": "gpu_efficiency",
}

#: Every fourth row is held out for conformal calibration.
_CALIBRATION_STRIDE = 4

#: Minimum calibration residuals for a meaningful quantile.
_MIN_CALIBRATION_ROWS = 4


class ConformalRegressor:
    """Ridge regression with split-conformal prediction intervals.

    Parameters
    ----------
    confidence:
        Nominal coverage of the intervals (e.g. ``0.8``).
    l2:
        Ridge penalty on the standardized design matrix.
    """

    def __init__(self, confidence: float = 0.8, l2: float = 1e-2) -> None:
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        if l2 <= 0:
            raise ValueError(f"l2 must be positive, got {l2}")
        self.confidence = float(confidence)
        self.l2 = float(l2)
        self._weights: np.ndarray | None = None
        self._feature_mean: np.ndarray | None = None
        self._feature_scale: np.ndarray | None = None
        self._quantile: float = math.inf

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` succeeded with enough rows to calibrate."""
        return self._weights is not None and math.isfinite(self._quantile)

    @property
    def interval_half_width(self) -> float:
        """The calibrated half-width added to every prediction."""
        return self._quantile

    def fit(self, features: np.ndarray, targets: np.ndarray) -> bool:
        """Fit on ``features`` (n × d) and ``targets`` (n), then calibrate.

        Returns ``True`` when both the fit and the calibration succeeded.
        With too few rows to hold out a calibration slice the model stays
        (or becomes) unfitted — callers must treat it as not ready rather
        than fall back to uncalibrated point estimates.
        """
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad training shapes: X {X.shape}, y {y.shape}")
        calibration_mask = (np.arange(X.shape[0]) % _CALIBRATION_STRIDE) == (
            _CALIBRATION_STRIDE - 1
        )
        if (
            int(calibration_mask.sum()) < _MIN_CALIBRATION_ROWS
            or int((~calibration_mask).sum()) < X.shape[1] // 4 + 2
        ):
            self._weights = None
            self._quantile = math.inf
            return False
        X_train, y_train = X[~calibration_mask], y[~calibration_mask]
        X_cal, y_cal = X[calibration_mask], y[calibration_mask]

        self._feature_mean = X_train.mean(axis=0)
        scale = X_train.std(axis=0)
        scale[scale < 1e-12] = 1.0
        self._feature_scale = scale
        design = self._design(X_train)
        gram = design.T @ design + self.l2 * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ y_train)

        residuals = np.abs(y_cal - self._point(X_cal))
        n = residuals.shape[0]
        rank = min(n, int(math.ceil((n + 1) * self.confidence)))
        self._quantile = float(np.sort(residuals)[rank - 1])
        return True

    def predict(self, features: np.ndarray) -> tuple[np.ndarray, float]:
        """Point predictions plus the calibrated interval half-width.

        Returns ``(predictions, half_width)``; the conformal interval of row
        ``i`` is ``predictions[i] ± half_width``.
        """
        if not self.fitted:
            raise RuntimeError("ConformalRegressor.predict called before a successful fit")
        return self._point(np.asarray(features, dtype=np.float64)), self._quantile

    # ------------------------------------------------------------ internals
    def _design(self, X: np.ndarray) -> np.ndarray:
        standardized = (X - self._feature_mean) / self._feature_scale
        return np.hstack([standardized, np.ones((standardized.shape[0], 1))])

    def _point(self, X: np.ndarray) -> np.ndarray:
        single = X.ndim == 1
        if single:
            X = X[None, :]
        predictions = self._design(X) @ self._weights
        return predictions[0] if single else predictions


class SurrogateModel:
    """One conformal regressor per objective, trained from store rows.

    Parameters
    ----------
    objective_names:
        The configured optimization objectives.  Every one of them must have
        a column mapping in :data:`TARGET_COLUMNS`; otherwise the model
        reports itself unsupported and the screen stays off.
    confidence:
        Nominal coverage of every per-objective interval.
    """

    def __init__(self, objective_names: list[str], confidence: float = 0.8) -> None:
        self.objective_names = [str(name) for name in objective_names]
        self.confidence = float(confidence)
        self.supported = all(name in TARGET_COLUMNS for name in self.objective_names)
        self._models: dict[str, ConformalRegressor] = {
            name: ConformalRegressor(confidence=confidence) for name in self.objective_names
        }

    @property
    def ready(self) -> bool:
        """Whether every objective has a fitted, calibrated regressor."""
        return self.supported and all(model.fitted for model in self._models.values())

    @staticmethod
    def targets_from_row(row: dict, objective_name: str) -> float:
        """Raw target value of one objective in one store row (NaN if absent)."""
        column = TARGET_COLUMNS.get(objective_name)
        if column is None:
            return float("nan")
        value = row.get(column)
        return float(value) if value is not None else float("nan")

    def fit(self, features: np.ndarray, rows: list[dict]) -> bool:
        """Fit every objective regressor on the rows' feature matrix.

        Rows with a non-finite target for an objective are dropped for that
        objective only.  Returns ``True`` when all regressors fitted.
        """
        if not self.supported or features.shape[0] != len(rows):
            return False
        for name, model in self._models.items():
            targets = np.asarray(
                [self.targets_from_row(row, name) for row in rows], dtype=np.float64
            )
            finite = np.isfinite(targets)
            model.fit(features[finite], targets[finite])
        return self.ready

    def predict(self, features: np.ndarray) -> dict[str, tuple[np.ndarray, float]]:
        """Per-objective ``(predictions, half_width)`` for a feature matrix."""
        return {name: model.predict(features) for name, model in self._models.items()}
