"""Deterministic genome → numeric feature vectors.

The surrogate regressor needs the same fixed-width float vector for a genome
whether it was built from a live :class:`~repro.core.genome.CoDesignGenome`
or reconstructed from an :meth:`~repro.store.EvaluationStore.export_rows`
row.  Both paths funnel through :func:`features_from_parts`, which uses only
integer arithmetic and a frozen activation table — no hashing, no dict
iteration order, no floating-point accumulation order — so the same genome
produces a *bit-identical* ``float64`` vector in every process.

Layer slots are padded/truncated to :data:`MAX_LAYER_SLOTS`; networks deeper
than that keep their depth and neuron totals (the aggregate features), only
the per-layer detail of the overflow layers is folded away.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..core.genome import CoDesignGenome

__all__ = [
    "MAX_LAYER_SLOTS",
    "feature_names",
    "features_from_parts",
    "genome_features",
    "row_features",
]

#: Per-layer feature slots; deeper networks fold into the aggregate features.
MAX_LAYER_SLOTS = 8

#: Frozen activation table (order is part of the feature contract; extend by
#: appending only).  Unknown activations map to 0.
_ACTIVATION_IDS: dict[str, int] = {"relu": 1, "tanh": 2, "sigmoid": 3, "elu": 4}

_GRID_FIELDS = ("rows", "columns", "interleave_rows", "interleave_columns", "vector_width")


def feature_names() -> tuple[str, ...]:
    """Names of the feature-vector components, in vector order."""
    names: list[str] = [
        "num_hidden_layers",
        "total_hidden_neurons",
        "log2_total_neurons",
        "use_bias",
    ]
    for slot in range(MAX_LAYER_SLOTS):
        names.append(f"layer{slot}_size")
        names.append(f"layer{slot}_log2_size")
        names.append(f"layer{slot}_activation")
    names.extend(f"grid_{field}" for field in _GRID_FIELDS)
    names.extend(["grid_pe_count", "grid_macs_per_cycle"])
    names.extend(["fpga_batch", "log2_fpga_batch", "gpu_batch", "log2_gpu_batch"])
    return tuple(names)


def features_from_parts(
    hidden_layers: Sequence[int],
    activations: Sequence[str],
    use_bias: bool,
    grid: Mapping[str, int],
    fpga_batch: int,
    gpu_batch: int,
) -> np.ndarray:
    """The canonical feature vector from raw genome parts.

    Parameters
    ----------
    hidden_layers / activations / use_bias:
        The NN-topology genes (as stored in a row's ``hidden_layers`` /
        ``activations`` / ``use_bias`` columns).
    grid:
        The systolic-grid genes as a mapping with the
        :meth:`~repro.hardware.systolic.GridConfig.to_dict` keys.
    fpga_batch / gpu_batch:
        The batch-size genes.

    Returns
    -------
    numpy.ndarray
        A ``float64`` vector of ``len(feature_names())`` components.  The
        mapping is pure integer arithmetic, so equal inputs give
        bit-identical vectors across processes and platforms.
    """
    sizes = [int(s) for s in hidden_layers]
    acts = [str(a) for a in activations]
    total = sum(sizes)
    values: list[float] = [
        float(len(sizes)),
        float(total),
        float(np.log2(np.float64(total + 1))),
        1.0 if use_bias else 0.0,
    ]
    for slot in range(MAX_LAYER_SLOTS):
        size = sizes[slot] if slot < len(sizes) else 0
        act = acts[slot] if slot < len(acts) else ""
        values.append(float(size))
        values.append(float(np.log2(np.float64(size + 1))))
        values.append(float(_ACTIVATION_IDS.get(act, 0)))
    grid_values = [int(grid[field]) for field in _GRID_FIELDS]
    values.extend(float(v) for v in grid_values)
    pe_count = grid_values[0] * grid_values[1]
    values.append(float(pe_count))
    values.append(float(pe_count * grid_values[4]))
    values.append(float(int(fpga_batch)))
    values.append(float(np.log2(np.float64(int(fpga_batch) + 1))))
    values.append(float(int(gpu_batch)))
    values.append(float(np.log2(np.float64(int(gpu_batch) + 1))))
    return np.asarray(values, dtype=np.float64)


def genome_features(genome: CoDesignGenome) -> np.ndarray:
    """Feature vector of a live genome."""
    return features_from_parts(
        hidden_layers=genome.mlp.hidden_layers,
        activations=genome.mlp.activations,
        use_bias=genome.mlp.use_bias,
        grid=genome.hardware.grid.to_dict(),
        fpga_batch=genome.hardware.batch_size,
        gpu_batch=genome.gpu_batch_size,
    )


def row_features(row: Mapping) -> np.ndarray:
    """Feature vector of one store row / evaluation summary.

    Accepts the flat dictionaries produced by
    :meth:`~repro.core.candidate.CandidateEvaluation.summary` and
    :meth:`~repro.store.EvaluationStore.export_rows` (which embed the same
    genome columns).
    """
    return features_from_parts(
        hidden_layers=row["hidden_layers"],
        activations=row["activations"],
        use_bias=bool(row["use_bias"]),
        grid=row["grid"],
        fpga_batch=int(row["fpga_batch"]),
        gpu_batch=int(row["gpu_batch"]),
    )
