"""Durable tournament leaderboard, one SQLite file per arena.

The leaderboard is the arena's product: one row per (strategy, scenario,
seed) with the frontier-quality and cost metrics the tournament ranks on.
Like the :class:`~repro.store.EvaluationStore` it is a single WAL-mode
SQLite file that outlives the process, so ``ecad arena show`` renders
standings from any earlier run and repeated tournaments upsert their rows
in place.

Ordering is part of the contract: :meth:`Leaderboard.rows` sorts by
``(scenario, -hypervolume, strategy, seed)`` — strategy and seed are the
fixed tie-breakers, so equal-hypervolume rows can never reshuffle between
runs and a resumed tournament exports byte-identical CSV.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path

from ..core.errors import StoreError

__all__ = ["Leaderboard", "LEADERBOARD_COLUMNS", "LEADERBOARD_SCHEMA_VERSION"]

LEADERBOARD_SCHEMA_VERSION = 1

#: Column order of every leaderboard export (table, CSV, JSON).
LEADERBOARD_COLUMNS = (
    "scenario",
    "strategy",
    "seed",
    "hypervolume",
    "evals_to_target",
    "real_evals",
    "wall_clock_seconds",
    "best_accuracy",
    "frontier_size",
    "status",
)

_CREATE_META = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
)
"""

_CREATE_LEADERBOARD = """
CREATE TABLE IF NOT EXISTS leaderboard (
    strategy TEXT NOT NULL,
    scenario TEXT NOT NULL,
    seed INTEGER NOT NULL,
    hypervolume REAL NOT NULL DEFAULT 0.0,
    evals_to_target INTEGER NOT NULL DEFAULT 0,
    real_evals INTEGER NOT NULL DEFAULT 0,
    wall_clock_seconds REAL NOT NULL DEFAULT 0.0,
    best_accuracy REAL NOT NULL DEFAULT 0.0,
    frontier_size INTEGER NOT NULL DEFAULT 0,
    status TEXT NOT NULL DEFAULT 'completed',
    run_id TEXT NOT NULL DEFAULT '',
    PRIMARY KEY (strategy, scenario, seed)
)
"""


class Leaderboard:
    """Persistent per-(strategy, scenario, seed) tournament standings.

    Parameters
    ----------
    path:
        SQLite file; parent directories are created, ``":memory:"`` works
        for tests.

    Thread-safe: the arena records entries from whichever thread finishes a
    cell, so writes are serialized on an internal lock.  Usable as a
    context manager (closes the connection on exit).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        try:
            self._connection = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open leaderboard {self.path!r}: {exc}") from exc
        with self._lock, self._connection:
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute(_CREATE_META)
            self._connection.execute(_CREATE_LEADERBOARD)
            self._connection.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(LEADERBOARD_SCHEMA_VERSION),),
            )

    # -------------------------------------------------------------- writing
    def record(
        self,
        strategy: str,
        scenario: str,
        seed: int,
        *,
        hypervolume: float = 0.0,
        evals_to_target: int = 0,
        real_evals: int = 0,
        wall_clock_seconds: float = 0.0,
        best_accuracy: float = 0.0,
        frontier_size: int = 0,
        status: str = "completed",
        run_id: str = "",
    ) -> None:
        """Upsert one standings row (the primary key replaces in place)."""
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO leaderboard "
                "(strategy, scenario, seed, hypervolume, evals_to_target, real_evals,"
                " wall_clock_seconds, best_accuracy, frontier_size, status, run_id) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    str(strategy),
                    str(scenario),
                    int(seed),
                    float(hypervolume),
                    int(evals_to_target),
                    int(real_evals),
                    float(wall_clock_seconds),
                    float(best_accuracy),
                    int(frontier_size),
                    str(status),
                    str(run_id),
                ),
            )

    # -------------------------------------------------------------- reading
    def rows(self) -> list[dict]:
        """Standings rows in the canonical, tie-stable order.

        Within a scenario, higher hypervolume ranks first; ties (and
        everything after them) break on ``(strategy, seed)`` so the export
        order is a pure function of the stored rows.
        """
        with self._lock:
            cursor = self._connection.execute(
                "SELECT strategy, scenario, seed, hypervolume, evals_to_target,"
                " real_evals, wall_clock_seconds, best_accuracy, frontier_size,"
                " status, run_id "
                "FROM leaderboard "
                "ORDER BY scenario ASC, hypervolume DESC, strategy ASC, seed ASC"
            )
            records = cursor.fetchall()
        rows = []
        for record in records:
            rows.append(
                {
                    "scenario": record[1],
                    "strategy": record[0],
                    "seed": int(record[2]),
                    "hypervolume": float(record[3]),
                    "evals_to_target": int(record[4]),
                    "real_evals": int(record[5]),
                    "wall_clock_seconds": float(record[6]),
                    "best_accuracy": float(record[7]),
                    "frontier_size": int(record[8]),
                    "status": record[9],
                    "run_id": record[10],
                }
            )
        return rows

    def __len__(self) -> int:
        with self._lock:
            cursor = self._connection.execute("SELECT COUNT(*) FROM leaderboard")
            return int(cursor.fetchone()[0])

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Close the SQLite connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "Leaderboard":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
