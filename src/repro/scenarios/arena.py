"""The arena: strategy-vs-strategy tournaments over scenario packs.

:class:`ArenaRunner` is a thin conductor over existing machinery: each
scenario pack lowers to one :class:`~repro.experiment.spec.ExperimentSpec`
(datasets × strategy-prefixed objectives × seeds) executed by its own
:class:`~repro.experiment.runner.ExperimentRunner` under
``<output_dir>/scenarios/<pack>``, so per-cell ``RunArtifact`` checkpoints,
digest-aware resume and crash recovery are inherited unchanged.  All
scenarios share *one* evaluation store and *one* execution pool (wrapped in
:class:`~repro.workers.backends.NonOwningBackend` so per-search shutdowns
cannot tear it down), which is what makes tournaments cheap to repeat: a
warm store answers repeated candidates across strategies and runs.

From the finished artifacts the runner derives the leaderboard metrics —
hypervolume over the scenario's configured objectives, evaluations until
the pack's target accuracy, real (non-cached) evaluations, wall-clock — and
upserts them into the durable :class:`~repro.scenarios.leaderboard.Leaderboard`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path
from typing import Mapping

from ..core.errors import ConfigurationError
from ..core.pareto import hypervolume_2d
from ..core.strategy import STRATEGIES, arena_strategies
from ..experiment.runner import ExperimentRunner
from ..experiment.spec import objective_config_from_spec, split_objective_spec
from ..workers.backends import NonOwningBackend, resolve_backend
from .leaderboard import Leaderboard
from .packs import ScenarioPack, available_scenarios, get_scenario

__all__ = ["ArenaConfig", "ArenaRunner", "artifact_metrics"]


@dataclass(frozen=True)
class ArenaConfig:
    """Everything one tournament needs, in declarative form.

    Attributes
    ----------
    scenarios:
        Catalog names of the packs to run; empty means *every* registered
        pack.
    strategies:
        Competing strategy names; empty means every registered strategy
        whose class is ``arena_eligible``.
    seeds:
        Search seeds; each (strategy, scenario, seed) triple is one
        leaderboard row.
    output_dir:
        Root artifact directory; per-scenario experiment checkpoints live
        under ``<output_dir>/scenarios/<pack>``.
    store_path:
        Shared evaluation store; empty derives ``<output_dir>/store.sqlite``
        so tournaments are warm by default.
    warm_start:
        Per-run warm-start budget from the shared store (0 disables).
    backend / eval_parallelism:
        The shared execution pool every search dispatches through.
    run_parallelism:
        Whole grid cells kept in flight per scenario (1 = sequential).
    leaderboard_path:
        Standings SQLite file; empty derives
        ``<output_dir>/leaderboard.sqlite``.
    """

    scenarios: tuple[str, ...] = ()
    strategies: tuple[str, ...] = ()
    seeds: tuple[int, ...] = (0,)
    output_dir: str = "arena"
    store_path: str = ""
    warm_start: int = 0
    backend: str = "serial"
    eval_parallelism: int = 1
    run_parallelism: int = 1
    leaderboard_path: str = ""

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ConfigurationError("arena needs at least one seed")
        if not str(self.output_dir).strip():
            raise ConfigurationError("arena output_dir must not be empty")
        if self.eval_parallelism < 1:
            raise ConfigurationError(
                f"eval_parallelism must be >= 1, got {self.eval_parallelism}"
            )
        if self.run_parallelism < 1:
            raise ConfigurationError(
                f"run_parallelism must be >= 1, got {self.run_parallelism}"
            )
        if self.warm_start < 0:
            raise ConfigurationError(f"warm_start must be >= 0, got {self.warm_start}")

    # ------------------------------------------------------------ resolution
    def resolved_scenarios(self) -> list[ScenarioPack]:
        """The packs this tournament runs (named, or the whole catalog)."""
        names = self.scenarios or tuple(available_scenarios())
        return [get_scenario(name) for name in names]

    def resolved_strategies(self) -> tuple[str, ...]:
        """Canonical competing strategy names (named, or every eligible one)."""
        if not self.strategies:
            return tuple(arena_strategies())
        canonical: list[str] = []
        for strategy in self.strategies:
            try:
                resolved = STRATEGIES.canonical_name(strategy)
            except KeyError as exc:
                raise ConfigurationError(str(exc.args[0])) from exc
            if resolved not in canonical:
                canonical.append(resolved)
        return tuple(canonical)

    @property
    def resolved_store_path(self) -> str:
        """The shared store file (defaults inside the output directory)."""
        return self.store_path or str(Path(self.output_dir) / "store.sqlite")

    @property
    def resolved_leaderboard_path(self) -> str:
        """The standings file (defaults inside the output directory)."""
        return self.leaderboard_path or str(Path(self.output_dir) / "leaderboard.sqlite")

    # ----------------------------------------------------------------- JSON
    def to_dict(self) -> dict:
        return {
            "scenarios": list(self.scenarios),
            "strategies": list(self.strategies),
            "seeds": list(self.seeds),
            "output_dir": self.output_dir,
            "store_path": self.store_path,
            "warm_start": self.warm_start,
            "backend": self.backend,
            "eval_parallelism": self.eval_parallelism,
            "run_parallelism": self.run_parallelism,
            "leaderboard_path": self.leaderboard_path,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ArenaConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"malformed arena config: expected an object, got {type(data).__name__}"
            )
        allowed = {config_field.name for config_field in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown arena config key(s): {', '.join(map(repr, unknown))}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        try:
            return cls(
                scenarios=tuple(str(s) for s in data.get("scenarios", ())),
                strategies=tuple(str(s) for s in data.get("strategies", ())),
                seeds=tuple(int(s) for s in data.get("seeds", (0,))),
                output_dir=str(data.get("output_dir", "arena")),
                store_path=str(data.get("store_path", "")),
                warm_start=int(data.get("warm_start", 0)),
                backend=str(data.get("backend", "serial")),
                eval_parallelism=int(data.get("eval_parallelism", 1)),
                run_parallelism=int(data.get("run_parallelism", 1)),
                leaderboard_path=str(data.get("leaderboard_path", "")),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed arena config: {exc}") from exc

    def with_overrides(self, assignments) -> "ArenaConfig":
        """Apply ``--set`` style overrides (``arena.`` prefix optional).

        ``assignments`` is a mapping of keys to values or an iterable of
        ``"key=value"`` strings (values parsed as JSON when possible), e.g.
        ``--set arena.seeds=[0,1]`` or ``--set warm_start=4``.
        """
        from ..core.config import parse_override

        if isinstance(assignments, Mapping):
            pairs = [(str(key), value) for key, value in assignments.items()]
        else:
            pairs = [parse_override(assignment) for assignment in assignments]
        data = self.to_dict()
        for key, value in pairs:
            key = key.removeprefix("arena.")
            if key not in data:
                raise ConfigurationError(
                    f"unknown arena config key {key!r}; allowed: {', '.join(sorted(data))}"
                )
            data[key] = value
        return ArenaConfig.from_dict(data)


def artifact_metrics(artifact, pack: ScenarioPack) -> dict:
    """Leaderboard metrics of one grid-cell artifact under ``pack``.

    Hypervolume is computed over the scenario's configured objectives in
    maximization form against the origin reference: frontier values are
    negated for minimized objectives, a single-objective scenario scores
    the best canonical value (clipped at 0), and scenarios with more than
    two objectives score the leading pair (documented in ARENA.md).
    Evals-to-target is the ``evaluations_seen`` of the first frontier
    snapshot whose running best accuracy reached ``pack.target_accuracy``
    (0 when disabled or never reached).
    """
    objectives = objective_config_from_spec(
        pack.objective, constraints=pack.constraints
    ).to_fitness_objectives()
    directions = [(spec.name, bool(spec.maximize)) for spec in objectives]
    canonical_points = []
    for row in artifact.frontier:
        point = []
        for name, maximize in directions:
            value = float(row.get(name, 0.0))
            point.append(value if maximize else -value)
        canonical_points.append(point)
    if not canonical_points:
        hypervolume = 0.0
    elif len(directions) == 1:
        hypervolume = max(0.0, max(point[0] for point in canonical_points))
    else:
        hypervolume = hypervolume_2d(
            [(point[0], point[1]) for point in canonical_points]
        )
    evals_to_target = 0
    if pack.target_accuracy > 0:
        for snapshot in artifact.snapshots:
            if float(snapshot.get("best_accuracy", 0.0)) >= pack.target_accuracy:
                evals_to_target = int(snapshot.get("evaluations_seen", 0))
                break
    return {
        "hypervolume": float(hypervolume),
        "evals_to_target": evals_to_target,
        "real_evals": int(artifact.statistics.get("models_evaluated", 0)),
        "wall_clock_seconds": float(artifact.wall_clock_seconds),
        "best_accuracy": float(artifact.best_accuracy),
        "frontier_size": len(artifact.frontier),
        "status": artifact.status,
    }


class ArenaRunner:
    """Runs one tournament: every strategy × every scenario × every seed.

    Parameters
    ----------
    config:
        The :class:`ArenaConfig` describing the tournament.
    printer:
        Optional progress callable (``print`` in the CLI); ``None`` keeps
        the runner silent.
    store / backend:
        Externally owned warm singletons (the job service passes its own);
        when ``None`` the runner opens/creates its own from the config and
        closes them when the tournament ends.
    """

    def __init__(self, config: ArenaConfig, printer=None, store=None, backend=None) -> None:
        self.config = config
        self._printer = printer
        self._external_store = store
        self._external_backend = backend

    def _log(self, message: str) -> None:
        if self._printer is not None:
            self._printer(message)

    # ------------------------------------------------------------- planning
    def specs(self):
        """The per-scenario tournament specs, in catalog order."""
        strategies = self.config.resolved_strategies()
        if not strategies:
            raise ConfigurationError("no arena-eligible strategies are registered")
        pairs = []
        for pack in self.config.resolved_scenarios():
            spec = pack.to_spec(
                strategies,
                seeds=self.config.seeds,
                store_path=self.config.resolved_store_path,
                warm_start=self.config.warm_start,
                backend=self.config.backend,
                eval_parallelism=self.config.eval_parallelism,
                run_parallelism=self.config.run_parallelism,
                output_dir=str(Path(self.config.output_dir) / "scenarios" / pack.key),
            )
            pairs.append((pack, spec))
        return pairs

    def plan(self, resume: bool = True) -> list[dict]:
        """Dry-run view: one row per grid cell across every scenario."""
        rows = []
        for pack, spec in self.specs():
            runner = ExperimentRunner(spec)
            for row in runner.plan(resume=resume):
                row = dict(row)
                row["scenario"] = pack.name
                rows.append(row)
        return rows

    # ------------------------------------------------------------ execution
    def run(self, resume: bool = True) -> list[dict]:
        """Execute the tournament and return the final leaderboard rows.

        Each scenario runs through its own :class:`ExperimentRunner`
        (checkpointed, resumable); every finished cell upserts its
        leaderboard row immediately, so standings survive a crash
        mid-tournament.  Cells whose artifacts exist are skipped under
        ``resume`` — re-running a finished tournament only recomputes
        metrics from the saved artifacts.
        """
        pairs = self.specs()
        store = self._external_store
        owned_store = None
        if store is None and self.config.resolved_store_path:
            from ..store import EvaluationStore

            owned_store = EvaluationStore(self.config.resolved_store_path)
            store = owned_store
        backend = self._external_backend
        owned_backend = None
        if backend is None:
            owned_backend = resolve_backend(
                self.config.backend,
                max_workers=max(
                    self.config.eval_parallelism * self.config.run_parallelism, 1
                ),
            )
            backend = owned_backend
        shared = NonOwningBackend(backend)
        leaderboard = Leaderboard(self.config.resolved_leaderboard_path)
        try:
            for pack, spec in pairs:
                self._log(f"arena scenario {pack.name!r}: {spec.grid_size} runs")
                runner = ExperimentRunner(
                    spec,
                    printer=self._printer,
                    store=store,
                    backend=shared,
                )
                report = runner.run(resume=resume)
                self._record(leaderboard, pack, report)
            return leaderboard.rows()
        finally:
            leaderboard.close()
            if owned_store is not None:
                owned_store.close()
            if owned_backend is not None:
                owned_backend.shutdown()

    def _record(self, leaderboard: Leaderboard, pack: ScenarioPack, report) -> None:
        """Aggregate one scenario's artifacts into leaderboard rows.

        A pack may span several datasets; per (strategy, seed) the dataset
        cells aggregate as: mean hypervolume, summed evaluation counts and
        wall-clock, best accuracy maximum — and ``failed`` status when any
        cell failed.
        """
        grouped: dict[tuple[str, int], list] = {}
        for artifact in report.artifacts:
            strategy, _ = split_objective_spec(artifact.objective)
            strategy = strategy or report.spec.strategy
            grouped.setdefault((strategy, artifact.seed), []).append(artifact)
        for (strategy, seed), artifacts in sorted(grouped.items()):
            metrics = [artifact_metrics(artifact, pack) for artifact in artifacts]
            count = len(metrics)
            leaderboard.record(
                strategy=strategy,
                scenario=pack.name,
                seed=seed,
                hypervolume=sum(m["hypervolume"] for m in metrics) / count,
                evals_to_target=sum(m["evals_to_target"] for m in metrics),
                real_evals=sum(m["real_evals"] for m in metrics),
                wall_clock_seconds=sum(m["wall_clock_seconds"] for m in metrics),
                best_accuracy=max(m["best_accuracy"] for m in metrics),
                frontier_size=sum(m["frontier_size"] for m in metrics),
                status=(
                    "failed"
                    if any(m["status"] != "completed" for m in metrics)
                    else "completed"
                ),
                run_id=",".join(artifact.run_id for artifact in artifacts),
            )

