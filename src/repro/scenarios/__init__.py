"""Scenario packs and the strategy-vs-strategy tournament arena.

See :mod:`repro.scenarios.packs` for the scenario catalog,
:mod:`repro.scenarios.arena` for the tournament runner and
:mod:`repro.scenarios.leaderboard` for the durable standings store.
"""

from .arena import ArenaConfig, ArenaRunner, artifact_metrics
from .leaderboard import LEADERBOARD_COLUMNS, Leaderboard
from .packs import (
    SCENARIOS,
    ScenarioPack,
    available_scenarios,
    get_scenario,
    register_scenario,
)

__all__ = [
    "ArenaConfig",
    "ArenaRunner",
    "artifact_metrics",
    "Leaderboard",
    "LEADERBOARD_COLUMNS",
    "ScenarioPack",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
]
