"""Named scenario packs: the workload axis of the arena.

The ROADMAP's north star is a system that "handles as many scenarios as you
can imagine"; a *scenario pack* is one such scenario in object form — a
dataset family × device set × constraint profile × evaluation budget, under
a stable registered name (``edge-tiny-dsp``, ``datacenter-throughput``, ...).
Packs are deliberately thin: :meth:`ScenarioPack.to_spec` lowers a pack plus
a list of competing strategies into an ordinary
:class:`~repro.experiment.spec.ExperimentSpec` whose objective axis is the
strategy-prefixed form (``"nsga2:codesign"``), so one scenario tournament is
one experiment grid and inherits checkpoint/resume, the shared evaluation
store and the service job machinery unchanged.

Like every other extension axis (datasets, strategies, devices, backends,
objectives) the catalog is an open :class:`~repro.registry.Registry`:
plugins add packs with :func:`register_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ConfigurationError
from ..core.strategy import STRATEGIES
from ..datasets.registry import DATASETS
from ..experiment.spec import ExperimentSpec, objective_config_from_spec
from ..hardware.device import FPGA_DEVICES, GPU_DEVICES
from ..registry import Registry, normalize_key

__all__ = [
    "ScenarioPack",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
]


@dataclass(frozen=True)
class ScenarioPack:
    """One named tournament scenario.

    Attributes
    ----------
    name:
        Stable catalog identifier (``ecad arena --scenario <name>``).
    description:
        One-line human summary shown by ``ecad arena packs``.
    datasets:
        Registered dataset families the scenario spans (every strategy runs
        on every dataset; metrics aggregate across them).
    objective:
        Objective spec for every run (``"codesign"``, ``"accuracy"``, or a
        ``+``-joined list of registered objective names); strategies are
        prefixed onto it when the pack is lowered to an experiment grid.
    constraints:
        Feasibility constraint expressions (``"dsp_usage<=256"``) defining
        the scenario's deployment envelope.
    fpga / gpu:
        Device-catalogue names fixing the hardware side of the scenario.
    scale:
        Synthetic-dataset size scale (kept tiny for tournament budgets).
    data_seed:
        Dataset generation seed shared by all runs of the scenario.
    population_size / max_evaluations / training_epochs:
        The per-run search budget — matched across strategies, which is what
        makes tournament rankings honest.
    target_accuracy:
        Accuracy level the *evals-to-target* leaderboard column measures
        against; 0 disables the column for this scenario.
    overrides:
        Extra dotted-key configuration overrides applied to every run.
    """

    name: str
    description: str
    datasets: tuple[str, ...]
    objective: str = "codesign"
    constraints: tuple[str, ...] = ()
    fpga: str = "arria10"
    gpu: str = "titan_x"
    scale: float = 0.1
    data_seed: int = 0
    population_size: int = 6
    max_evaluations: int = 18
    training_epochs: int = 2
    target_accuracy: float = 0.0
    overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise ConfigurationError("scenario pack name must not be empty")
        if not self.datasets:
            raise ConfigurationError(
                f"scenario pack {self.name!r} needs at least one dataset"
            )
        for dataset in self.datasets:
            try:
                DATASETS.canonical_name(dataset)
            except KeyError as exc:
                raise ConfigurationError(str(exc.args[0])) from exc
        for registry, device in ((FPGA_DEVICES, self.fpga), (GPU_DEVICES, self.gpu)):
            try:
                registry.canonical_name(device)
            except KeyError as exc:
                raise ConfigurationError(str(exc.args[0])) from exc
        objective_config_from_spec(self.objective, constraints=self.constraints)
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        for label, value in (
            ("population_size", self.population_size),
            ("max_evaluations", self.max_evaluations),
            ("training_epochs", self.training_epochs),
        ):
            if int(value) < 1:
                raise ConfigurationError(f"{label} must be >= 1, got {value}")
        if not 0.0 <= self.target_accuracy < 1.0:
            raise ConfigurationError(
                f"target_accuracy must be in [0, 1), got {self.target_accuracy}"
            )

    @property
    def key(self) -> str:
        """Filesystem-safe identifier (normalized registry key)."""
        return normalize_key(self.name)

    def strategy_objectives(self, strategies: tuple[str, ...]) -> tuple[str, ...]:
        """Strategy-prefixed objective specs, one per competing strategy.

        Strategy names (and aliases) are canonicalized so the grid's run ids
        are stable no matter how the caller spelled them; unknown names
        raise :class:`ConfigurationError` carrying the registry's near-miss
        suggestions.
        """
        canonical: list[str] = []
        for strategy in strategies:
            try:
                resolved = STRATEGIES.canonical_name(strategy)
            except KeyError as exc:
                raise ConfigurationError(str(exc.args[0])) from exc
            if resolved not in canonical:
                canonical.append(resolved)
        if not canonical:
            raise ConfigurationError(
                f"scenario {self.name!r} needs at least one competing strategy"
            )
        return tuple(f"{strategy}:{self.objective}" for strategy in canonical)

    def to_spec(
        self,
        strategies: tuple[str, ...],
        seeds: tuple[int, ...] = (0,),
        *,
        name: str = "",
        store_path: str = "",
        warm_start: int = 0,
        backend: str = "serial",
        eval_parallelism: int = 1,
        run_parallelism: int = 1,
        output_dir: str = "",
    ) -> ExperimentSpec:
        """Lower the pack into one tournament :class:`ExperimentSpec`.

        The grid is datasets × strategy-prefixed objectives × seeds, so
        every competing strategy sees exactly the same scenario under
        exactly the same budget, and per-cell checkpoint/resume comes for
        free from the experiment runner.
        """
        overrides = {
            "population_size": int(self.population_size),
            "max_evaluations": int(self.max_evaluations),
            "training_epochs": int(self.training_epochs),
        }
        overrides.update(dict(self.overrides))
        return ExperimentSpec(
            name=name or f"arena-{self.key}",
            datasets=tuple(self.datasets),
            objectives=self.strategy_objectives(tuple(strategies)),
            seeds=tuple(int(seed) for seed in seeds) or (0,),
            scale=float(self.scale),
            data_seed=int(self.data_seed),
            fpga=self.fpga,
            gpu=self.gpu,
            backend=backend,
            eval_parallelism=int(eval_parallelism),
            run_parallelism=int(run_parallelism),
            constraints=tuple(self.constraints),
            store_path=store_path,
            warm_start=int(warm_start),
            overrides=overrides,
            output_dir=output_dir,
        )

    # ----------------------------------------------------------------- JSON
    def to_dict(self) -> dict:
        """JSON-serializable representation (``ecad arena packs`` rows)."""
        return {
            "name": self.name,
            "description": self.description,
            "datasets": list(self.datasets),
            "objective": self.objective,
            "constraints": list(self.constraints),
            "fpga": self.fpga,
            "gpu": self.gpu,
            "scale": self.scale,
            "data_seed": self.data_seed,
            "population_size": self.population_size,
            "max_evaluations": self.max_evaluations,
            "training_epochs": self.training_epochs,
            "target_accuracy": self.target_accuracy,
            "overrides": dict(self.overrides),
        }


#: The open scenario catalog; plugins may register additional packs.
SCENARIOS: Registry[ScenarioPack] = Registry("scenario pack")


def register_scenario(pack: ScenarioPack, aliases: tuple[str, ...] = (), overwrite: bool = False) -> ScenarioPack:
    """Register ``pack`` in the catalog under its own name (and ``aliases``)."""
    try:
        SCENARIOS.register(pack.name, pack, aliases=aliases, overwrite=overwrite)
    except ValueError as exc:
        raise ConfigurationError(str(exc)) from exc
    return pack


def get_scenario(name: str) -> ScenarioPack:
    """Resolve a pack by catalog name, with near-miss suggestions on typos."""
    try:
        return SCENARIOS.resolve(name)
    except KeyError as exc:
        # The registry message already lists what is available and suggests
        # near-miss names; re-raising it verbatim keeps the hint.
        raise ConfigurationError(str(exc.args[0])) from exc


def available_scenarios() -> list[str]:
    """Sorted catalog names of every registered scenario pack."""
    return SCENARIOS.available()


# --------------------------------------------------------------- built-ins
register_scenario(
    ScenarioPack(
        name="edge-tiny-dsp",
        description="DSP-constrained edge deployment: co-design under a hard dsp_usage cap",
        datasets=("credit_g_like",),
        objective="codesign",
        constraints=("dsp_usage<=256",),
        fpga="arria10",
        gpu="titan_x",
        scale=0.08,
        population_size=6,
        max_evaluations=18,
        training_epochs=2,
        target_accuracy=0.55,
    )
)

register_scenario(
    ScenarioPack(
        name="datacenter-throughput",
        description="Throughput-first datacenter serving on the large-fabric Stratix 10",
        datasets=("har_like",),
        objective="codesign",
        fpga="stratix10",
        gpu="radeon_vii",
        scale=0.04,
        population_size=6,
        max_evaluations=18,
        training_epochs=2,
        target_accuracy=0.5,
    )
)

register_scenario(
    ScenarioPack(
        name="noisy-labels",
        description="Accuracy-only search on the noisiest dataset family (generalization stress)",
        datasets=("bioresponse_like",),
        objective="accuracy",
        scale=0.06,
        population_size=6,
        max_evaluations=18,
        training_epochs=2,
        target_accuracy=0.52,
    )
)
