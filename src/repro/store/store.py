"""The persistent store of candidate evaluations (facade over a repository).

The paper's master/worker design amortizes expensive evaluations (NN training
plus hardware-database lookups) across one long-running search; the
:class:`EvaluationStore` extends that amortization *across runs and across
processes*.  Every successful :class:`~repro.core.candidate.CandidateEvaluation`
is written as one row keyed on ``(problem_digest, genome_key)`` (see
:mod:`repro.store.digest`), so a repeated sweep, a re-seeded benchmark, or a
second machine sharing the file never re-trains a candidate the store has
already seen.

Storage layout is a :class:`~repro.store.repository.StoreRepository` behind
this facade:

* a **single SQLite file** (the default — WAL journaling, busy timeout +
  immediate transactions, schema versioning, exactly the original layout);
* a **sharded directory** of N SQLite files routed by problem-digest prefix
  (:class:`~repro.store.sharded.ShardedStore`) so concurrent jobs on
  different problems never contend on one writer lock.

The layout is auto-detected from the path (directory = sharded), so every
consumer opens either with the same call; ``shards=N`` (``store.shards`` in
the configuration) creates a fresh sharded layout, and ``ecad store
migrate`` converts an existing file.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

from ..core.candidate import CandidateEvaluation
from ..core.errors import StoreError
from .repository import SCHEMA_VERSION, RawRow, SQLiteRepository, StoreRepository
from .sharded import ShardedStore

__all__ = ["SCHEMA_VERSION", "StoreStatistics", "EvaluationStore"]


@dataclass
class StoreStatistics:
    """Hit/miss/write counters of one store-backed cache tier.

    Attributes
    ----------
    hits:
        Lookups answered by a stored row.
    misses:
        Lookups that fell through to a fresh evaluation.
    writes:
        Rows written (or refreshed) by this process.
    write_retries:
        Write attempts that failed transiently and were retried.
    write_errors:
        Rows dropped *permanently* — every retry failed and the pending
        queue overflowed its cap.  Transient failures whose rows were
        re-queued (and may yet be persisted) are not counted here.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_retries: int = 0
    write_errors: int = 0


class EvaluationStore:
    """Durable, shareable store of candidate evaluations.

    Parameters
    ----------
    path:
        Store location.  A file (or a missing path with ``shards <= 1``)
        is a single SQLite database; a directory is an N-shard layout (see
        :class:`~repro.store.sharded.ShardedStore`).  Parent directories are
        created on demand.  ``":memory:"`` builds a private in-memory store
        (tests).
    readonly:
        Open for reads only; :meth:`put` raises and the store must already
        exist.
    timeout_seconds:
        SQLite busy timeout — how long a writer waits on a concurrent
        writer's lock before giving up.
    shards:
        ``0`` (auto) opens whatever layout exists at ``path``; ``1`` forces
        the single-file layout; ``N > 1`` opens/creates an N-shard layout.
        Pointing ``shards > 1`` at an existing single file raises with a
        hint to run ``ecad store migrate``.

    Raises
    ------
    StoreError
        When the path is not a valid store (corrupt/truncated), was written
        by a different schema version or shard count, or is missing in
        read-only mode.
    """

    def __init__(
        self,
        path: str | Path,
        readonly: bool = False,
        timeout_seconds: float = 30.0,
        shards: int = 0,
    ) -> None:
        self.path = str(path)
        self.readonly = bool(readonly)
        shards = int(shards)
        if shards < 0:
            raise StoreError(f"shards must be >= 0, got {shards}")
        is_directory = self.path != ":memory:" and Path(self.path).is_dir()
        if is_directory:
            # An existing sharded layout wins over the configured default
            # (shards <= 1 means "whatever the layout records"); an explicit
            # N > 1 that contradicts the layout still fails loudly.
            self._repository: StoreRepository = ShardedStore(
                self.path,
                shards=shards if shards > 1 else 0,
                readonly=readonly,
                timeout_seconds=timeout_seconds,
            )
        elif shards > 1:
            if Path(self.path).exists():
                raise StoreError(
                    f"{self.path} is a single-file store but store.shards={shards} "
                    f"was requested; migrate it with 'ecad store migrate --store "
                    f"{self.path} --shards {shards}'"
                )
            self._repository = ShardedStore(
                self.path,
                shards=shards,
                readonly=readonly,
                timeout_seconds=timeout_seconds,
            )
        else:
            self._repository = SQLiteRepository(
                self.path, readonly=readonly, timeout_seconds=timeout_seconds
            )

    @property
    def repository(self) -> StoreRepository:
        """The storage backend behind this facade."""
        return self._repository

    @property
    def shards(self) -> int:
        """Number of shard files (1 for the single-file layout)."""
        return getattr(self._repository, "num_shards", 1)

    # ------------------------------------------------------------- writes
    def put(self, problem_digest: str, evaluation: CandidateEvaluation) -> None:
        """Persist one successful evaluation (failed ones are never stored)."""
        self.put_many(problem_digest, [evaluation])

    def put_many(
        self, problem_digest: str, evaluations: Iterable[CandidateEvaluation]
    ) -> int:
        """Persist a batch of evaluations in one transaction.

        Parameters
        ----------
        problem_digest:
            The problem namespace the evaluations belong to.
        evaluations:
            Records to store; failed evaluations are skipped (a transient
            worker failure must not poison a genome durably).

        Returns
        -------
        int
            Number of rows written.

        Raises
        ------
        StoreError
            When the store is read-only or the write fails.
        """
        return self._repository.put_many(problem_digest, evaluations)

    def put_raw_rows(self, rows: Iterable[RawRow]) -> int:
        """Insert raw rows verbatim, preserving timestamps (migration path)."""
        return self._repository.put_raw_rows(rows)

    # -------------------------------------------------------------- reads
    def get(self, problem_digest: str, genome_key: str) -> CandidateEvaluation | None:
        """The stored evaluation for one candidate, or None when absent."""
        return self._repository.get(problem_digest, genome_key)

    def best(self, problem_digest: str, limit: int) -> list[CandidateEvaluation]:
        """The highest-accuracy stored candidates of one problem.

        Parameters
        ----------
        problem_digest:
            Problem namespace to query.
        limit:
            Maximum number of candidates to return.

        Returns
        -------
        list[CandidateEvaluation]
            Best-accuracy-first; empty when the problem is unknown.
        """
        return self._repository.best(problem_digest, limit)

    def count(self, problem_digest: str | None = None) -> int:
        """Number of stored evaluations (optionally for one problem only)."""
        return self._repository.count(problem_digest)

    def problems(self) -> list[dict]:
        """Per-problem summary rows (digest, row count, best accuracy, span).

        Returns
        -------
        list[dict]
            One row per distinct problem digest, most rows first.
        """
        return self._repository.problems()

    def export_rows(self, problem_digest: str | None = None) -> list[dict]:
        """Flat report rows of every stored evaluation (CSV-friendly).

        Each row carries the problem digest, genome key, the candidate
        summary (:meth:`~repro.core.candidate.CandidateEvaluation.summary`)
        and the write timestamp.  Materializes the whole result; prefer
        :meth:`export_rows_iter` on large stores.
        """
        return self._repository.export_rows(problem_digest)

    def export_rows_iter(
        self, problem_digest: str | None = None, chunk_size: int = 256
    ) -> Iterator[dict]:
        """Stream export rows in ``chunk_size`` batches (constant memory).

        Same rows and ordering as :meth:`export_rows` — problem digest, then
        accuracy (best first), then genome key — without deserializing the
        full table up front.  Surrogate training and ``ecad store export``
        consume this path.
        """
        return self._repository.export_rows_iter(problem_digest, chunk_size)

    def iter_raw_rows(self, chunk_size: int = 256) -> Iterator[RawRow]:
        """Every stored row in raw column form (for migration/resharding)."""
        return self._repository.iter_raw_rows(chunk_size)

    # ----------------------------------------------------------- pruning
    def prune(
        self,
        keep_best: int | None = None,
        older_than_seconds: float | None = None,
        problem_digest: str | None = None,
    ) -> int:
        """Delete rows to keep the store small.

        Parameters
        ----------
        keep_best:
            Keep only the N highest-accuracy rows *per problem digest*.
        older_than_seconds:
            Delete rows written more than this many seconds ago.
        problem_digest:
            Restrict pruning to one problem namespace.

        Returns
        -------
        int
            Number of rows deleted.

        Raises
        ------
        StoreError
            When the store is read-only or no criterion was given.
        """
        return self._repository.prune(
            keep_best=keep_best,
            older_than_seconds=older_than_seconds,
            problem_digest=problem_digest,
        )

    # ------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Whole-store summary: schema, shard count, rows, on-disk size.

        ``size_bytes`` is the true disk footprint: the main database file(s)
        *plus* the ``-wal``/``-shm`` sidecars WAL mode creates, summed across
        every shard.
        """
        return self._repository.stats()

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the underlying repository (idempotent)."""
        self._repository.close()

    def __enter__(self) -> "EvaluationStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "ro" if self.readonly else "rw"
        if self.shards > 1:
            return f"EvaluationStore({self.path!r}, {mode}, shards={self.shards})"
        return f"EvaluationStore({self.path!r}, {mode})"
