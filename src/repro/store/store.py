"""SQLite-backed persistent store of candidate evaluations.

The paper's master/worker design amortizes expensive evaluations (NN training
plus hardware-database lookups) across one long-running search; the
:class:`EvaluationStore` extends that amortization *across runs and across
processes*.  Every successful :class:`~repro.core.candidate.CandidateEvaluation`
is written as one row keyed on ``(problem_digest, genome_key)`` (see
:mod:`repro.store.digest`), so a repeated sweep, a re-seeded benchmark, or a
second machine sharing the file never re-trains a candidate the store has
already seen.

Durability and concurrency:

* **WAL journaling** — readers never block the single writer; several
  processes (e.g. sweep cells under ``--backend processes``, or two separate
  ``ecad`` invocations) can share one store file safely.
* **Busy timeout + immediate transactions** — concurrent writers serialize
  on SQLite's file lock instead of failing.
* **Schema versioning** — the schema version is recorded in the file; a
  mismatching or corrupt file raises :class:`~repro.core.errors.StoreError`
  with a clear message instead of silently mixing formats.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..core.candidate import CandidateEvaluation
from ..core.errors import StoreError
from .serialize import dumps, loads

__all__ = ["SCHEMA_VERSION", "StoreStatistics", "EvaluationStore"]

#: Current on-disk schema version.  Bump when the table layout or the payload
#: format changes incompatibly; the store refuses files with other versions.
SCHEMA_VERSION = 1

_CREATE_META = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
)
"""

_CREATE_EVALUATIONS = """
CREATE TABLE IF NOT EXISTS evaluations (
    problem_digest          TEXT NOT NULL,
    genome_key              TEXT NOT NULL,
    accuracy                REAL NOT NULL,
    fpga_outputs_per_second REAL NOT NULL DEFAULT 0,
    evaluation_seconds      REAL NOT NULL DEFAULT 0,
    created_at              REAL NOT NULL,
    payload                 TEXT NOT NULL,
    PRIMARY KEY (problem_digest, genome_key)
)
"""

_CREATE_INDEX = """
CREATE INDEX IF NOT EXISTS idx_evaluations_best
ON evaluations (problem_digest, accuracy DESC)
"""


@dataclass
class StoreStatistics:
    """Hit/miss/write counters of one store-backed cache tier.

    Attributes
    ----------
    hits:
        Lookups answered by a stored row.
    misses:
        Lookups that fell through to a fresh evaluation.
    writes:
        Rows written (or refreshed) by this process.
    write_errors:
        Failed write attempts (the search continues; the row is lost).
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_errors: int = 0


class EvaluationStore:
    """Durable, shareable store of candidate evaluations.

    Parameters
    ----------
    path:
        Store file location.  Parent directories are created on demand.
        ``":memory:"`` builds a private in-memory store (tests).
    readonly:
        Open the file for reads only; :meth:`put` raises and the file must
        already exist.
    timeout_seconds:
        SQLite busy timeout — how long a writer waits on a concurrent
        writer's lock before giving up.

    Raises
    ------
    StoreError
        When the file is not a valid store (corrupt/truncated), was written
        by a different schema version, or is missing in read-only mode.
    """

    def __init__(
        self,
        path: str | Path,
        readonly: bool = False,
        timeout_seconds: float = 30.0,
    ) -> None:
        self.path = str(path)
        self.readonly = bool(readonly)
        self._lock = threading.Lock()
        in_memory = self.path == ":memory:"
        if not in_memory:
            file_path = Path(self.path)
            if self.readonly and not file_path.exists():
                raise StoreError(f"read-only store file not found: {self.path}")
            file_path.parent.mkdir(parents=True, exist_ok=True)
        try:
            if self.readonly:
                uri = f"file:{self.path}?mode=ro"
                self._connection = sqlite3.connect(
                    uri, uri=True, timeout=timeout_seconds, check_same_thread=False
                )
            else:
                self._connection = sqlite3.connect(
                    self.path, timeout=timeout_seconds, check_same_thread=False
                )
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open evaluation store {self.path}: {exc}") from exc
        try:
            self._connection.execute(f"PRAGMA busy_timeout = {int(timeout_seconds * 1000)}")
            if not self.readonly and not in_memory:
                # WAL lets concurrent readers proceed while one process writes.
                self._connection.execute("PRAGMA journal_mode=WAL")
            self._initialize_schema()
        except sqlite3.DatabaseError as exc:
            self._connection.close()
            raise StoreError(
                f"{self.path} is not a valid evaluation store (corrupt or not SQLite): {exc}"
            ) from exc

    # ------------------------------------------------------------- schema
    def _initialize_schema(self) -> None:
        version = self._read_schema_version()
        if version is None:
            if self.readonly:
                raise StoreError(
                    f"{self.path} is not an evaluation store (no schema metadata)"
                )
            with self._connection:
                self._connection.execute(_CREATE_META)
                self._connection.execute(_CREATE_EVALUATIONS)
                self._connection.execute(_CREATE_INDEX)
                self._connection.execute(
                    "INSERT OR REPLACE INTO store_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
                self._connection.execute(
                    "INSERT OR IGNORE INTO store_meta (key, value) VALUES (?, ?)",
                    ("created_at", repr(time.time())),
                )
        elif version != SCHEMA_VERSION:
            raise StoreError(
                f"evaluation store {self.path} has schema version {version}, "
                f"this build expects {SCHEMA_VERSION}; export what you need with "
                f"a matching build and recreate the store"
            )

    def _read_schema_version(self) -> int | None:
        """The file's recorded schema version, or None for a fresh file."""
        tables = {
            row[0]
            for row in self._connection.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        if "store_meta" not in tables:
            if tables:
                raise StoreError(
                    f"{self.path} is an SQLite file but not an evaluation store "
                    f"(tables: {', '.join(sorted(tables))})"
                )
            return None
        row = self._connection.execute(
            "SELECT value FROM store_meta WHERE key='schema_version'"
        ).fetchone()
        if row is None:
            raise StoreError(f"{self.path} has no recorded schema version")
        try:
            return int(row[0])
        except ValueError as exc:
            raise StoreError(
                f"{self.path} has an unreadable schema version {row[0]!r}"
            ) from exc

    # ------------------------------------------------------------- writes
    def put(self, problem_digest: str, evaluation: CandidateEvaluation) -> None:
        """Persist one successful evaluation (failed ones are never stored)."""
        self.put_many(problem_digest, [evaluation])

    def put_many(
        self, problem_digest: str, evaluations: Iterable[CandidateEvaluation]
    ) -> int:
        """Persist a batch of evaluations in one transaction.

        Parameters
        ----------
        problem_digest:
            The problem namespace the evaluations belong to.
        evaluations:
            Records to store; failed evaluations are skipped (a transient
            worker failure must not poison a genome durably).

        Returns
        -------
        int
            Number of rows written.

        Raises
        ------
        StoreError
            When the store is read-only or the write fails.
        """
        if self.readonly:
            raise StoreError(f"evaluation store {self.path} is read-only")
        rows = [
            (
                str(problem_digest),
                evaluation.genome.cache_key(),
                float(evaluation.accuracy),
                float(evaluation.fpga_outputs_per_second),
                float(evaluation.evaluation_seconds),
                time.time(),
                dumps(evaluation),
            )
            for evaluation in evaluations
            if not evaluation.failed
        ]
        if not rows:
            return 0
        with self._lock:
            try:
                with self._connection:
                    self._connection.executemany(
                        "INSERT OR REPLACE INTO evaluations "
                        "(problem_digest, genome_key, accuracy, fpga_outputs_per_second, "
                        " evaluation_seconds, created_at, payload) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?)",
                        rows,
                    )
            except sqlite3.Error as exc:
                raise StoreError(f"cannot write to evaluation store {self.path}: {exc}") from exc
        return len(rows)

    # -------------------------------------------------------------- reads
    def get(self, problem_digest: str, genome_key: str) -> CandidateEvaluation | None:
        """The stored evaluation for one candidate, or None when absent."""
        with self._lock:
            try:
                row = self._connection.execute(
                    "SELECT payload FROM evaluations "
                    "WHERE problem_digest = ? AND genome_key = ?",
                    (str(problem_digest), str(genome_key)),
                ).fetchone()
            except sqlite3.Error as exc:
                raise StoreError(f"cannot read evaluation store {self.path}: {exc}") from exc
        if row is None:
            return None
        return loads(row[0])

    def best(self, problem_digest: str, limit: int) -> list[CandidateEvaluation]:
        """The highest-accuracy stored candidates of one problem.

        Parameters
        ----------
        problem_digest:
            Problem namespace to query.
        limit:
            Maximum number of candidates to return.

        Returns
        -------
        list[CandidateEvaluation]
            Best-accuracy-first; empty when the problem is unknown.
        """
        if limit <= 0:
            return []
        with self._lock:
            try:
                rows = self._connection.execute(
                    "SELECT payload FROM evaluations WHERE problem_digest = ? "
                    "ORDER BY accuracy DESC, genome_key LIMIT ?",
                    (str(problem_digest), int(limit)),
                ).fetchall()
            except sqlite3.Error as exc:
                raise StoreError(f"cannot read evaluation store {self.path}: {exc}") from exc
        return [loads(row[0]) for row in rows]

    def count(self, problem_digest: str | None = None) -> int:
        """Number of stored evaluations (optionally for one problem only)."""
        with self._lock:
            try:
                if problem_digest is None:
                    row = self._connection.execute("SELECT COUNT(*) FROM evaluations").fetchone()
                else:
                    row = self._connection.execute(
                        "SELECT COUNT(*) FROM evaluations WHERE problem_digest = ?",
                        (str(problem_digest),),
                    ).fetchone()
            except sqlite3.Error as exc:
                raise StoreError(f"cannot read evaluation store {self.path}: {exc}") from exc
        return int(row[0])

    def problems(self) -> list[dict]:
        """Per-problem summary rows (digest, row count, best accuracy, span).

        Returns
        -------
        list[dict]
            One row per distinct problem digest, most rows first.
        """
        with self._lock:
            try:
                rows = self._connection.execute(
                    "SELECT problem_digest, COUNT(*), MAX(accuracy), "
                    "       SUM(evaluation_seconds), MIN(created_at), MAX(created_at) "
                    "FROM evaluations GROUP BY problem_digest ORDER BY COUNT(*) DESC"
                ).fetchall()
            except sqlite3.Error as exc:
                raise StoreError(f"cannot read evaluation store {self.path}: {exc}") from exc
        return [
            {
                "problem_digest": digest,
                "evaluations": int(count),
                "best_accuracy": float(best),
                "stored_eval_seconds": float(seconds or 0.0),
                "first_written": float(first),
                "last_written": float(last),
            }
            for digest, count, best, seconds, first, last in rows
        ]

    def export_rows(self, problem_digest: str | None = None) -> list[dict]:
        """Flat report rows of every stored evaluation (CSV-friendly).

        Each row carries the problem digest, genome key, the candidate
        summary (:meth:`~repro.core.candidate.CandidateEvaluation.summary`)
        and the write timestamp.
        """
        with self._lock:
            try:
                if problem_digest is None:
                    rows = self._connection.execute(
                        "SELECT problem_digest, payload, created_at FROM evaluations "
                        "ORDER BY problem_digest, accuracy DESC"
                    ).fetchall()
                else:
                    rows = self._connection.execute(
                        "SELECT problem_digest, payload, created_at FROM evaluations "
                        "WHERE problem_digest = ? ORDER BY accuracy DESC",
                        (str(problem_digest),),
                    ).fetchall()
            except sqlite3.Error as exc:
                raise StoreError(f"cannot read evaluation store {self.path}: {exc}") from exc
        exported = []
        for digest, payload, created_at in rows:
            record = {"problem_digest": digest, "created_at": created_at}
            record.update(loads(payload).summary())
            exported.append(record)
        return exported

    # ----------------------------------------------------------- pruning
    def prune(
        self,
        keep_best: int | None = None,
        older_than_seconds: float | None = None,
        problem_digest: str | None = None,
    ) -> int:
        """Delete rows to keep the store small.

        Parameters
        ----------
        keep_best:
            Keep only the N highest-accuracy rows *per problem digest*.
        older_than_seconds:
            Delete rows written more than this many seconds ago.
        problem_digest:
            Restrict pruning to one problem namespace.

        Returns
        -------
        int
            Number of rows deleted.

        Raises
        ------
        StoreError
            When the store is read-only or no criterion was given.
        """
        if self.readonly:
            raise StoreError(f"evaluation store {self.path} is read-only")
        if keep_best is None and older_than_seconds is None:
            raise StoreError("prune needs keep_best and/or older_than_seconds")
        conditions: list[str] = []
        params: list = []
        if problem_digest is not None:
            conditions.append("problem_digest = ?")
            params.append(str(problem_digest))
        if older_than_seconds is not None:
            conditions.append("created_at < ?")
            params.append(time.time() - float(older_than_seconds))
        if keep_best is not None:
            if keep_best < 0:
                raise StoreError(f"keep_best must be >= 0, got {keep_best}")
            conditions.append(
                "(problem_digest, genome_key) NOT IN ("
                " SELECT problem_digest, genome_key FROM ("
                "   SELECT problem_digest, genome_key,"
                "          ROW_NUMBER() OVER ("
                "            PARTITION BY problem_digest "
                "            ORDER BY accuracy DESC, genome_key) AS rank "
                "   FROM evaluations) WHERE rank <= ?)"
            )
            params.append(int(keep_best))
        statement = "DELETE FROM evaluations WHERE " + " AND ".join(conditions)
        with self._lock:
            try:
                with self._connection:
                    cursor = self._connection.execute(statement, params)
            except sqlite3.Error as exc:
                raise StoreError(f"cannot prune evaluation store {self.path}: {exc}") from exc
        return int(cursor.rowcount)

    # ------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Whole-store summary: schema, row counts, problems, file size."""
        size_bytes = 0
        if self.path != ":memory:":
            file_path = Path(self.path)
            if file_path.exists():
                size_bytes = file_path.stat().st_size
        problems = self.problems()
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "readonly": self.readonly,
            "evaluations": sum(p["evaluations"] for p in problems),
            "problems": len(problems),
            "size_bytes": size_bytes,
            "stored_eval_seconds": sum(p["stored_eval_seconds"] for p in problems),
        }

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            try:
                self._connection.close()
            except sqlite3.Error:  # pragma: no cover - close never matters twice
                pass

    def __enter__(self) -> "EvaluationStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "ro" if self.readonly else "rw"
        return f"EvaluationStore({self.path!r}, {mode})"
