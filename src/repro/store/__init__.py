"""Persistent cross-run evaluation store.

This package makes expensive candidate evaluations durable: an SQLite-backed
:class:`EvaluationStore` keyed by canonical problem/candidate digests, a
:class:`StoreBackedCache` that slots under the in-memory
:class:`~repro.core.cache.EvaluationCache` as a read-through/write-behind
second tier, and the digest functions that decide when two runs may share
results.  See ``docs/ARCHITECTURE.md`` for where the store sits in the
system.
"""

from .cache import StoreBackedCache
from .digest import dataset_fingerprint, problem_digest
from .store import SCHEMA_VERSION, EvaluationStore, StoreStatistics

__all__ = [
    "SCHEMA_VERSION",
    "EvaluationStore",
    "StoreBackedCache",
    "StoreStatistics",
    "dataset_fingerprint",
    "problem_digest",
]
