"""Persistent cross-run evaluation store.

This package makes expensive candidate evaluations durable: an
:class:`EvaluationStore` facade keyed by canonical problem/candidate digests
over a swappable :class:`StoreRepository` (one SQLite file by default, an
N-way :class:`ShardedStore` for concurrent writers), a
:class:`StoreBackedCache` that slots under the in-memory
:class:`~repro.core.cache.EvaluationCache` as a read-through/write-behind
second tier with retrying, loss-free flushes, and the digest functions that
decide when two runs may share results.  See ``docs/ARCHITECTURE.md`` for
where the store sits in the system.
"""

from .cache import StoreBackedCache
from .digest import dataset_fingerprint, problem_digest
from .repository import SCHEMA_VERSION, SQLiteRepository, StoreRepository
from .sharded import ShardedStore, migrate_store, shard_index
from .store import EvaluationStore, StoreStatistics

__all__ = [
    "SCHEMA_VERSION",
    "EvaluationStore",
    "SQLiteRepository",
    "ShardedStore",
    "StoreBackedCache",
    "StoreRepository",
    "StoreStatistics",
    "dataset_fingerprint",
    "migrate_store",
    "problem_digest",
    "shard_index",
]
