"""The store-backed second cache tier.

:class:`StoreBackedCache` is a drop-in
:class:`~repro.core.cache.EvaluationCache` whose misses fall through to a
persistent :class:`~repro.store.store.EvaluationStore` (read-through) and
whose fresh results are queued for batched persistence (write-behind).  The
engine's serial and asynchronous paths, ``RandomSearch`` and the master all
talk to the familiar cache interface and get durability for free:

* ``lookup`` / ``lookup_or_reserve`` — in-memory first; on a miss the store
  is consulted and a hit is promoted into the memory tier (and served with
  ``from_cache=True``, exactly like a warm in-memory hit).
* ``store`` / ``complete`` — publish to the memory tier immediately, then
  enqueue the row; the queue is flushed every ``write_batch_size`` entries
  and on :meth:`flush`.  A failing store never fails the search — but it
  must not *lose* rows either: a flush that hits a transient
  :class:`~repro.core.errors.StoreError` (e.g. ``database is locked`` past
  the busy timeout under multi-writer contention) retries with bounded
  backoff, and a batch that still cannot be written is re-queued for the
  next flush instead of being discarded.  Rows are only dropped — and only
  then counted in ``store_statistics.write_errors`` — when the pending
  queue overflows ``max_pending_writes``.

Read-only stores are honoured transparently: lookups read through, writes
stay purely in memory.
"""

from __future__ import annotations

import logging
import threading
import time

from ..core.cache import EvaluationCache
from ..core.candidate import CandidateEvaluation
from ..core.errors import StoreError
from ..core.genome import CoDesignGenome
from .store import EvaluationStore, StoreStatistics

__all__ = ["StoreBackedCache"]

logger = logging.getLogger(__name__)


class StoreBackedCache(EvaluationCache):
    """Two-tier evaluation cache: in-memory LRU over a persistent store.

    Parameters
    ----------
    store:
        The persistent tier.  The cache never closes it; the owner does.
    problem_digest:
        Namespace of the current problem (see
        :func:`repro.store.digest.problem_digest`); all reads and writes are
        scoped to it.
    max_entries:
        Optional bound on the in-memory tier (see
        :class:`~repro.core.cache.EvaluationCache`).
    write_batch_size:
        Flush the write-behind queue every this many fresh evaluations.
    write_retries:
        How many times one flush retries a failing write before re-queueing
        the batch (0 disables retrying within a flush; the batch is still
        re-queued, never silently dropped).
    retry_backoff_seconds:
        Sleep before the first retry; doubles per retry (capped at 2s).
    max_pending_writes:
        Upper bound on the re-queued backlog while the store is unwritable.
        Overflowing rows are dropped oldest-first and counted in
        ``store_statistics.write_errors`` — the only path that loses rows.
    """

    def __init__(
        self,
        store: EvaluationStore,
        problem_digest: str,
        max_entries: int | None = None,
        write_batch_size: int = 16,
        write_retries: int = 3,
        retry_backoff_seconds: float = 0.05,
        max_pending_writes: int = 4096,
    ) -> None:
        super().__init__(max_entries=max_entries)
        if write_batch_size < 1:
            raise ValueError(f"write_batch_size must be >= 1, got {write_batch_size}")
        if write_retries < 0:
            raise ValueError(f"write_retries must be >= 0, got {write_retries}")
        if retry_backoff_seconds < 0:
            raise ValueError(
                f"retry_backoff_seconds must be >= 0, got {retry_backoff_seconds}"
            )
        if max_pending_writes < write_batch_size:
            raise ValueError(
                f"max_pending_writes ({max_pending_writes}) must be >= "
                f"write_batch_size ({write_batch_size})"
            )
        self.backing_store = store
        self.problem_digest = str(problem_digest)
        self.write_batch_size = int(write_batch_size)
        self.write_retries = int(write_retries)
        self.retry_backoff_seconds = float(retry_backoff_seconds)
        self.max_pending_writes = int(max_pending_writes)
        self.store_statistics = StoreStatistics()
        self._stats_lock = threading.Lock()
        self._write_queue: list[CandidateEvaluation] = []
        self._write_lock = threading.Lock()
        # After a fully failed flush, hold off queue-triggered auto-flushes
        # briefly so a down store does not add retry latency to every single
        # fresh evaluation.  Explicit flush() calls always go to the store.
        self._auto_flush_not_before = 0.0

    # ------------------------------------------------------------- lookups
    def lookup(self, genome: CoDesignGenome) -> CandidateEvaluation | None:
        """In-memory lookup with read-through to the persistent store."""
        hit = super().lookup(genome)
        if hit is not None:
            return hit
        stored = self._load(genome)
        if stored is None:
            return None
        # Promote into the memory tier so repeats stay off the disk path.
        super().store(stored)
        return stored.as_cache_copy()

    def lookup_or_reserve(self, genome: CoDesignGenome) -> tuple[CandidateEvaluation | None, bool]:
        """Single-flight lookup with read-through to the persistent store.

        A store hit releases the reservation immediately (publishing the
        stored result to any concurrent waiters), so the caller never
        evaluates a candidate the store already knows.
        """
        cached, owner = super().lookup_or_reserve(genome)
        if not owner:
            return cached, False
        stored = self._load(genome)
        if stored is None:
            return None, True
        # Publish through the base class: waiters wake, memory tier fills,
        # and no write-behind entry is queued for a row the store already has.
        super().complete(genome, stored)
        return stored.as_cache_copy(), False

    def _load(self, genome: CoDesignGenome) -> CandidateEvaluation | None:
        try:
            stored = self.backing_store.get(self.problem_digest, genome.cache_key())
        except StoreError as exc:
            logger.warning("evaluation store read failed: %s", exc)
            return None
        # The engine's async path calls this from several worker threads.
        with self._stats_lock:
            if stored is None:
                self.store_statistics.misses += 1
            else:
                self.store_statistics.hits += 1
        return stored

    # -------------------------------------------------------------- stores
    def store_evaluation_result(self, evaluation: CandidateEvaluation) -> None:
        """Queue one fresh evaluation for write-behind persistence."""
        if evaluation.failed or evaluation.from_cache or self.backing_store.readonly:
            return
        with self._write_lock:
            self._write_queue.append(evaluation)
            should_flush = (
                len(self._write_queue) >= self.write_batch_size
                and time.monotonic() >= self._auto_flush_not_before
            )
        if should_flush:
            self.flush()

    def store(self, evaluation: CandidateEvaluation) -> None:
        """Publish to the memory tier and queue the write-behind row."""
        super().store(evaluation)
        self.store_evaluation_result(evaluation)

    def complete(self, genome: CoDesignGenome, evaluation: CandidateEvaluation) -> None:
        """Publish an owned evaluation and queue the write-behind row."""
        super().complete(genome, evaluation)
        self.store_evaluation_result(evaluation)

    def flush(self) -> int:
        """Write every queued row to the store now.

        Returns
        -------
        int
            Number of rows persisted by this call.  A transiently failing
            write is retried up to ``write_retries`` times with doubling
            backoff; if every attempt fails the batch is re-queued (oldest
            first, so ordering is preserved) for the next flush and 0 is
            returned.  Rows are lost only when the re-queued backlog would
            exceed ``max_pending_writes`` — the overflow is dropped
            oldest-first and counted in ``store_statistics.write_errors``.
            A broken disk therefore never kills a running search, and a
            transient ``database is locked`` never loses rows.
        """
        with self._write_lock:
            batch = self._write_queue
            self._write_queue = []
        if not batch:
            return 0
        delay = self.retry_backoff_seconds
        last_error: StoreError | None = None
        for attempt in range(self.write_retries + 1):
            if attempt:
                if delay > 0:
                    time.sleep(delay)
                delay = min(delay * 2, 2.0) if delay > 0 else 0.0
                with self._stats_lock:
                    self.store_statistics.write_retries += 1
            try:
                written = self.backing_store.put_many(self.problem_digest, batch)
            except StoreError as exc:
                last_error = exc
                continue
            with self._stats_lock:
                self.store_statistics.writes += written
            with self._write_lock:
                self._auto_flush_not_before = 0.0
            return written
        # Every attempt failed: keep the batch for a later flush instead of
        # dropping it; enforce the backlog cap so a store that stays down
        # cannot grow the queue without bound.
        dropped = 0
        with self._write_lock:
            self._write_queue[:0] = batch
            overflow = len(self._write_queue) - self.max_pending_writes
            if overflow > 0:
                dropped = overflow
                del self._write_queue[:overflow]
            pending = len(self._write_queue)
            self._auto_flush_not_before = time.monotonic() + max(
                8 * self.retry_backoff_seconds, 0.5
            )
        if dropped:
            with self._stats_lock:
                self.store_statistics.write_errors += dropped
        logger.warning(
            "evaluation store write failed after %d attempt(s) "
            "(%d rows re-queued, %d dropped): %s",
            self.write_retries + 1,
            pending,
            dropped,
            last_error,
        )
        return 0

    def pending_writes(self) -> int:
        """Rows queued but not yet persisted (re-queued failures included)."""
        with self._write_lock:
            return len(self._write_queue)

    def clear(self) -> None:
        """Drop the memory tier and the un-flushed write queue (store untouched)."""
        super().clear()
        with self._write_lock:
            self._write_queue = []
