"""The storage layer behind :class:`~repro.store.store.EvaluationStore`.

:class:`StoreRepository` is the narrow protocol the rest of the system talks
to — everything above it (the :class:`~repro.store.cache.StoreBackedCache`
tier, warm-start seeding, surrogate training, the ``ecad store`` commands,
the service's shared store) addresses rows purely by
``(problem_digest, genome_key)`` and never sees the storage layout.  Two
implementations ship today:

* :class:`SQLiteRepository` — one SQLite file, the original (default)
  layout; WAL journaling, busy timeouts and schema versioning exactly as
  before.
* :class:`~repro.store.sharded.ShardedStore` — N SQLite files routed by
  problem-digest prefix, one independent writer lock per shard.

A server-backed repository (Postgres, a result server) slots in behind the
same protocol without touching any caller.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from pathlib import Path
from typing import Iterable, Iterator, Protocol, runtime_checkable

from ..core.candidate import CandidateEvaluation
from ..core.errors import StoreError
from .serialize import dumps, loads

__all__ = [
    "SCHEMA_VERSION",
    "RawRow",
    "StoreRepository",
    "SQLiteRepository",
    "on_disk_bytes",
]

#: Current on-disk schema version.  Bump when the table layout or the payload
#: format changes incompatibly; the store refuses files with other versions.
SCHEMA_VERSION = 1

#: Column order of a raw evaluation row, as yielded by ``iter_raw_rows`` and
#: accepted by ``put_raw_rows``: (problem_digest, genome_key, accuracy,
#: fpga_outputs_per_second, evaluation_seconds, created_at, payload).
RawRow = tuple

_CREATE_META = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
)
"""

_CREATE_EVALUATIONS = """
CREATE TABLE IF NOT EXISTS evaluations (
    problem_digest          TEXT NOT NULL,
    genome_key              TEXT NOT NULL,
    accuracy                REAL NOT NULL,
    fpga_outputs_per_second REAL NOT NULL DEFAULT 0,
    evaluation_seconds      REAL NOT NULL DEFAULT 0,
    created_at              REAL NOT NULL,
    payload                 TEXT NOT NULL,
    PRIMARY KEY (problem_digest, genome_key)
)
"""

_CREATE_INDEX = """
CREATE INDEX IF NOT EXISTS idx_evaluations_best
ON evaluations (problem_digest, accuracy DESC)
"""

_INSERT_ROW = (
    "INSERT OR REPLACE INTO evaluations "
    "(problem_digest, genome_key, accuracy, fpga_outputs_per_second, "
    " evaluation_seconds, created_at, payload) "
    "VALUES (?, ?, ?, ?, ?, ?, ?)"
)


def on_disk_bytes(path: str | Path) -> int:
    """Total on-disk size of one SQLite database *including* WAL sidecars.

    WAL mode keeps live data in ``<path>-wal`` (and a ``<path>-shm`` index)
    between checkpoints; measuring only the main file undercounts — often
    drastically on a store that is being written right now.
    """
    path = str(path)
    if path == ":memory:":
        return 0
    total = 0
    for candidate in (path, path + "-wal", path + "-shm"):
        file_path = Path(candidate)
        if file_path.exists():
            total += file_path.stat().st_size
    return total


@runtime_checkable
class StoreRepository(Protocol):
    """What a storage backend must provide to sit under the store facade.

    All rows are addressed by ``(problem_digest, genome_key)``; the
    repository owns layout, locking and durability.  Implementations must be
    safe for concurrent use from multiple threads.
    """

    path: str
    readonly: bool

    def put_many(self, problem_digest: str, evaluations: Iterable[CandidateEvaluation]) -> int:
        """Persist a batch of evaluations; returns the number written."""
        ...

    def get(self, problem_digest: str, genome_key: str) -> CandidateEvaluation | None:
        """The stored evaluation for one candidate, or None when absent."""
        ...

    def best(self, problem_digest: str, limit: int) -> list[CandidateEvaluation]:
        """The highest-accuracy stored candidates of one problem."""
        ...

    def count(self, problem_digest: str | None = None) -> int:
        """Number of stored evaluations (optionally for one problem only)."""
        ...

    def problems(self) -> list[dict]:
        """Per-problem summary rows (digest, row count, best accuracy, span)."""
        ...

    def export_rows(self, problem_digest: str | None = None) -> list[dict]:
        """Flat report rows of every stored evaluation (CSV-friendly)."""
        ...

    def export_rows_iter(
        self, problem_digest: str | None = None, chunk_size: int = 256
    ) -> Iterator[dict]:
        """Streaming variant of :meth:`export_rows` (constant memory)."""
        ...

    def prune(
        self,
        keep_best: int | None = None,
        older_than_seconds: float | None = None,
        problem_digest: str | None = None,
    ) -> int:
        """Delete rows to keep the store small; returns rows deleted."""
        ...

    def stats(self) -> dict:
        """Whole-store summary: schema, row counts, problems, on-disk size."""
        ...

    def iter_raw_rows(self, chunk_size: int = 256) -> Iterator[RawRow]:
        """Every stored row in raw column form (for migration/resharding)."""
        ...

    def put_raw_rows(self, rows: Iterable[RawRow]) -> int:
        """Insert raw rows verbatim, preserving timestamps (migration path)."""
        ...

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
        ...


class SQLiteRepository:
    """One SQLite file of evaluations — the original, default layout.

    Parameters
    ----------
    path:
        Database file location.  Parent directories are created on demand.
        ``":memory:"`` builds a private in-memory repository (tests).
    readonly:
        Open the file for reads only; writes raise and the file must
        already exist.
    timeout_seconds:
        SQLite busy timeout — how long a writer waits on a concurrent
        writer's lock before giving up.

    Raises
    ------
    StoreError
        When the file is not a valid store (corrupt/truncated), was written
        by a different schema version, or is missing in read-only mode.
    """

    def __init__(
        self,
        path: str | Path,
        readonly: bool = False,
        timeout_seconds: float = 30.0,
    ) -> None:
        self.path = str(path)
        self.readonly = bool(readonly)
        self._lock = threading.Lock()
        in_memory = self.path == ":memory:"
        if not in_memory:
            file_path = Path(self.path)
            if self.readonly and not file_path.exists():
                raise StoreError(f"read-only store file not found: {self.path}")
            file_path.parent.mkdir(parents=True, exist_ok=True)
        try:
            if self.readonly:
                uri = f"file:{self.path}?mode=ro"
                self._connection = sqlite3.connect(
                    uri, uri=True, timeout=timeout_seconds, check_same_thread=False
                )
            else:
                self._connection = sqlite3.connect(
                    self.path, timeout=timeout_seconds, check_same_thread=False
                )
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open evaluation store {self.path}: {exc}") from exc
        try:
            self._connection.execute(f"PRAGMA busy_timeout = {int(timeout_seconds * 1000)}")
            if not self.readonly and not in_memory:
                # WAL lets concurrent readers proceed while one process writes.
                self._connection.execute("PRAGMA journal_mode=WAL")
            self._initialize_schema()
        except sqlite3.DatabaseError as exc:
            self._connection.close()
            raise StoreError(
                f"{self.path} is not a valid evaluation store (corrupt or not SQLite): {exc}"
            ) from exc

    # ------------------------------------------------------------- schema
    def _initialize_schema(self) -> None:
        version = self._read_schema_version()
        if version is None:
            if self.readonly:
                raise StoreError(
                    f"{self.path} is not an evaluation store (no schema metadata)"
                )
            with self._connection:
                self._connection.execute(_CREATE_META)
                self._connection.execute(_CREATE_EVALUATIONS)
                self._connection.execute(_CREATE_INDEX)
                self._connection.execute(
                    "INSERT OR REPLACE INTO store_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
                self._connection.execute(
                    "INSERT OR IGNORE INTO store_meta (key, value) VALUES (?, ?)",
                    ("created_at", repr(time.time())),
                )
        elif version != SCHEMA_VERSION:
            raise StoreError(
                f"evaluation store {self.path} has schema version {version}, "
                f"this build expects {SCHEMA_VERSION}; export what you need with "
                f"a matching build and recreate the store"
            )

    def _read_schema_version(self) -> int | None:
        """The file's recorded schema version, or None for a fresh file."""
        tables = {
            row[0]
            for row in self._connection.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        if "store_meta" not in tables:
            if tables:
                raise StoreError(
                    f"{self.path} is an SQLite file but not an evaluation store "
                    f"(tables: {', '.join(sorted(tables))})"
                )
            return None
        row = self._connection.execute(
            "SELECT value FROM store_meta WHERE key='schema_version'"
        ).fetchone()
        if row is None:
            raise StoreError(f"{self.path} has no recorded schema version")
        try:
            return int(row[0])
        except ValueError as exc:
            raise StoreError(
                f"{self.path} has an unreadable schema version {row[0]!r}"
            ) from exc

    # ------------------------------------------------------------- writes
    def put_many(
        self, problem_digest: str, evaluations: Iterable[CandidateEvaluation]
    ) -> int:
        """Persist a batch of evaluations in one transaction.

        Failed evaluations are skipped (a transient worker failure must not
        poison a genome durably).  Raises :class:`StoreError` when the
        repository is read-only or the write fails.
        """
        if self.readonly:
            raise StoreError(f"evaluation store {self.path} is read-only")
        rows = [
            (
                str(problem_digest),
                evaluation.genome.cache_key(),
                float(evaluation.accuracy),
                float(evaluation.fpga_outputs_per_second),
                float(evaluation.evaluation_seconds),
                time.time(),
                dumps(evaluation),
            )
            for evaluation in evaluations
            if not evaluation.failed
        ]
        if not rows:
            return 0
        with self._lock:
            try:
                with self._connection:
                    self._connection.executemany(_INSERT_ROW, rows)
            except sqlite3.Error as exc:
                raise StoreError(f"cannot write to evaluation store {self.path}: {exc}") from exc
        return len(rows)

    def put_raw_rows(self, rows: Iterable[RawRow]) -> int:
        """Insert raw rows verbatim (timestamps preserved; migration path)."""
        if self.readonly:
            raise StoreError(f"evaluation store {self.path} is read-only")
        rows = list(rows)
        if not rows:
            return 0
        with self._lock:
            try:
                with self._connection:
                    self._connection.executemany(_INSERT_ROW, rows)
            except sqlite3.Error as exc:
                raise StoreError(f"cannot write to evaluation store {self.path}: {exc}") from exc
        return len(rows)

    # -------------------------------------------------------------- reads
    def get(self, problem_digest: str, genome_key: str) -> CandidateEvaluation | None:
        """The stored evaluation for one candidate, or None when absent."""
        with self._lock:
            try:
                row = self._connection.execute(
                    "SELECT payload FROM evaluations "
                    "WHERE problem_digest = ? AND genome_key = ?",
                    (str(problem_digest), str(genome_key)),
                ).fetchone()
            except sqlite3.Error as exc:
                raise StoreError(f"cannot read evaluation store {self.path}: {exc}") from exc
        if row is None:
            return None
        return loads(row[0])

    def best(self, problem_digest: str, limit: int) -> list[CandidateEvaluation]:
        """The highest-accuracy stored candidates of one problem, best first."""
        if limit <= 0:
            return []
        with self._lock:
            try:
                rows = self._connection.execute(
                    "SELECT payload FROM evaluations WHERE problem_digest = ? "
                    "ORDER BY accuracy DESC, genome_key LIMIT ?",
                    (str(problem_digest), int(limit)),
                ).fetchall()
            except sqlite3.Error as exc:
                raise StoreError(f"cannot read evaluation store {self.path}: {exc}") from exc
        return [loads(row[0]) for row in rows]

    def count(self, problem_digest: str | None = None) -> int:
        """Number of stored evaluations (optionally for one problem only)."""
        with self._lock:
            try:
                if problem_digest is None:
                    row = self._connection.execute("SELECT COUNT(*) FROM evaluations").fetchone()
                else:
                    row = self._connection.execute(
                        "SELECT COUNT(*) FROM evaluations WHERE problem_digest = ?",
                        (str(problem_digest),),
                    ).fetchone()
            except sqlite3.Error as exc:
                raise StoreError(f"cannot read evaluation store {self.path}: {exc}") from exc
        return int(row[0])

    def problems(self) -> list[dict]:
        """Per-problem summary rows, most rows first."""
        with self._lock:
            try:
                rows = self._connection.execute(
                    "SELECT problem_digest, COUNT(*), MAX(accuracy), "
                    "       SUM(evaluation_seconds), MIN(created_at), MAX(created_at) "
                    "FROM evaluations GROUP BY problem_digest ORDER BY COUNT(*) DESC"
                ).fetchall()
            except sqlite3.Error as exc:
                raise StoreError(f"cannot read evaluation store {self.path}: {exc}") from exc
        return [
            {
                "problem_digest": digest,
                "evaluations": int(count),
                "best_accuracy": float(best),
                "stored_eval_seconds": float(seconds or 0.0),
                "first_written": float(first),
                "last_written": float(last),
            }
            for digest, count, best, seconds, first, last in rows
        ]

    def export_rows(self, problem_digest: str | None = None) -> list[dict]:
        """Flat report rows of every stored evaluation (CSV-friendly).

        Each row carries the problem digest, genome key, the candidate
        summary (:meth:`~repro.core.candidate.CandidateEvaluation.summary`)
        and the write timestamp.  Materializes everything; prefer
        :meth:`export_rows_iter` on large stores.
        """
        return list(self.export_rows_iter(problem_digest=problem_digest))

    def export_rows_iter(
        self, problem_digest: str | None = None, chunk_size: int = 256
    ) -> Iterator[dict]:
        """Stream export rows in ``chunk_size`` batches (constant memory).

        Rows are ordered by problem digest, then accuracy (best first), then
        genome key — stable across layouts, so a sharded store exports the
        same sequence as a single file holding the same rows.
        """
        for digest, payload, created_at in self._iter_payload_rows(problem_digest, chunk_size):
            record = {"problem_digest": digest, "created_at": created_at}
            record.update(loads(payload).summary())
            yield record

    def _iter_payload_rows(
        self, problem_digest: str | None, chunk_size: int
    ) -> Iterator[tuple]:
        with self._lock:
            try:
                if problem_digest is None:
                    cursor = self._connection.execute(
                        "SELECT problem_digest, payload, created_at FROM evaluations "
                        "ORDER BY problem_digest, accuracy DESC, genome_key"
                    )
                else:
                    cursor = self._connection.execute(
                        "SELECT problem_digest, payload, created_at FROM evaluations "
                        "WHERE problem_digest = ? "
                        "ORDER BY accuracy DESC, genome_key",
                        (str(problem_digest),),
                    )
            except sqlite3.Error as exc:
                raise StoreError(f"cannot read evaluation store {self.path}: {exc}") from exc
        while True:
            with self._lock:
                try:
                    chunk = cursor.fetchmany(max(int(chunk_size), 1))
                except sqlite3.Error as exc:
                    raise StoreError(
                        f"cannot read evaluation store {self.path}: {exc}"
                    ) from exc
            if not chunk:
                return
            yield from chunk

    def iter_raw_rows(self, chunk_size: int = 256) -> Iterator[RawRow]:
        """Every stored row in raw column form (for migration/resharding)."""
        with self._lock:
            try:
                cursor = self._connection.execute(
                    "SELECT problem_digest, genome_key, accuracy, "
                    "       fpga_outputs_per_second, evaluation_seconds, "
                    "       created_at, payload "
                    "FROM evaluations ORDER BY problem_digest, genome_key"
                )
            except sqlite3.Error as exc:
                raise StoreError(f"cannot read evaluation store {self.path}: {exc}") from exc
        while True:
            with self._lock:
                try:
                    chunk = cursor.fetchmany(max(int(chunk_size), 1))
                except sqlite3.Error as exc:
                    raise StoreError(
                        f"cannot read evaluation store {self.path}: {exc}"
                    ) from exc
            if not chunk:
                return
            yield from chunk

    # ----------------------------------------------------------- pruning
    def prune(
        self,
        keep_best: int | None = None,
        older_than_seconds: float | None = None,
        problem_digest: str | None = None,
    ) -> int:
        """Delete rows to keep the store small; returns rows deleted."""
        if self.readonly:
            raise StoreError(f"evaluation store {self.path} is read-only")
        if keep_best is None and older_than_seconds is None:
            raise StoreError("prune needs keep_best and/or older_than_seconds")
        conditions: list[str] = []
        params: list = []
        if problem_digest is not None:
            conditions.append("problem_digest = ?")
            params.append(str(problem_digest))
        if older_than_seconds is not None:
            conditions.append("created_at < ?")
            params.append(time.time() - float(older_than_seconds))
        if keep_best is not None:
            if keep_best < 0:
                raise StoreError(f"keep_best must be >= 0, got {keep_best}")
            conditions.append(
                "(problem_digest, genome_key) NOT IN ("
                " SELECT problem_digest, genome_key FROM ("
                "   SELECT problem_digest, genome_key,"
                "          ROW_NUMBER() OVER ("
                "            PARTITION BY problem_digest "
                "            ORDER BY accuracy DESC, genome_key) AS rank "
                "   FROM evaluations) WHERE rank <= ?)"
            )
            params.append(int(keep_best))
        statement = "DELETE FROM evaluations WHERE " + " AND ".join(conditions)
        with self._lock:
            try:
                with self._connection:
                    cursor = self._connection.execute(statement, params)
            except sqlite3.Error as exc:
                raise StoreError(f"cannot prune evaluation store {self.path}: {exc}") from exc
        return int(cursor.rowcount)

    # ------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Whole-store summary: schema, row counts, problems, on-disk size.

        ``size_bytes`` counts the main database file *plus* the ``-wal`` /
        ``-shm`` sidecars WAL mode creates, so a store mid-write reports its
        true disk footprint.
        """
        problems = self.problems()
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "readonly": self.readonly,
            "shards": 1,
            "evaluations": sum(p["evaluations"] for p in problems),
            "problems": len(problems),
            "size_bytes": on_disk_bytes(self.path),
            "stored_eval_seconds": sum(p["stored_eval_seconds"] for p in problems),
        }

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            try:
                self._connection.close()
            except sqlite3.Error:  # pragma: no cover - close never matters twice
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "ro" if self.readonly else "rw"
        return f"SQLiteRepository({self.path!r}, {mode})"
