"""Canonical digests identifying *what* an evaluation was computed for.

A stored evaluation is only reusable when everything that shaped its result
matches the current run: the genome itself, the exact dataset it was trained
on, the evaluation protocol and training budget, the target devices and the
master's base seed.  Two digests capture this:

* :func:`dataset_fingerprint` — a content hash over the dataset's actual
  arrays (not just its name), so regenerating a synthetic dataset with a
  different seed or scale produces a different fingerprint.
* :func:`problem_digest` — a hash over the dataset fingerprint plus every
  :class:`~repro.core.config.ECADConfig` field that influences a *single*
  candidate evaluation (devices, protocol, training budget, seed), and the
  optimization targets.  Objectives/constraints do not change what one
  evaluation computes, but they namespace the store deliberately: warm-start
  ranks a problem's rows, and "best stored candidate" is only meaningful
  among runs optimizing the same thing.  Search-shape fields (population
  size, evaluation budget, strategy, parallelism) are excluded: they change
  which candidates get evaluated, never what one evaluation returns, so runs
  with different budgets share one store namespace.

The store keys every row on ``(problem_digest, genome_key)``; warm-start
pulls the best rows for the current problem digest.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from ..core.config import ECADConfig
from ..datasets.base import Dataset

__all__ = ["dataset_fingerprint", "problem_digest"]


def _array_digest(array: np.ndarray | None) -> str:
    """Stable content hash of one array (empty string when absent)."""
    if array is None:
        return ""
    contiguous = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(contiguous.dtype).encode())
    digest.update(str(contiguous.shape).encode())
    digest.update(contiguous.tobytes())
    return digest.hexdigest()


def dataset_fingerprint(dataset: Dataset) -> str:
    """Content-addressed identity of one dataset.

    Parameters
    ----------
    dataset:
        The dataset to fingerprint; both the training arrays and the optional
        pre-split test partition contribute.

    Returns
    -------
    str
        Hex SHA-256 digest.  Identical data produces identical fingerprints
        regardless of how the dataset object was constructed; any change to
        samples, labels or the test split changes the fingerprint.
    """
    payload = {
        "name": dataset.name,
        "features": _array_digest(dataset.features),
        "labels": _array_digest(dataset.labels),
        "test_features": _array_digest(dataset.test_features),
        "test_labels": _array_digest(dataset.test_labels),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def problem_digest(config: ECADConfig, dataset: Dataset) -> str:
    """Digest of everything that determines a single evaluation's result.

    Parameters
    ----------
    config:
        The run configuration.  The evaluation-relevant fields participate —
        the resolved FPGA/GPU devices, evaluation protocol and fold count,
        training epochs/batch size, the base seed — plus the optimization
        targets (objectives + constraints), which namespace the store so
        warm-start only ranks rows from runs optimizing the same thing.
    dataset:
        The dataset the candidates are trained on (content-fingerprinted).

    Returns
    -------
    str
        Hex SHA-256 digest.  Two runs share stored evaluations exactly when
        their problem digests match.
    """
    fpga = config.hardware.fpga_device()
    gpu = config.hardware.gpu_device()
    payload = {
        "dataset": dataset_fingerprint(dataset),
        "evaluation_protocol": config.evaluation_protocol,
        "num_folds": config.num_folds,
        "training_epochs": config.training_epochs,
        "training_batch_size": config.training_batch_size,
        "seed": config.seed,
        "fpga": {
            "name": fpga.name,
            "dsp_count": fpga.dsp_count,
            "clock_mhz": fpga.clock_mhz,
            "ddr_banks": fpga.ddr_banks,
        },
        "gpu": gpu.name if gpu is not None else "",
        "objectives": [list(obj) for obj in config.optimization.objectives],
        "constraints": list(config.optimization.constraints),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
