"""N-way sharded evaluation storage: one SQLite file per digest bucket.

One SQLite file saturates around a single writer: every commit takes the
file's exclusive write lock, so N concurrent jobs (``ecad serve`` with
``--max-jobs N``, sweep cells under ``--backend processes``) serialize on
one fsync queue even when they evaluate *different* problems.
:class:`ShardedStore` routes every row to one of N shard files by
problem-digest prefix — all rows of a problem live in one shard, so

* point reads (``get``/``best``/``count(problem)``/per-problem exports)
  touch exactly one file,
* writers working on different problems land on different files and never
  contend (each shard keeps its own connection and writer lock),
* whole-store reads (``problems``/``stats``/``export_rows``/``prune``)
  fan out across the shards and aggregate.

On disk a sharded store is a *directory*::

    mystore.sqlite/
        layout.json        <- {"format": "ecad-sharded-store", "shards": 4}
        shard-000.sqlite   <- plain single-file evaluation stores
        shard-001.sqlite      (each with its own -wal/-shm sidecars)
        ...

The facade (:class:`~repro.store.store.EvaluationStore`) auto-detects the
directory layout, so every consumer — CLI, service, warm-start, surrogate —
opens sharded and single-file stores with the same ``path``.  Migrate an
existing single file with :func:`migrate_store` / ``ecad store migrate``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Iterator

from ..core.candidate import CandidateEvaluation
from ..core.errors import StoreError
from .repository import SCHEMA_VERSION, RawRow, SQLiteRepository

__all__ = ["LAYOUT_FILE", "MAX_SHARDS", "ShardedStore", "shard_index", "migrate_store"]

#: Name of the layout descriptor inside a sharded-store directory.
LAYOUT_FILE = "layout.json"

#: Upper bound on the shard count — beyond this, file-handle and fan-out
#: costs dominate any lock-contention win.
MAX_SHARDS = 1024

_LAYOUT_FORMAT = "ecad-sharded-store"


def shard_index(problem_digest: str, shards: int) -> int:
    """The shard bucket one problem's rows live in.

    Routing reads the leading hex prefix of the problem digest (digests are
    hex SHA-256, so the prefix is uniform); non-hex digests (tests, ad-hoc
    namespaces) fall back to hashing the whole string.  The mapping depends
    only on ``(problem_digest, shards)`` — every process sharing a store
    computes the same bucket.
    """
    digest = str(problem_digest)
    try:
        value = int(digest[:8], 16)
    except ValueError:
        value = int.from_bytes(hashlib.sha256(digest.encode()).digest()[:4], "big")
    return value % int(shards)


def _shard_file(index: int) -> str:
    return f"shard-{index:03d}.sqlite"


class ShardedStore:
    """Evaluation repository spread over N single-file SQLite shards.

    Parameters
    ----------
    path:
        Directory of the sharded layout.  An existing directory must hold a
        ``layout.json`` descriptor (written when the layout was created);
        a missing path is created with ``shards`` fresh shard files.
    shards:
        Number of shard files.  ``0`` means "whatever the existing layout
        records"; a non-zero count that contradicts an existing layout is an
        error (routing depends on it — silently reopening with a different
        count would misroute every row).
    readonly / timeout_seconds:
        Passed through to every shard (see :class:`SQLiteRepository`).
    """

    def __init__(
        self,
        path: str | Path,
        shards: int = 0,
        readonly: bool = False,
        timeout_seconds: float = 30.0,
    ) -> None:
        self.path = str(path)
        self.readonly = bool(readonly)
        directory = Path(self.path)
        shards = int(shards)
        if shards < 0 or shards > MAX_SHARDS:
            raise StoreError(f"shards must be in [1, {MAX_SHARDS}], got {shards}")
        if directory.exists():
            if not directory.is_dir():
                raise StoreError(
                    f"{self.path} is a single-file store, not a sharded layout; "
                    f"migrate it first with 'ecad store migrate --store {self.path} "
                    f"--shards N'"
                )
            recorded = self._read_layout(directory)
            if shards not in (0, recorded):
                raise StoreError(
                    f"sharded store {self.path} has {recorded} shard(s) but "
                    f"{shards} were requested; rows are routed by shard count, "
                    f"so reshard with 'ecad store migrate' instead"
                )
            shards = recorded
        else:
            if self.readonly:
                raise StoreError(f"read-only store not found: {self.path}")
            if shards == 0:
                raise StoreError(
                    f"cannot create sharded store {self.path} without a shard count"
                )
            directory.mkdir(parents=True, exist_ok=True)
            (directory / LAYOUT_FILE).write_text(
                json.dumps(
                    {
                        "format": _LAYOUT_FORMAT,
                        "schema_version": SCHEMA_VERSION,
                        "shards": shards,
                    },
                    indent=2,
                )
                + "\n"
            )
        self.num_shards = shards
        self._shards: list[SQLiteRepository] = []
        try:
            for index in range(shards):
                self._shards.append(
                    SQLiteRepository(
                        directory / _shard_file(index),
                        readonly=readonly,
                        timeout_seconds=timeout_seconds,
                    )
                )
        except StoreError:
            self.close()
            raise

    @staticmethod
    def _read_layout(directory: Path) -> int:
        layout_path = directory / LAYOUT_FILE
        if not layout_path.exists():
            raise StoreError(
                f"{directory} is a directory but not a sharded evaluation store "
                f"(no {LAYOUT_FILE})"
            )
        try:
            layout = json.loads(layout_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"unreadable shard layout {layout_path}: {exc}") from exc
        if layout.get("format") != _LAYOUT_FORMAT:
            raise StoreError(
                f"{layout_path} does not describe a sharded evaluation store "
                f"(format {layout.get('format')!r})"
            )
        try:
            shards = int(layout["shards"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"{layout_path} has no usable shard count") from exc
        if not (1 <= shards <= MAX_SHARDS):
            raise StoreError(f"{layout_path} records an invalid shard count {shards}")
        return shards

    # ------------------------------------------------------------ routing
    def shard_index(self, problem_digest: str) -> int:
        """The shard bucket for one problem digest."""
        return shard_index(problem_digest, self.num_shards)

    def shard_for(self, problem_digest: str) -> SQLiteRepository:
        """The shard repository holding one problem's rows."""
        return self._shards[self.shard_index(problem_digest)]

    @property
    def shard_paths(self) -> list[str]:
        """The shard database files, in bucket order."""
        return [shard.path for shard in self._shards]

    # ------------------------------------------------------------- writes
    def put_many(
        self, problem_digest: str, evaluations: Iterable[CandidateEvaluation]
    ) -> int:
        """Persist a batch into the problem's shard (one transaction)."""
        return self.shard_for(problem_digest).put_many(problem_digest, evaluations)

    def put_raw_rows(self, rows: Iterable[RawRow]) -> int:
        """Insert raw rows, each routed to its problem's shard."""
        buckets: dict[int, list[RawRow]] = {}
        for row in rows:
            buckets.setdefault(self.shard_index(row[0]), []).append(row)
        return sum(
            self._shards[index].put_raw_rows(bucket) for index, bucket in buckets.items()
        )

    # -------------------------------------------------------------- reads
    def get(self, problem_digest: str, genome_key: str) -> CandidateEvaluation | None:
        """Point read from the problem's shard."""
        return self.shard_for(problem_digest).get(problem_digest, genome_key)

    def best(self, problem_digest: str, limit: int) -> list[CandidateEvaluation]:
        """Best stored candidates of one problem (single-shard read)."""
        return self.shard_for(problem_digest).best(problem_digest, limit)

    def count(self, problem_digest: str | None = None) -> int:
        """Row count — one shard for a given problem, fan-out otherwise."""
        if problem_digest is not None:
            return self.shard_for(problem_digest).count(problem_digest)
        return sum(shard.count() for shard in self._shards)

    def problems(self) -> list[dict]:
        """Per-problem summaries aggregated across every shard.

        Each problem lives wholly in one shard, so this is a concatenation
        (no cross-shard merging of one problem's numbers), re-sorted to the
        single-file order: most rows first, digest as the tiebreak.
        """
        merged = [entry for shard in self._shards for entry in shard.problems()]
        merged.sort(key=lambda entry: (-entry["evaluations"], entry["problem_digest"]))
        return merged

    def export_rows(self, problem_digest: str | None = None) -> list[dict]:
        """Flat report rows across every shard (see :meth:`export_rows_iter`)."""
        return list(self.export_rows_iter(problem_digest=problem_digest))

    def export_rows_iter(
        self, problem_digest: str | None = None, chunk_size: int = 256
    ) -> Iterator[dict]:
        """Stream export rows in the same global order as a single file.

        Problems are visited in digest order and each problem streams from
        its own shard, reproducing the single-file ordering (problem digest,
        then accuracy descending, then genome key) without materializing the
        store.
        """
        if problem_digest is not None:
            yield from self.shard_for(problem_digest).export_rows_iter(
                problem_digest=problem_digest, chunk_size=chunk_size
            )
            return
        digests = sorted(entry["problem_digest"] for entry in self.problems())
        for digest in digests:
            yield from self.shard_for(digest).export_rows_iter(
                problem_digest=digest, chunk_size=chunk_size
            )

    def iter_raw_rows(self, chunk_size: int = 256) -> Iterator[RawRow]:
        """Every stored row in raw column form, shard by shard."""
        for shard in self._shards:
            yield from shard.iter_raw_rows(chunk_size=chunk_size)

    # ----------------------------------------------------------- pruning
    def prune(
        self,
        keep_best: int | None = None,
        older_than_seconds: float | None = None,
        problem_digest: str | None = None,
    ) -> int:
        """Prune one shard (given a problem) or every shard (fan-out)."""
        if self.readonly:
            raise StoreError(f"evaluation store {self.path} is read-only")
        if keep_best is None and older_than_seconds is None:
            raise StoreError("prune needs keep_best and/or older_than_seconds")
        if problem_digest is not None:
            return self.shard_for(problem_digest).prune(
                keep_best=keep_best,
                older_than_seconds=older_than_seconds,
                problem_digest=problem_digest,
            )
        return sum(
            shard.prune(keep_best=keep_best, older_than_seconds=older_than_seconds)
            for shard in self._shards
        )

    # ------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Aggregate summary: rows/problems/eval-seconds summed, sizes too.

        ``size_bytes`` sums every shard's main file *and* its ``-wal`` /
        ``-shm`` sidecars (plus the layout descriptor).
        """
        problems = self.problems()
        size_bytes = 0
        layout_path = Path(self.path) / LAYOUT_FILE
        if layout_path.exists():
            size_bytes += layout_path.stat().st_size
        size_bytes += sum(shard.stats()["size_bytes"] for shard in self._shards)
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "readonly": self.readonly,
            "shards": self.num_shards,
            "evaluations": sum(p["evaluations"] for p in problems),
            "problems": len(problems),
            "size_bytes": size_bytes,
            "stored_eval_seconds": sum(p["stored_eval_seconds"] for p in problems),
        }

    # ---------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close every shard (idempotent)."""
        for shard in self._shards:
            shard.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "ro" if self.readonly else "rw"
        return f"ShardedStore({self.path!r}, shards={self.num_shards}, {mode})"


# ------------------------------------------------------------------ migration
def migrate_store(
    source_path: str | Path,
    shards: int,
    output_path: str | Path | None = None,
    dry_run: bool = False,
    chunk_size: int = 512,
) -> dict:
    """Copy an existing store into an N-shard layout (one-shot migration).

    Works from a single file *or* an existing sharded directory (resharding).
    Without ``output_path`` the migration is in place: the new layout is
    built next to the source, row counts are verified, and only then is the
    source atomically swapped aside to ``<path>.pre-shard.bak`` — a crash
    mid-migration leaves the original store untouched.

    Parameters
    ----------
    source_path:
        Existing store (file or sharded directory); opened read-only.
    shards:
        Shard count of the target layout.
    output_path:
        Target directory for the new layout; ``None`` migrates in place.
    dry_run:
        Only report what would happen (row counts, per-shard distribution).

    Returns
    -------
    dict
        Migration report: source/target paths, row and problem counts, the
        planned per-shard row distribution, and (in place) the backup path.

    Raises
    ------
    StoreError
        When the source is missing/corrupt, the target already exists, or
        the copied row count does not match the source.
    """
    from .store import EvaluationStore

    shards = int(shards)
    if not (1 <= shards <= MAX_SHARDS):
        raise StoreError(f"shards must be in [1, {MAX_SHARDS}], got {shards}")
    source_path = str(source_path)
    in_place = output_path is None
    target_path = Path(str(source_path) + ".migrating" if in_place else str(output_path))
    if target_path.exists():
        raise StoreError(
            f"migration target {target_path} already exists; remove it or pick "
            f"another --output"
        )
    source = EvaluationStore(source_path, readonly=True)
    try:
        problems = source.problems()
        distribution = [0] * shards
        for entry in problems:
            distribution[shard_index(entry["problem_digest"], shards)] += entry["evaluations"]
        report = {
            "source": source_path,
            "target": source_path if in_place else str(target_path),
            "shards": shards,
            "rows": source.count(),
            "problems": len(problems),
            "rows_per_shard": distribution,
            "dry_run": bool(dry_run),
        }
        if dry_run:
            return report
        target = ShardedStore(target_path, shards=shards)
        try:
            batch: list[RawRow] = []
            for row in source.iter_raw_rows(chunk_size=chunk_size):
                batch.append(row)
                if len(batch) >= chunk_size:
                    target.put_raw_rows(batch)
                    batch = []
            if batch:
                target.put_raw_rows(batch)
            copied = target.count()
        finally:
            target.close()
        if copied != report["rows"]:
            raise StoreError(
                f"migration copied {copied} of {report['rows']} rows from "
                f"{source_path}; the original store is untouched at {source_path}"
            )
    finally:
        source.close()
    if in_place:
        backup = source_path + ".pre-shard.bak"
        if Path(backup).exists():
            raise StoreError(
                f"backup path {backup} already exists; remove it and retry"
            )
        os.replace(source_path, backup)
        # A cleanly closed WAL database checkpoints its sidecars away, but a
        # crashed writer can leave them; keep them with the backup.
        for suffix in ("-wal", "-shm"):
            sidecar = Path(source_path + suffix)
            if sidecar.exists():
                os.replace(sidecar, backup + suffix)
        os.replace(target_path, source_path)
        report["backup"] = backup
    return report
