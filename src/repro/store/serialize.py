"""Lossless JSON round-trip for :class:`~repro.core.candidate.CandidateEvaluation`.

The store persists the *full* merged worker report for each candidate — the
genome, accuracy, FPGA/GPU hardware metrics, the synthesis report and the
workers' free-form extras — so a warm run can serve evaluations that are
indistinguishable from freshly computed ones.  Floats survive the round-trip
exactly (Python's ``json`` emits ``repr``-precision floats), which is what
makes a store-served candidate bit-identical to the original evaluation.
"""

from __future__ import annotations

import json

from ..core.candidate import CandidateEvaluation
from ..core.errors import StoreError
from ..core.genome import CoDesignGenome
from ..hardware.results import HardwareMetrics
from ..hardware.synthesis import SynthesisReport

__all__ = ["evaluation_to_payload", "evaluation_from_payload", "dumps", "loads"]


def _metrics_to_dict(metrics: HardwareMetrics | None) -> dict | None:
    if metrics is None:
        return None
    data = metrics.to_dict()
    data["extras"] = dict(metrics.extras)
    return data


def _metrics_from_dict(data: dict | None) -> HardwareMetrics | None:
    if data is None:
        return None
    extras = data.get("extras") or {}
    return HardwareMetrics.from_dict(data, extras=extras)


def evaluation_to_payload(evaluation: CandidateEvaluation) -> dict:
    """JSON-serializable form of one evaluation.

    Parameters
    ----------
    evaluation:
        The record to persist.  The transient ``from_cache`` flag is not
        stored; the store re-flags rows it serves.

    Returns
    -------
    dict
        A plain dictionary safe for ``json.dumps``.
    """
    return {
        "genome": evaluation.genome.to_dict(),
        "accuracy": evaluation.accuracy,
        "accuracy_std": evaluation.accuracy_std,
        "parameter_count": evaluation.parameter_count,
        "fpga_metrics": _metrics_to_dict(evaluation.fpga_metrics),
        "gpu_metrics": _metrics_to_dict(evaluation.gpu_metrics),
        "synthesis": evaluation.synthesis.to_dict() if evaluation.synthesis else None,
        "train_seconds": evaluation.train_seconds,
        "evaluation_seconds": evaluation.evaluation_seconds,
        "error": evaluation.error,
        "extras": dict(evaluation.extras),
    }


def evaluation_from_payload(data: dict) -> CandidateEvaluation:
    """Inverse of :func:`evaluation_to_payload`.

    Raises
    ------
    StoreError
        When the payload is structurally invalid (e.g. written by a corrupt
        store or an incompatible schema).
    """
    try:
        synthesis_data = data.get("synthesis")
        return CandidateEvaluation(
            genome=CoDesignGenome.from_dict(data["genome"]),
            accuracy=float(data["accuracy"]),
            accuracy_std=float(data.get("accuracy_std", 0.0)),
            parameter_count=int(data.get("parameter_count", 0)),
            fpga_metrics=_metrics_from_dict(data.get("fpga_metrics")),
            gpu_metrics=_metrics_from_dict(data.get("gpu_metrics")),
            synthesis=SynthesisReport.from_dict(synthesis_data) if synthesis_data else None,
            train_seconds=float(data.get("train_seconds", 0.0)),
            evaluation_seconds=float(data.get("evaluation_seconds", 0.0)),
            error=str(data.get("error", "")),
            extras=dict(data.get("extras", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StoreError(f"malformed stored evaluation payload: {exc!r}") from exc


def dumps(evaluation: CandidateEvaluation) -> str:
    """Serialize one evaluation to its canonical JSON payload string."""
    # default=str keeps exotic worker extras (numpy scalars, paths) from
    # breaking persistence; the core fields are all plain JSON types.
    return json.dumps(evaluation_to_payload(evaluation), sort_keys=True, default=str)


def loads(payload: str) -> CandidateEvaluation:
    """Deserialize one evaluation from its JSON payload string."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StoreError(f"stored evaluation payload is not valid JSON: {exc}") from exc
    return evaluation_from_payload(data)
