"""Execution of experiment grids with checkpoint/resume.

:class:`ExperimentRunner` turns an
:class:`~repro.experiment.spec.ExperimentSpec` into concrete
:class:`~repro.core.search.CoDesignSearch` runs: each grid cell generates a
dataset and an :class:`~repro.core.config.ECADConfig` template, runs the
search through the asynchronous backend stack, and writes a
:class:`~repro.experiment.artifacts.RunArtifact` JSON under
``<output-dir>/runs/`` the moment it finishes.  Because artifacts are
per-cell and keyed on stable run ids, an interrupted grid resumes exactly
where it stopped — completed cells are skipped, failed or stale ones (the
spec's per-run settings changed) are re-run.

Whole cells can also be kept in flight concurrently (``run_parallelism``),
fanned out through the same futures-based
:class:`~repro.workers.backends.ExecutionBackend` machinery the master uses
for candidate evaluations.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable

from ..core.config import ECADConfig, StoreConfig
from ..core.errors import ConfigurationError
from ..core.search import CoDesignSearch
from ..datasets.registry import load_dataset
from ..workers.backends import resolve_backend
from .artifacts import ExperimentReport, RunArtifact
from .spec import ExperimentSpec, RunCell, objective_config_from_spec, split_objective_spec

__all__ = ["StopExperiment", "ExperimentRunner", "resume_experiment"]


class StopExperiment(Exception):
    """Raised to interrupt a running grid between (or inside) cells.

    The runner lets this exception propagate instead of recording a failed
    artifact, so every cell that already finished keeps its checkpoint and a
    later ``run(resume=True)`` picks up exactly where the grid stopped.  The
    ``ecad serve`` job runtime raises it for job cancellation and graceful
    server shutdown.
    """


class ExperimentRunner:
    """Runs (and resumes) every cell of an experiment grid.

    Parameters
    ----------
    spec:
        The declarative experiment grid.
    output_dir:
        Where artifacts live; defaults to the spec's ``output_dir`` or
        ``experiments/<name>``.
    printer:
        Optional progress callable (e.g. ``print``); ``None`` keeps the
        runner silent.
    store:
        Externally owned :class:`~repro.store.EvaluationStore` shared by
        every cell (the search never closes it).  ``None`` lets each cell
        open its own store from its configuration, as before.
    backend:
        Externally owned :class:`~repro.workers.backends.ExecutionBackend`
        instance shared by every cell's master; ``None`` resolves a fresh
        backend per cell from the spec's ``backend`` name.
    callback_factory:
        ``(cell, config) -> list[Callback]`` hook: extra engine callbacks
        installed on each cell's search (live frontier streaming,
        cancellation checks, ...).
    on_cell_complete:
        ``(cell, artifact) -> None`` hook fired right after a cell's
        artifact has been written to disk — the per-stage checkpoint signal
        the job service records progress from.
    stop:
        ``() -> bool`` poll; when it returns True the runner raises
        :class:`StopExperiment` before starting the next cell.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        output_dir: str | Path | None = None,
        printer: Callable[[str], None] | None = None,
        store=None,
        backend=None,
        callback_factory: Callable[[RunCell, ECADConfig], list] | None = None,
        on_cell_complete: Callable[[RunCell, RunArtifact], None] | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> None:
        self.spec = spec
        self.output_dir = Path(output_dir or spec.output_dir or Path("experiments") / spec.name)
        self.runs_dir = self.output_dir / "runs"
        self._printer = printer
        self._digest = spec.cell_digest()
        self._store = store
        self._backend = backend
        self._callback_factory = callback_factory
        self._on_cell_complete = on_cell_complete
        self._stop = stop

    def _stop_requested(self) -> bool:
        return self._stop is not None and bool(self._stop())

    # ----------------------------------------------------------- checkpoints
    def artifact_path(self, cell: RunCell) -> Path:
        """Where the artifact of one cell is stored."""
        return self.runs_dir / f"{cell.run_id}.json"

    def saved_artifact(self, cell: RunCell) -> RunArtifact | None:
        """The reusable artifact of a cell, or None when it must (re-)run.

        An artifact is reusable when it exists, parses, completed
        successfully, and was produced under the same per-run settings
        (matching cell digest).
        """
        path = self.artifact_path(cell)
        if not path.exists():
            return None
        try:
            artifact = RunArtifact.load(path)
        except ConfigurationError:
            return None
        if not artifact.completed or artifact.cell_digest != self._digest:
            return None
        return artifact

    def plan(self, resume: bool = True) -> list[dict]:
        """Resume-aware view of the grid: one row per cell with its status.

        ``resume=False`` mirrors ``run(resume=False)``: every cell is
        reported pending because saved artifacts would be ignored.
        """
        rows = []
        for cell in self.spec.cells():
            saved = self.saved_artifact(cell) if resume else None
            row = cell.to_dict()
            row["status"] = "completed" if saved is not None else "pending"
            rows.append(row)
        return rows

    # ------------------------------------------------------------- execution
    def run(self, resume: bool = True) -> ExperimentReport:
        """Execute the grid and return the aggregate report.

        With ``resume`` (the default) cells whose artifact already exists
        are skipped; ``resume=False`` re-runs everything.  The current spec
        and the aggregate report (JSON + CSV) are written to the output
        directory either way.
        """
        self.output_dir.mkdir(parents=True, exist_ok=True)
        self.spec.save(self.output_dir / "spec.json")

        cells = self.spec.cells()
        results: dict[str, RunArtifact] = {}
        pending: list[RunCell] = []
        for cell in cells:
            saved = self.saved_artifact(cell) if resume else None
            if saved is not None:
                results[cell.run_id] = saved
                self._log(f"[{cell.run_id}] completed artifact found, skipping")
            else:
                pending.append(cell)

        if pending:
            self._log(
                f"experiment {self.spec.name!r}: running {len(pending)} of "
                f"{len(cells)} cells ({len(results)} resumed)"
            )
        if self.spec.run_parallelism > 1 and len(pending) > 1:
            self._run_concurrent(pending, results)
        else:
            for cell in pending:
                if self._stop_requested():
                    raise StopExperiment(
                        f"experiment {self.spec.name!r} stopped before cell {cell.run_id}"
                    )
                self._finish_cell(cell, self._execute_cell(cell), results)

        report = ExperimentReport(
            spec=self.spec, artifacts=[results[cell.run_id] for cell in cells]
        )
        json_path, csv_path = report.save(self.output_dir)
        self._log(f"wrote {json_path} and {csv_path}")
        return report

    def _run_concurrent(self, pending: list[RunCell], results: dict[str, RunArtifact]) -> None:
        """Fan whole cells through a thread-pool execution backend."""
        if self._stop_requested():
            raise StopExperiment(f"experiment {self.spec.name!r} stopped before dispatch")
        backend = resolve_backend("threads", max_workers=self.spec.run_parallelism)
        try:
            futures = [(backend.submit(self._execute_cell, cell), cell) for cell in pending]
            cell_by_future = {id(future): cell for future, cell in futures}
            for done in backend.as_completed([future for future, _ in futures]):
                self._finish_cell(cell_by_future[id(done)], done.result(), results)
        finally:
            backend.shutdown()

    def _finish_cell(
        self, cell: RunCell, artifact: RunArtifact, results: dict[str, RunArtifact]
    ) -> None:
        artifact.save(self.artifact_path(cell))
        results[cell.run_id] = artifact
        if self._on_cell_complete is not None:
            self._on_cell_complete(cell, artifact)
        if artifact.completed:
            self._log(
                f"[{cell.run_id}] completed: best accuracy {artifact.best_accuracy:.4f} "
                f"in {artifact.wall_clock_seconds:.1f}s"
            )
        else:
            self._log(f"[{cell.run_id}] FAILED: {artifact.error}")

    def _execute_cell(self, cell: RunCell) -> RunArtifact:
        """Run one grid cell end to end; never raises (except to stop the grid)."""
        start = time.perf_counter()
        try:
            dataset = load_dataset(cell.dataset, seed=self.spec.data_seed, scale=self.spec.scale)
            config = self.build_config(cell, dataset)
            callbacks = (
                self._callback_factory(cell, config)
                if self._callback_factory is not None
                else None
            )
            search = CoDesignSearch(
                dataset,
                config=config,
                callbacks=callbacks,
                backend=self._backend,
                store=self._store,
            )
            try:
                result = search.run()
            finally:
                search.close()
            return RunArtifact.from_result(
                cell, result, time.perf_counter() - start, cell_digest=self._digest
            )
        except StopExperiment:
            # Deliberate interruption (job cancel, server shutdown): no failed
            # artifact — the cell stays pending and resumes on the next run.
            raise
        except Exception as exc:  # noqa: BLE001 - a failed cell must not kill the grid
            return RunArtifact.from_failure(
                cell, str(exc), time.perf_counter() - start, cell_digest=self._digest
            )

    def build_config(self, cell: RunCell, dataset) -> ECADConfig:
        """The concrete run configuration of one grid cell.

        A ``strategy:`` prefix on the cell's objective spec (e.g.
        ``"nsga2:codesign"``) overrides the spec-level default strategy, so
        frontier-mode and weighted-sum cells can share one grid.
        """
        cell_strategy, _ = split_objective_spec(cell.objective)
        config = ECADConfig.template_for_dataset(
            dataset,
            fpga=self.spec.fpga,
            gpu=self.spec.gpu,
            optimization=objective_config_from_spec(
                cell.objective, constraints=self.spec.constraints
            ),
            seed=cell.seed,
            backend=self.spec.backend,
            eval_parallelism=self.spec.eval_parallelism,
            strategy=cell_strategy or self.spec.strategy,
            store=StoreConfig(path=self.spec.store_path, warm_start=self.spec.warm_start),
        )
        if self.spec.overrides:
            config = config.with_overrides(self.spec.overrides)
        return config

    def _log(self, message: str) -> None:
        if self._printer is not None:
            self._printer(message)


def resume_experiment(
    output_dir: str | Path, printer: Callable[[str], None] | None = None
) -> ExperimentReport:
    """Resume the experiment checkpointed in ``output_dir``.

    Loads ``spec.json`` from the directory (written by a previous
    :meth:`ExperimentRunner.run`) and re-runs only the cells without a
    completed artifact.
    """
    output_dir = Path(output_dir)
    spec_path = output_dir / "spec.json"
    if not spec_path.exists():
        raise ConfigurationError(
            f"no experiment checkpoint found in {output_dir} (missing spec.json)"
        )
    spec = ExperimentSpec.load(spec_path)
    return ExperimentRunner(spec, output_dir=output_dir, printer=printer).run(resume=True)
