"""Declarative experiment layer: registries, grids, checkpointed runs.

This package is the public face of the "unified experiment API":

* :class:`~repro.registry.Registry` — the shared primitive behind the open
  dataset / execution-backend / device / objective / worker-type registries,
  so plugins extend any axis of the system by registration instead of
  forking library code.
* :class:`~repro.experiment.spec.ExperimentSpec` — a declarative grid
  (datasets × objectives × seeds) that round-trips through JSON like
  :class:`~repro.core.config.ECADConfig`.
* :class:`~repro.experiment.runner.ExperimentRunner` — executes the grid
  through the asynchronous backend stack, writes per-run
  :class:`~repro.experiment.artifacts.RunArtifact` checkpoints, and
  aggregates them into an :class:`~repro.experiment.artifacts.ExperimentReport`
  (JSON + CSV); interrupted grids resume where they stopped.
"""

from ..registry import Registry
from .artifacts import ExperimentReport, RunArtifact
from .runner import ExperimentRunner, StopExperiment, resume_experiment
from .spec import ExperimentSpec, RunCell, objective_config_from_spec

__all__ = [
    "Registry",
    "ExperimentSpec",
    "RunCell",
    "objective_config_from_spec",
    "RunArtifact",
    "ExperimentReport",
    "ExperimentRunner",
    "StopExperiment",
    "resume_experiment",
]
