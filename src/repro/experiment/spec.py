"""Declarative experiment specifications.

The paper's results are a *matrix* of searches — six datasets, two
optimization targets, several seeds and folds feeding Tables I–IV and
Figures 2–4 — yet a single :class:`~repro.core.config.ECADConfig` only
describes one run.  :class:`ExperimentSpec` is the grid in object form: a
list of dataset names × a list of objective specs × a list of seeds, plus
the shared run settings (devices, execution backend, dotted-key
configuration overrides).  Like ``ECADConfig`` it round-trips through JSON,
so a whole experiment is one declarative file executed by
:class:`~repro.experiment.runner.ExperimentRunner`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

from ..core.config import OptimizationTargetConfig
from ..core.errors import ConfigurationError
from ..core.fitness import objective_default_maximize
from ..registry import normalize_key

__all__ = [
    "RunCell",
    "ExperimentSpec",
    "split_objective_spec",
    "objective_config_from_spec",
    "objective_slug",
]


def split_objective_spec(spec: str) -> tuple[str | None, str]:
    """Split an optional ``strategy:`` prefix off one objective-grid entry.

    ``"nsga2:codesign"`` → ``("nsga2", "codesign")`` — a *frontier-mode*
    cell that runs the NSGA-II strategy; a bare ``"codesign"`` →
    ``(None, "codesign")`` and follows the spec-level default strategy.
    """
    head, separator, tail = str(spec).partition(":")
    if separator and head.strip() and tail.strip():
        return normalize_key(head), tail.strip()
    return None, str(spec)


def objective_config_from_spec(
    spec: str, constraints: tuple[str, ...] = ()
) -> OptimizationTargetConfig:
    """Build the optimization-target section for one objective-grid entry.

    ``"accuracy"`` and ``"codesign"`` map to the paper's two named searches
    (Tables I/II and Table IV respectively); any other entry is one or more
    registered objective names joined with ``+`` (e.g.
    ``"accuracy+fpga_latency"``), each following the direction declared at
    registration time (``maximize_by_default``).  A ``strategy:`` prefix
    (see :func:`split_objective_spec`) is ignored here; ``constraints`` are
    attached verbatim.
    """
    _, spec = split_objective_spec(spec)
    key = normalize_key(spec)
    if key == "accuracy":
        base = OptimizationTargetConfig.accuracy_only()
    elif key == "codesign":
        base = OptimizationTargetConfig.accuracy_and_throughput()
    else:
        names = [part for part in key.split("+") if part]
        if not names:
            raise ConfigurationError(f"objective spec {spec!r} is empty")
        base = OptimizationTargetConfig(
            objectives=tuple(
                (name, 1.0, objective_default_maximize(name)) for name in names
            )
        )
    if constraints:
        base = base.with_constraints(constraints)
    return base


def objective_slug(spec: str) -> str:
    """Filesystem-safe identifier of one objective-grid entry."""
    return normalize_key(spec).replace(":", "-").replace("+", "-")


@dataclass(frozen=True)
class RunCell:
    """One cell of the experiment grid: dataset × objective × seed.

    ``run_id`` is a stable, filesystem-safe identifier derived from the cell
    coordinates; checkpoint/resume keys per-run artifacts on it.
    """

    dataset: str
    objective: str
    seed: int
    index: int

    @property
    def run_id(self) -> str:
        return f"{normalize_key(self.dataset)}__{objective_slug(self.objective)}__s{self.seed}"

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "dataset": self.dataset,
            "objective": self.objective,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative grid of co-design searches.

    Attributes
    ----------
    name:
        Experiment identifier; the default output directory is derived from
        it.
    datasets:
        Registered dataset names forming the first grid axis.
    objectives:
        Objective specs forming the second axis (see
        :func:`objective_config_from_spec`).  An entry may carry a
        ``strategy:`` prefix (e.g. ``"nsga2:codesign"``) to run that cell
        under a specific search strategy — a *frontier-mode* cell.
    seeds:
        Search seeds forming the third axis.
    strategy:
        Default search strategy for cells without a ``strategy:`` prefix
        (``"evolutionary"``, ``"nsga2"`` or ``"random"``).
    constraints:
        Feasibility constraint expressions (``"dsp_usage<=512"``) applied to
        every run's optimization targets.
    scale / data_seed:
        Synthetic-dataset size scale and generation seed shared by all runs.
    fpga / gpu:
        Device-catalogue names shared by all runs.
    backend / eval_parallelism:
        Execution backend and in-flight candidate budget for each search.
    run_parallelism:
        How many whole grid cells are kept in flight at once by the runner
        (fanned through the execution-backend stack; 1 = sequential).
    store_path:
        Persistent evaluation-store file shared by every cell of the grid;
        empty disables the store.  Repeating a sweep against a warm store
        answers previously evaluated candidates without re-training them.
    warm_start:
        Seed each cell's initial population with up to this many of the best
        stored candidates for that cell's problem digest (0 disables).
    overrides:
        Dotted-key configuration overrides applied to every generated
        :class:`~repro.core.config.ECADConfig` (e.g.
        ``{"population_size": 8, "nna.max_layers": 3}``).
    output_dir:
        Default artifact directory; empty derives ``experiments/<name>``.
    """

    name: str
    datasets: tuple[str, ...]
    objectives: tuple[str, ...] = ("codesign",)
    seeds: tuple[int, ...] = (0,)
    scale: float = 0.1
    data_seed: int = 0
    fpga: str = "arria10"
    gpu: str = "titan_x"
    backend: str = "serial"
    eval_parallelism: int = 1
    run_parallelism: int = 1
    strategy: str = "evolutionary"
    constraints: tuple[str, ...] = ()
    store_path: str = ""
    warm_start: int = 0
    overrides: dict = field(default_factory=dict)
    output_dir: str = ""

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise ConfigurationError("experiment name must not be empty")
        if not self.datasets:
            raise ConfigurationError("experiment needs at least one dataset")
        if not self.objectives:
            raise ConfigurationError("experiment needs at least one objective spec")
        if not self.seeds:
            raise ConfigurationError("experiment needs at least one seed")
        # Imported lazily: repro.core.strategy is registry-only but keep the
        # import pattern consistent with the backend check below.
        from ..core.strategy import STRATEGIES, available_strategies

        if self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown search strategy {self.strategy!r}; "
                f"registered: {', '.join(available_strategies())}"
            )
        for spec in self.objectives:
            cell_strategy, _ = split_objective_spec(spec)
            if cell_strategy is not None and cell_strategy not in STRATEGIES:
                raise ConfigurationError(
                    f"objective spec {spec!r} names unknown strategy {cell_strategy!r}; "
                    f"registered: {', '.join(available_strategies())}"
                )
            objective_config_from_spec(spec, constraints=self.constraints)  # validate eagerly
        if self.scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        if self.eval_parallelism < 1:
            raise ConfigurationError(
                f"eval_parallelism must be >= 1, got {self.eval_parallelism}"
            )
        if self.run_parallelism < 1:
            raise ConfigurationError(
                f"run_parallelism must be >= 1, got {self.run_parallelism}"
            )
        if self.warm_start < 0:
            raise ConfigurationError(f"warm_start must be >= 0, got {self.warm_start}")
        # Imported lazily: repro.workers depends on repro.core at import time.
        from ..workers.backends import BACKENDS, available_backends

        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; registered: {', '.join(available_backends())}"
            )

    # ----------------------------------------------------------------- grid
    def cells(self) -> list[RunCell]:
        """All grid cells in deterministic (dataset, objective, seed) order."""
        cells: list[RunCell] = []
        for dataset in self.datasets:
            for objective in self.objectives:
                for seed in self.seeds:
                    cells.append(
                        RunCell(
                            dataset=dataset,
                            objective=objective,
                            seed=int(seed),
                            index=len(cells),
                        )
                    )
        return cells

    @property
    def grid_size(self) -> int:
        """Total number of runs in the grid."""
        return len(self.datasets) * len(self.objectives) * len(self.seeds)

    def cell_digest(self) -> str:
        """Digest of the settings that shape an *individual* run.

        Grid axes (datasets/objectives/seeds) and purely organizational
        fields are excluded, so extending the grid keeps previously
        completed cells valid while changing, say, ``training_epochs`` via
        ``overrides`` invalidates them.
        """
        data = self.to_dict()
        for key in ("name", "datasets", "objectives", "seeds", "run_parallelism", "output_dir"):
            data.pop(key, None)
        # The store location never changes what a run computes, only where
        # results are remembered — it must not invalidate completed cells.
        data.pop("store_path", None)
        # Fields newer than the first release are omitted at their defaults so
        # artifacts checkpointed before the field existed stay resumable.
        if data.get("strategy") == "evolutionary":
            data.pop("strategy", None)
        if not data.get("constraints"):
            data.pop("constraints", None)
        if not data.get("warm_start"):
            data.pop("warm_start", None)
        payload = json.dumps(data, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    # ----------------------------------------------------------------- JSON
    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        data = asdict(self)
        data["datasets"] = list(self.datasets)
        data["objectives"] = list(self.objectives)
        data["seeds"] = list(self.seeds)
        data["constraints"] = list(self.constraints)
        data["overrides"] = dict(self.overrides)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"malformed experiment spec: expected an object, got {type(data).__name__}"
            )
        allowed = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown experiment spec key(s): {', '.join(map(repr, unknown))}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        try:
            return cls(
                name=str(data["name"]),
                datasets=tuple(str(d) for d in data["datasets"]),
                objectives=tuple(str(o) for o in data.get("objectives", ("codesign",))),
                seeds=tuple(int(s) for s in data.get("seeds", (0,))),
                scale=float(data.get("scale", 0.1)),
                data_seed=int(data.get("data_seed", 0)),
                fpga=str(data.get("fpga", "arria10")),
                gpu=str(data.get("gpu", "titan_x")),
                backend=str(data.get("backend", "serial")),
                eval_parallelism=int(data.get("eval_parallelism", 1)),
                run_parallelism=int(data.get("run_parallelism", 1)),
                strategy=str(data.get("strategy", "evolutionary")),
                constraints=tuple(str(c) for c in data.get("constraints", ())),
                store_path=str(data.get("store_path", "")),
                warm_start=int(data.get("warm_start", 0)),
                overrides=dict(data.get("overrides", {})),
                output_dir=str(data.get("output_dir", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed experiment spec: {exc}") from exc

    def save(self, path: str | Path) -> None:
        """Write the spec to a JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentSpec":
        """Read a spec from a JSON file."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"experiment spec file not found: {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"experiment spec {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
