"""Structured results of experiment runs.

:class:`RunArtifact` is the durable record of one grid cell — what the
search found, how long it took, and whether it succeeded — written to disk
as soon as the cell finishes so a partially-completed grid can be resumed.
:class:`ExperimentReport` aggregates the artifacts of a whole grid and
exports them as JSON and as a flat CSV alongside the benchmark tables in
``benchmarks/results``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.reporting import format_table, save_rows_csv
from ..core.errors import ConfigurationError
from .spec import ExperimentSpec, RunCell

__all__ = ["RunArtifact", "ExperimentReport"]

#: Column order of the aggregate CSV export.
REPORT_COLUMNS = (
    "run_id",
    "dataset",
    "objective",
    "seed",
    "status",
    "best_accuracy",
    "fpga_outputs_per_second",
    "gpu_outputs_per_second",
    "hidden_layers",
    "models_generated",
    "models_evaluated",
    "store_hits",
    "frontier_size",
    "wall_clock_seconds",
    "error",
)


@dataclass
class RunArtifact:
    """Everything worth keeping from one grid cell.

    Attributes
    ----------
    run_id / dataset / objective / seed:
        The cell coordinates (see :class:`~repro.experiment.spec.RunCell`).
    status:
        ``"completed"`` or ``"failed"``; resume re-runs failed cells.
    best_accuracy:
        Highest accuracy any evaluated candidate reached.
    best_candidate:
        Flat summary of the best-accuracy candidate
        (:meth:`~repro.core.candidate.CandidateEvaluation.summary`).
    pareto:
        Representative accuracy-vs-throughput frontier rows (Table IV style).
    frontier:
        The full streamed Pareto frontier over the run's *configured*
        objectives: per-member objective values plus candidate summary, as
        maintained by the engine's
        :class:`~repro.core.frontier.FrontierArchive` during the run.
    snapshots:
        Frontier-change timeline: one dict per
        :class:`~repro.core.frontier.FrontierSnapshot` (``step``, ``size``,
        ``evaluations_seen``, ``best_accuracy``); arena leaderboards derive
        evals-to-target from it.
    statistics:
        Run-time statistics dict (Table III style).
    wall_clock_seconds:
        End-to-end cell time, including dataset generation.
    error:
        Failure description when ``status == "failed"``.
    cell_digest:
        Digest of the per-run spec settings this artifact was produced
        under; resume discards artifacts whose digest no longer matches.
    """

    run_id: str
    dataset: str
    objective: str
    seed: int
    status: str = "completed"
    best_accuracy: float = 0.0
    best_candidate: dict = field(default_factory=dict)
    pareto: list = field(default_factory=list)
    frontier: list = field(default_factory=list)
    snapshots: list = field(default_factory=list)
    statistics: dict = field(default_factory=dict)
    wall_clock_seconds: float = 0.0
    error: str = ""
    cell_digest: str = ""

    @property
    def completed(self) -> bool:
        """Whether this cell finished successfully."""
        return self.status == "completed"

    @classmethod
    def from_result(
        cls,
        cell: RunCell,
        result,
        wall_clock_seconds: float,
        cell_digest: str = "",
        pareto_rows: int = 4,
    ) -> "RunArtifact":
        """Build the artifact of a successful cell from its ``SearchResult``."""
        return cls(
            run_id=cell.run_id,
            dataset=cell.dataset,
            objective=cell.objective,
            seed=cell.seed,
            status="completed",
            best_accuracy=float(result.best_accuracy),
            best_candidate=result.best_accuracy_candidate.summary(),
            pareto=[candidate.summary() for candidate in result.pareto_rows(count=pareto_rows)],
            frontier=(
                result.frontier_archive.rows() if result.frontier_archive is not None else []
            ),
            snapshots=(
                [
                    {
                        "step": snapshot.step,
                        "size": snapshot.size,
                        "evaluations_seen": snapshot.evaluations_seen,
                        "best_accuracy": snapshot.best_accuracy,
                    }
                    for snapshot in result.frontier_archive.snapshots
                ]
                if result.frontier_archive is not None
                else []
            ),
            statistics=result.statistics.to_dict(),
            wall_clock_seconds=float(wall_clock_seconds),
            cell_digest=cell_digest,
        )

    @classmethod
    def from_failure(
        cls, cell: RunCell, error: str, wall_clock_seconds: float, cell_digest: str = ""
    ) -> "RunArtifact":
        """Build the artifact of a failed cell."""
        return cls(
            run_id=cell.run_id,
            dataset=cell.dataset,
            objective=cell.objective,
            seed=cell.seed,
            status="failed",
            error=str(error),
            wall_clock_seconds=float(wall_clock_seconds),
            cell_digest=cell_digest,
        )

    # ------------------------------------------------------------ reporting
    def row(self) -> dict:
        """Flat dictionary — one line of the aggregate CSV/table."""
        return {
            "run_id": self.run_id,
            "dataset": self.dataset,
            "objective": self.objective,
            "seed": self.seed,
            "status": self.status,
            "best_accuracy": self.best_accuracy,
            "fpga_outputs_per_second": self.best_candidate.get("fpga_outputs_per_second", 0.0),
            "gpu_outputs_per_second": self.best_candidate.get("gpu_outputs_per_second", 0.0),
            "hidden_layers": "x".join(
                str(h) for h in self.best_candidate.get("hidden_layers", [])
            ),
            "models_generated": self.statistics.get("models_generated", 0),
            "models_evaluated": self.statistics.get("models_evaluated", 0),
            "store_hits": self.statistics.get("store_hits", 0),
            "frontier_size": self.statistics.get("frontier_size", len(self.frontier)),
            "wall_clock_seconds": self.wall_clock_seconds,
            "error": self.error,
        }

    # ----------------------------------------------------------------- JSON
    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "dataset": self.dataset,
            "objective": self.objective,
            "seed": self.seed,
            "status": self.status,
            "best_accuracy": self.best_accuracy,
            "best_candidate": dict(self.best_candidate),
            "pareto": [dict(row) for row in self.pareto],
            "frontier": [dict(row) for row in self.frontier],
            "snapshots": [dict(row) for row in self.snapshots],
            "statistics": dict(self.statistics),
            "wall_clock_seconds": self.wall_clock_seconds,
            "error": self.error,
            "cell_digest": self.cell_digest,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunArtifact":
        try:
            return cls(
                run_id=str(data["run_id"]),
                dataset=str(data["dataset"]),
                objective=str(data["objective"]),
                seed=int(data["seed"]),
                status=str(data.get("status", "completed")),
                best_accuracy=float(data.get("best_accuracy", 0.0)),
                best_candidate=dict(data.get("best_candidate", {})),
                pareto=list(data.get("pareto", [])),
                frontier=list(data.get("frontier", [])),
                snapshots=list(data.get("snapshots", [])),
                statistics=dict(data.get("statistics", {})),
                wall_clock_seconds=float(data.get("wall_clock_seconds", 0.0)),
                error=str(data.get("error", "")),
                cell_digest=str(data.get("cell_digest", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed run artifact: {exc}") from exc

    def save(self, path: str | Path) -> None:
        """Write the artifact to a JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "RunArtifact":
        """Read an artifact from a JSON file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read run artifact {path}: {exc}") from exc
        return cls.from_dict(data)


@dataclass
class ExperimentReport:
    """Aggregate of every cell artifact of one experiment grid."""

    spec: ExperimentSpec
    artifacts: list[RunArtifact] = field(default_factory=list)

    @property
    def completed(self) -> list[RunArtifact]:
        """Artifacts of successfully finished cells."""
        return [artifact for artifact in self.artifacts if artifact.completed]

    @property
    def failed(self) -> list[RunArtifact]:
        """Artifacts of failed cells."""
        return [artifact for artifact in self.artifacts if not artifact.completed]

    def rows(self) -> list[dict]:
        """One flat row per artifact, in grid order."""
        return [artifact.row() for artifact in self.artifacts]

    def summary_table(self) -> str:
        """Aligned plain-text table of the whole grid."""
        return format_table(
            self.rows(), columns=list(REPORT_COLUMNS), title=f"Experiment {self.spec.name!r}"
        )

    def best_artifact(self) -> RunArtifact:
        """The completed cell with the highest best accuracy."""
        completed = self.completed
        if not completed:
            raise ConfigurationError("experiment produced no completed runs")
        return max(completed, key=lambda artifact: artifact.best_accuracy)

    # ----------------------------------------------------------- persistence
    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "artifacts": [artifact.to_dict() for artifact in self.artifacts],
        }

    def save(self, directory: str | Path) -> tuple[Path, Path]:
        """Write ``report.json`` and ``report.csv`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        json_path = directory / "report.json"
        csv_path = directory / "report.csv"
        json_path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        save_rows_csv(self.rows(), csv_path, columns=list(REPORT_COLUMNS))
        return json_path, csv_path
