"""Population container for the steady-state evolutionary engine.

The ECAD evolutionary process is "based on a steady-state model" (section
III-A, citing Goldberg & Deb): instead of replacing a whole generation at
once, offspring are inserted one (or a few) at a time, replacing the worst
members of the population.  :class:`Population` implements that replacement
policy, tracks every member's evaluation and fitness, and exposes the views
the engine and analysis layers need (best member, sorted members, objective
matrices).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .candidate import CandidateEvaluation
from .errors import SearchError
from .fitness import FitnessResult
from .genome import CoDesignGenome

__all__ = ["Individual", "Population"]


@dataclass
class Individual:
    """One population member: genome, its evaluation and its fitness."""

    genome: CoDesignGenome
    evaluation: CandidateEvaluation
    fitness: FitnessResult
    birth_step: int = 0

    @property
    def fitness_value(self) -> float:
        """Scalar fitness used for selection and replacement."""
        return self.fitness.fitness

    def objective(self, name: str) -> float:
        """Raw objective value recorded at evaluation time."""
        return self.fitness.objective(name)


@dataclass
class Population:
    """Fixed-capacity, fitness-ordered population with steady-state replacement.

    Attributes
    ----------
    capacity:
        Maximum number of individuals retained.
    members:
        Current individuals (kept sorted by descending fitness).
    """

    capacity: int
    members: list[Individual] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity < 2:
            raise SearchError(f"population capacity must be >= 2, got {self.capacity}")
        self._sort()

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members)

    @property
    def is_full(self) -> bool:
        """Whether the population is at capacity."""
        return len(self.members) >= self.capacity

    @property
    def best(self) -> Individual:
        """The fittest individual."""
        if not self.members:
            raise SearchError("population is empty")
        return self.members[0]

    @property
    def worst(self) -> Individual:
        """The least fit individual."""
        if not self.members:
            raise SearchError("population is empty")
        return self.members[-1]

    def genomes(self) -> list[CoDesignGenome]:
        """Genomes of all members, fitness-ordered."""
        return [member.genome for member in self.members]

    def evaluations(self) -> list[CandidateEvaluation]:
        """Evaluations of all members, fitness-ordered."""
        return [member.evaluation for member in self.members]

    def best_by_objective(self, name: str) -> Individual:
        """The member with the highest raw value of one objective."""
        if not self.members:
            raise SearchError("population is empty")
        return max(self.members, key=lambda member: member.objective(name))

    def mean_fitness(self) -> float:
        """Mean scalar fitness over finite-fitness members (0 if none)."""
        finite = [m.fitness_value for m in self.members if m.fitness_value != float("-inf")]
        if not finite:
            return 0.0
        return sum(finite) / len(finite)

    def contains_genome(self, genome: CoDesignGenome) -> bool:
        """Whether an identical genome is already present."""
        key = genome.cache_key()
        return any(member.genome.cache_key() == key for member in self.members)

    # ----------------------------------------------------------- mutation
    def add(self, individual: Individual) -> Individual | None:
        """Insert an individual, evicting the worst member when at capacity.

        Returns the evicted individual (or ``None`` when nothing was evicted).
        When the population is full and the newcomer is no better than the
        current worst member, the newcomer itself is "evicted" (not inserted),
        which is the steady-state replacement policy.
        """
        if not self.is_full:
            self.members.append(individual)
            self._sort()
            return None
        current_worst = self.worst
        if individual.fitness_value <= current_worst.fitness_value:
            return individual
        self.members[-1] = individual
        self._sort()
        return current_worst

    def rescore(self, fitness_results: list[FitnessResult]) -> None:
        """Replace every member's fitness (used after population-relative rescoring)."""
        if len(fitness_results) != len(self.members):
            raise SearchError(
                f"got {len(fitness_results)} fitness results for {len(self.members)} members"
            )
        for member, result in zip(self.members, fitness_results):
            member.fitness = result
        self._sort()

    def _sort(self) -> None:
        self.members.sort(key=lambda member: member.fitness_value, reverse=True)
