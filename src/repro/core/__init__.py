"""ECAD core: the paper's primary contribution.

Genomes and search spaces for joint NNA/hardware candidates, mutation and
crossover operators, fitness functions and Pareto analysis, the evaluation
cache, the steady-state evolutionary engine, the configuration-file format,
and the high-level :class:`~repro.core.search.CoDesignSearch` front-end.
"""

from .cache import CacheStatistics, EvaluationCache
from .callbacks import Callback, CallbackList, HistoryRecord, ProgressLogger, SearchHistory
from .candidate import CandidateEvaluation
from .config import ECADConfig, HardwareTargetConfig, NNAStructureConfig, OptimizationTargetConfig
from .crossover import CoDesignCrossover, crossover_hardware_fields, crossover_mlp_layers, crossover_swap_halves
from .engine import EngineConfig, EngineResult, EvolutionaryEngine, RunStatistics
from .errors import (
    ConfigurationError,
    ECADError,
    EvaluationError,
    GenomeError,
    InfeasibleHardwareError,
    SearchError,
)
from .fitness import (
    FitnessEvaluator,
    FitnessObjective,
    FitnessResult,
    available_objectives,
    get_objective,
    register_objective,
)
from .genome import (
    CoDesignGenome,
    CoDesignSearchSpace,
    HardwareGenome,
    HardwareSearchSpace,
    MLPGenome,
    MLPSearchSpace,
)
from .mutation import CoDesignMutator, MutationConfig
from .pareto import ParetoPoint, dominates, knee_point, make_points, pareto_frontier, pareto_frontier_indices, top_tradeoff_points
from .population import Individual, Population
from .search import CoDesignSearch, RandomSearch, SearchResult
from .selection import (
    RankSelection,
    RouletteWheelSelection,
    SelectionScheme,
    TournamentSelection,
    available_selection_schemes,
    get_selection,
)

__all__ = [
    "CacheStatistics",
    "EvaluationCache",
    "Callback",
    "CallbackList",
    "HistoryRecord",
    "ProgressLogger",
    "SearchHistory",
    "CandidateEvaluation",
    "ECADConfig",
    "HardwareTargetConfig",
    "NNAStructureConfig",
    "OptimizationTargetConfig",
    "CoDesignCrossover",
    "crossover_hardware_fields",
    "crossover_mlp_layers",
    "crossover_swap_halves",
    "EngineConfig",
    "EngineResult",
    "EvolutionaryEngine",
    "RunStatistics",
    "ConfigurationError",
    "ECADError",
    "EvaluationError",
    "GenomeError",
    "InfeasibleHardwareError",
    "SearchError",
    "FitnessEvaluator",
    "FitnessObjective",
    "FitnessResult",
    "available_objectives",
    "get_objective",
    "register_objective",
    "CoDesignGenome",
    "CoDesignSearchSpace",
    "HardwareGenome",
    "HardwareSearchSpace",
    "MLPGenome",
    "MLPSearchSpace",
    "CoDesignMutator",
    "MutationConfig",
    "ParetoPoint",
    "dominates",
    "knee_point",
    "make_points",
    "pareto_frontier",
    "pareto_frontier_indices",
    "top_tradeoff_points",
    "Individual",
    "Population",
    "CoDesignSearch",
    "RandomSearch",
    "SearchResult",
    "RankSelection",
    "RouletteWheelSelection",
    "SelectionScheme",
    "TournamentSelection",
    "available_selection_schemes",
    "get_selection",
]
