"""The steady-state evolutionary engine — the heart of the ECAD flow.

Section III-A of the paper: the evolutionary process, "based on a steady-state
model", generates a population of NNA/hardware co-design candidates, has each
evaluated by workers, scores them with user-defined fitness functions, and
iterates by selecting parents, recombining and mutating them, and inserting
offspring back into the population.

The engine is deliberately decoupled from the evaluation machinery: it only
needs a callable ``evaluator(genome) -> CandidateEvaluation``.  In the full
system that callable is the :class:`~repro.workers.master.Master`; in unit
tests it can be a cheap synthetic function.  Caching, duplicate avoidance and
run-time statistics (Table III) live here because they are properties of the
search, not of any individual worker.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, as_completed, wait
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..hardware.device import FPGADevice
from .cache import EvaluationCache
from .callbacks import Callback, CallbackList, SearchHistory
from .candidate import CandidateEvaluation
from .crossover import CoDesignCrossover
from .errors import SearchError
from .fitness import FitnessEvaluator
from .frontier import FrontierArchive
from .genome import CoDesignGenome, CoDesignSearchSpace
from .mutation import CoDesignMutator, MutationConfig
from .population import Individual, Population
from .selection import SelectionScheme, get_selection

__all__ = ["EngineConfig", "RunStatistics", "EngineResult", "EvolutionaryEngine"]

#: Evaluator signature: maps a genome to its full evaluation record.
Evaluator = Callable[[CoDesignGenome], CandidateEvaluation]


@dataclass(frozen=True)
class EngineConfig:
    """Hyperparameters of the evolutionary search itself.

    Attributes
    ----------
    population_size:
        Number of individuals retained in the steady-state population.
    max_evaluations:
        Total number of candidate evaluations (including the initial
        population and cache hits) before the search stops.
    crossover_probability:
        Probability that an offspring is produced by recombination of two
        parents (otherwise a single parent is cloned) before mutation.
    mutation_probability:
        Probability that the offspring is mutated (applied after crossover;
        a cloned, unmutated offspring is still possible but will usually be
        deduplicated by the cache).
    selection:
        Name of the parent-selection scheme (``tournament``, ``roulette``,
        ``rank``, ``nsga2``).
    tournament_size:
        Tournament size for scalar ``tournament`` selection.
    nsga2_tournament_size:
        Tournament size for ``nsga2`` (rank + crowding) selection.  Defaults
        to the classic binary tournament; raise it to match a scalarized
        baseline's selection pressure when comparing strategies at equal
        budgets (see the table4 benchmark).
    steady_state:
        True for the paper's steady-state replacement; False switches to a
        generational model (used only by the ablation benchmark).
    avoid_duplicate_genomes:
        Skip offspring whose exact parameters are already in the population
        (the cache still answers repeats across the whole run).
    seed:
        RNG seed for the search (initial population, selection, operators).
    max_stagnation_steps:
        Stop early when the best fitness has not improved for this many
        steps; ``0`` disables early stopping.
    eval_parallelism:
        Maximum number of candidate evaluations kept in flight at once.
        ``1`` (the default) runs the original, bit-for-bit reproducible
        serial steady-state loop; larger values switch the steady-state
        search to the asynchronous batched pipeline (offspring are generated
        in windows, dispatched concurrently, and inserted in completion
        order).
    eval_batch_size:
        Number of offspring bred and dispatched together as one evaluator
        call.  ``1`` (the default) keeps per-candidate dispatch; larger
        values let a batch-capable evaluator (``evaluate_batch``, e.g. the
        master fanning out fused-GEMM workers) amortize training and
        hardware-model work across the batch.  Any value above 1 routes the
        steady-state search through the asynchronous pipeline.
    """

    population_size: int = 24
    max_evaluations: int = 200
    crossover_probability: float = 0.5
    mutation_probability: float = 0.9
    selection: str = "tournament"
    tournament_size: int = 3
    nsga2_tournament_size: int = 2
    steady_state: bool = True
    avoid_duplicate_genomes: bool = True
    seed: int | None = None
    max_stagnation_steps: int = 0
    eval_parallelism: int = 1
    eval_batch_size: int = 1

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise SearchError(f"population_size must be >= 2, got {self.population_size}")
        if self.tournament_size < 1:
            raise SearchError(f"tournament_size must be >= 1, got {self.tournament_size}")
        if self.tournament_size > self.population_size:
            raise SearchError(
                "tournament_size must not exceed population_size "
                f"({self.tournament_size} > {self.population_size})"
            )
        if self.nsga2_tournament_size < 2:
            raise SearchError(
                f"nsga2_tournament_size must be >= 2, got {self.nsga2_tournament_size}"
            )
        if self.nsga2_tournament_size > self.population_size:
            raise SearchError(
                "nsga2_tournament_size must not exceed population_size "
                f"({self.nsga2_tournament_size} > {self.population_size})"
            )
        if self.eval_parallelism < 1:
            raise SearchError(f"eval_parallelism must be >= 1, got {self.eval_parallelism}")
        if self.eval_batch_size < 1:
            raise SearchError(f"eval_batch_size must be >= 1, got {self.eval_batch_size}")
        if self.max_evaluations < self.population_size:
            raise SearchError(
                "max_evaluations must be at least population_size "
                f"({self.max_evaluations} < {self.population_size})"
            )
        if not 0.0 <= self.crossover_probability <= 1.0:
            raise SearchError(
                f"crossover_probability must be in [0, 1], got {self.crossover_probability}"
            )
        if not 0.0 <= self.mutation_probability <= 1.0:
            raise SearchError(
                f"mutation_probability must be in [0, 1], got {self.mutation_probability}"
            )
        if self.max_stagnation_steps < 0:
            raise SearchError(
                f"max_stagnation_steps must be >= 0, got {self.max_stagnation_steps}"
            )


@dataclass
class RunStatistics:
    """Run-time statistics of one search — the rows of Table III.

    Attributes
    ----------
    models_generated:
        Number of candidate genomes produced by the engine (initial population
        plus offspring), i.e. "Total Models Evaluated" in the paper's wording,
        which counts generated combinations.
    models_evaluated:
        Number of genomes actually sent to workers (cache misses).
    cache_hits:
        Number of candidate evaluations answered by the cache.
    total_evaluation_seconds:
        Sum of wall-clock evaluation time across all fresh evaluations.
    wall_clock_seconds:
        End-to-end search time.
    peak_in_flight:
        Largest number of candidate evaluations that were in flight at the
        same time (1 for the serial engine).
    frontier_size:
        Size of the streaming Pareto-frontier archive when the search ended.
    frontier_updates:
        How many evaluations changed the frontier during the run.
    store_hits:
        Evaluations answered by the persistent evaluation store (a subset of
        ``cache_hits``; 0 when no store is configured).
    store_misses:
        Store lookups that fell through to a fresh evaluation.
    warm_start_seeds:
        Initial-population members seeded from the store's best stored
        candidates instead of being drawn at random.
    surrogate_screened:
        Offspring candidates scored by the surrogate pre-screen (0 when the
        ``surrogate`` strategy is off or its model never became ready).
    real_evals_saved:
        Screened candidates discarded without a full-budget evaluation —
        the evaluations the surrogate saved relative to evaluating every
        bred candidate.
    surrogate_mae:
        Mean absolute error of the surrogate's accuracy predictions against
        the real evaluations of the candidates it promoted (0 when unused).
    rung_evaluations:
        Low-fidelity (reduced-epoch) trainings spent in successive-halving
        rungs; these are real but cheap trainings, kept separate from
        ``models_evaluated`` so full-budget counts stay comparable.
    """

    models_generated: int = 0
    models_evaluated: int = 0
    cache_hits: int = 0
    total_evaluation_seconds: float = 0.0
    wall_clock_seconds: float = 0.0
    peak_in_flight: int = 0
    frontier_size: int = 0
    frontier_updates: int = 0
    store_hits: int = 0
    store_misses: int = 0
    warm_start_seeds: int = 0
    surrogate_screened: int = 0
    real_evals_saved: int = 0
    surrogate_mae: float = 0.0
    rung_evaluations: int = 0

    @property
    def average_evaluation_seconds(self) -> float:
        """Mean evaluation time per freshly evaluated model (0 when none)."""
        if self.models_evaluated == 0:
            return 0.0
        return self.total_evaluation_seconds / self.models_evaluated

    @property
    def evaluations_per_second(self) -> float:
        """Fresh evaluations completed per wall-clock second (0 when unknown).

        Guards both degenerate cases: no fresh evaluations (an all-cache-hit
        run is not infinitely fast) and a zero/near-zero wall clock (timer
        resolution can report 0.0 for trivial runs, which would otherwise
        divide to ``inf`` and poison downstream throughput tables).
        """
        if self.models_evaluated == 0 or self.wall_clock_seconds <= 1e-9:
            return 0.0
        return self.models_evaluated / self.wall_clock_seconds

    def to_dict(self) -> dict:
        """Flat dictionary used by reports."""
        return {
            "models_generated": self.models_generated,
            "models_evaluated": self.models_evaluated,
            "cache_hits": self.cache_hits,
            "total_evaluation_seconds": self.total_evaluation_seconds,
            "average_evaluation_seconds": self.average_evaluation_seconds,
            "wall_clock_seconds": self.wall_clock_seconds,
            "evaluations_per_second": self.evaluations_per_second,
            "peak_in_flight": self.peak_in_flight,
            "frontier_size": self.frontier_size,
            "frontier_updates": self.frontier_updates,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "warm_start_seeds": self.warm_start_seeds,
            "surrogate_screened": self.surrogate_screened,
            "real_evals_saved": self.real_evals_saved,
            "surrogate_mae": self.surrogate_mae,
            "rung_evaluations": self.rung_evaluations,
        }


@dataclass
class EngineResult:
    """Everything a finished search returns."""

    population: Population
    history: SearchHistory
    statistics: RunStatistics
    frontier: FrontierArchive | None = None
    best: Individual = field(init=False)

    def __post_init__(self) -> None:
        self.best = self.population.best


class EvolutionaryEngine:
    """Steady-state evolutionary search over a co-design space.

    Parameters
    ----------
    space:
        The joint NNA/hardware search space.
    evaluator:
        Callable mapping a genome to a :class:`CandidateEvaluation` (usually a
        :class:`~repro.workers.master.Master`).
    fitness:
        Multi-objective fitness evaluator used for selection and replacement.
    config:
        Engine hyperparameters.
    device:
        Optional FPGA device used to keep mutated/crossed genomes feasible.
    mutation_config:
        Relative mutation-operator weights.
    cache:
        Evaluation cache; a fresh unbounded cache is created when omitted.
    callbacks:
        Extra callbacks in addition to the built-in :class:`SearchHistory`
        and streaming :class:`FrontierArchive`.
    frontier:
        Streaming Pareto-frontier archive; when omitted one is created over
        the fitness evaluator's objectives (and constraints).  It is updated
        through the callback bus on both the serial and asynchronous paths.
    initial_genomes:
        Genomes to seed the initial population with (warm-start from the
        persistent evaluation store).  They are consumed before any random
        genome is drawn, deduplicated, capped at the population size, and
        evaluated through the normal cache path — a store-backed cache
        answers them instantly.  The random stream is untouched when this is
        empty, so runs without seeds stay bit-for-bit reproducible.
    """

    def __init__(
        self,
        space: CoDesignSearchSpace,
        evaluator: Evaluator,
        fitness: FitnessEvaluator,
        config: EngineConfig | None = None,
        device: FPGADevice | None = None,
        mutation_config: MutationConfig | None = None,
        cache: EvaluationCache | None = None,
        callbacks: list[Callback] | None = None,
        selection: SelectionScheme | None = None,
        frontier: FrontierArchive | None = None,
        initial_genomes: list[CoDesignGenome] | None = None,
    ) -> None:
        self.space = space
        self.evaluator = evaluator
        self.fitness = fitness
        self.config = config or EngineConfig()
        self.device = device
        self.cache = cache if cache is not None else EvaluationCache()
        self.mutator = CoDesignMutator(
            space=space, config=mutation_config or MutationConfig(), device=device
        )
        self.crossover = CoDesignCrossover(device=device)
        if selection is not None:
            self.selection = selection
        elif self.config.selection == "tournament":
            self.selection = get_selection(
                "tournament", tournament_size=self.config.tournament_size
            )
        elif self.config.selection == "nsga2":
            self.selection = get_selection(
                "nsga2", tournament_size=self.config.nsga2_tournament_size
            )
        else:
            self.selection = get_selection(self.config.selection)
        self.history = SearchHistory()
        self.frontier = frontier if frontier is not None else FrontierArchive(
            objectives=fitness.objectives,
            constraints=getattr(fitness, "constraints", ()),
        )
        self.callbacks = CallbackList([self.history, self.frontier, *(callbacks or [])])
        self._rng = np.random.default_rng(self.config.seed)
        self.statistics = RunStatistics()
        self._stats_lock = threading.Lock()
        self.initial_genomes = list(initial_genomes or [])

    # ------------------------------------------------------------------ run
    def run(self) -> EngineResult:
        """Execute the search and return the final population, history and stats.

        With ``eval_parallelism=1`` (the default) this is the paper's serial
        steady-state loop, bit-for-bit reproducible for a fixed seed.  With
        ``eval_parallelism > 1`` the steady-state search runs as an
        asynchronous batched pipeline that keeps up to that many candidate
        evaluations in flight; ``eval_batch_size > 1`` additionally fuses
        offspring into batch evaluator calls on that pipeline.
        """
        if self.config.steady_state and (
            self.config.eval_parallelism > 1 or self.config.eval_batch_size > 1
        ):
            return self._run_async()
        start_time = time.perf_counter()
        self.statistics.peak_in_flight = 1
        population = self._initialize_population()
        self.callbacks.on_search_start(population)

        step = len(population)
        stagnation = 0
        best_fitness = population.best.fitness_value
        frontier_marker = self.frontier.updates

        while self.statistics.models_generated < self.config.max_evaluations:
            if self.config.steady_state:
                inserted = self._steady_state_step(population, step)
            else:
                inserted = self._generational_step(population, step)
            step += 1
            self.callbacks.on_step_end(population, step)

            if population.best.fitness_value > best_fitness + 1e-12:
                best_fitness = population.best.fitness_value
                stagnation = 0
            elif self._frontier_progressed(frontier_marker):
                stagnation = 0
            else:
                stagnation += 1
            frontier_marker = self.frontier.updates
            if (
                self.config.max_stagnation_steps > 0
                and stagnation >= self.config.max_stagnation_steps
            ):
                break
            if not inserted and not self.config.steady_state:
                break

        self.statistics.wall_clock_seconds = time.perf_counter() - start_time
        self._record_frontier_statistics()
        self.callbacks.on_search_end(population)
        return EngineResult(
            population=population,
            history=self.history,
            statistics=self.statistics,
            frontier=self.frontier,
        )

    # ------------------------------------------------------- async pipeline
    def _run_async(self) -> EngineResult:
        """Asynchronous steady-state search with a bounded in-flight window.

        Offspring are generated (on the main thread, preserving the RNG
        stream) in windows of at most ``eval_parallelism``, dispatched to a
        thread pool, and inserted into the population in *completion* order.
        Offspring generation dedups against both the population and the
        genomes currently in flight; the evaluation cache's in-flight
        registry additionally coalesces concurrent duplicates so each unique
        genome is evaluated at most once.
        """
        start_time = time.perf_counter()
        executor = ThreadPoolExecutor(
            max_workers=self.config.eval_parallelism, thread_name_prefix="ecad-eval"
        )
        try:
            population = self._initialize_population_async(executor)
            self.callbacks.on_search_start(population)

            step = len(population)
            stagnation = 0
            best_fitness = population.best.fitness_value
            frontier_marker = self.frontier.updates
            in_flight: dict[Future, list[CoDesignGenome]] = {}
            stop_generating = False

            while True:
                while (
                    not stop_generating
                    and len(in_flight) < self.config.eval_parallelism
                    and self.statistics.models_generated < self.config.max_evaluations
                ):
                    pending_keys = {
                        genome.cache_key()
                        for batch in in_flight.values()
                        for genome in batch
                    }
                    chunk: list[CoDesignGenome] = []
                    while (
                        len(chunk) < self.config.eval_batch_size
                        and self.statistics.models_generated < self.config.max_evaluations
                    ):
                        genome = self._make_offspring(population, in_flight_keys=pending_keys)
                        if genome is None:
                            stop_generating = True
                            break
                        self.statistics.models_generated += 1
                        pending_keys.add(genome.cache_key())
                        chunk.append(genome)
                    if not chunk:
                        break
                    in_flight[executor.submit(self._evaluate_concurrent_batch, chunk)] = chunk
                    self.statistics.peak_in_flight = max(
                        self.statistics.peak_in_flight,
                        sum(len(batch) for batch in in_flight.values()),
                    )
                if not in_flight:
                    break

                done, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
                for future in done:
                    batch = in_flight.pop(future)
                    evaluations = future.result()
                    for genome, evaluation in zip(batch, evaluations):
                        fitness = self.fitness.score(
                            evaluation, reference=self._fitness_reference(population)
                        )
                        self.callbacks.on_evaluation(evaluation, fitness, step)
                        population.add(
                            Individual(
                                genome=genome,
                                evaluation=evaluation,
                                fitness=fitness,
                                birth_step=step,
                            )
                        )
                        self._rescore(population)
                        step += 1
                        self.callbacks.on_step_end(population, step)

                        if population.best.fitness_value > best_fitness + 1e-12:
                            best_fitness = population.best.fitness_value
                            stagnation = 0
                        elif self._frontier_progressed(frontier_marker):
                            stagnation = 0
                        else:
                            stagnation += 1
                        frontier_marker = self.frontier.updates
                        if (
                            self.config.max_stagnation_steps > 0
                            and stagnation >= self.config.max_stagnation_steps
                        ):
                            # Stop breeding; candidates already in flight still land.
                            stop_generating = True
        finally:
            executor.shutdown(wait=True)

        self.statistics.wall_clock_seconds = time.perf_counter() - start_time
        self._record_frontier_statistics()
        self.callbacks.on_search_end(population)
        return EngineResult(
            population=population,
            history=self.history,
            statistics=self.statistics,
            frontier=self.frontier,
        )

    def _record_frontier_statistics(self) -> None:
        self.statistics.frontier_size = len(self.frontier)
        self.statistics.frontier_updates = self.frontier.updates

    def _frontier_progressed(self, marker: int) -> bool:
        """Frontier growth counts as progress for rank-based evaluators.

        Pareto-rank scores are capped (the best front-0 member always scores
        the same), so the scalar best-fitness trace cannot register
        improvement; an advancing frontier archive is the honest progress
        signal.  Weighted-sum runs keep the original scalar-only stagnation
        behaviour.
        """
        return getattr(self.fitness, "population_relative", False) and (
            self.frontier.updates > marker
        )

    def _fitness_reference(self, population: Population) -> list[CandidateEvaluation]:
        """The reference set newcomers are scored against.

        Scalarizing evaluators keep the historical behaviour (the full
        evaluation history).  Rank-encoding evaluators
        (``population_relative``) must be scored against the current
        population: a newcomer's front index within the whole history is not
        comparable to the population-relative scores ``Population.add``
        weighs it against, and would wrongly reject non-dominated offspring
        late in a run.
        """
        if getattr(self.fitness, "population_relative", False) and len(population):
            return population.evaluations()
        return self.history.evaluations()

    def _initialize_population_async(self, executor: ThreadPoolExecutor) -> Population:
        """Evaluate the whole initial population concurrently."""
        population = Population(capacity=self.config.population_size)
        genomes: list[CoDesignGenome] = []
        keys: set[str] = set()
        for genome in self._warm_start_pool():
            if self.statistics.models_generated >= self.config.max_evaluations:
                break
            keys.add(genome.cache_key())
            genomes.append(genome)
            self.statistics.models_generated += 1
            self.statistics.warm_start_seeds += 1
        attempts = 0
        max_attempts = self.config.population_size * 20
        while (
            len(genomes) < self.config.population_size
            and self.statistics.models_generated < self.config.max_evaluations
        ):
            attempts += 1
            if attempts > max_attempts:
                raise SearchError(
                    "failed to build a feasible initial population; "
                    "check the search space against the target device"
                )
            genome = self.space.random_genome(self._rng, device=self.device)
            if self.config.avoid_duplicate_genomes and genome.cache_key() in keys:
                continue
            keys.add(genome.cache_key())
            genomes.append(genome)
            self.statistics.models_generated += 1

        chunk_size = self.config.eval_batch_size
        chunks = [genomes[i : i + chunk_size] for i in range(0, len(genomes), chunk_size)]
        futures = {
            executor.submit(self._evaluate_concurrent_batch, chunk): chunk for chunk in chunks
        }
        self.statistics.peak_in_flight = max(
            self.statistics.peak_in_flight,
            min(len(genomes), self.config.eval_parallelism * chunk_size),
        )
        for future in as_completed(futures):
            chunk = futures[future]
            for genome, evaluation in zip(chunk, future.result()):
                fitness = self.fitness.score(
                    evaluation, reference=self._fitness_reference(population)
                )
                self.callbacks.on_evaluation(evaluation, fitness, len(population))
                population.add(
                    Individual(
                        genome=genome,
                        evaluation=evaluation,
                        fitness=fitness,
                        birth_step=len(population),
                    )
                )
                self._rescore(population)
        if len(population) < 2:
            raise SearchError("initial population has fewer than two members")
        return population

    def _evaluate_concurrent(self, genome: CoDesignGenome) -> CandidateEvaluation:
        """Worker-thread evaluation with single-flight caching.

        Exactly one thread evaluates each unique genome; concurrent requests
        for the same genome block on the cache's in-flight registry and share
        the result (counted as cache hits).
        """
        cached, owner = self.cache.lookup_or_reserve(genome)
        if not owner:
            with self._stats_lock:
                self.statistics.cache_hits += 1
            return cached
        try:
            start = time.perf_counter()
            try:
                evaluation = self.evaluator(genome)
            except Exception as exc:  # noqa: BLE001 - worker failures must not kill the search
                evaluation = CandidateEvaluation(genome=genome, error=str(exc))
            elapsed = time.perf_counter() - start
            evaluation = self._stamp_elapsed(evaluation, elapsed)
            with self._stats_lock:
                self.statistics.models_evaluated += 1
                self.statistics.total_evaluation_seconds += elapsed
            self.cache.complete(genome, evaluation)
            return evaluation
        except BaseException:
            self.cache.abandon(genome)
            raise

    def _evaluate_concurrent_batch(
        self, genomes: list[CoDesignGenome]
    ) -> list[CandidateEvaluation]:
        """Evaluate a chunk of genomes as one fused call, in input order.

        Cache hits are resolved individually (and counted as such); the
        remaining fresh genomes go through the evaluator's ``evaluate_batch``
        when it has one, or a per-genome loop otherwise.  Each fresh
        candidate is stored in the cache under its own key, so downstream
        cache/store semantics are identical to per-candidate dispatch, and
        per-candidate ``evaluation_seconds`` is the chunk wall clock split
        evenly.
        """
        results: list[CandidateEvaluation | None] = [None] * len(genomes)
        fresh: list[tuple[int, CoDesignGenome]] = []
        for index, genome in enumerate(genomes):
            cached, owner = self.cache.lookup_or_reserve(genome)
            if not owner:
                with self._stats_lock:
                    self.statistics.cache_hits += 1
                results[index] = cached
                continue
            fresh.append((index, genome))
        if not fresh:
            return results  # type: ignore[return-value]

        fresh_genomes = [genome for _index, genome in fresh]
        try:
            start = time.perf_counter()
            try:
                batch_evaluate = getattr(self.evaluator, "evaluate_batch", None)
                if batch_evaluate is not None and len(fresh_genomes) > 1:
                    evaluations = list(batch_evaluate(fresh_genomes))
                else:
                    evaluations = [self.evaluator(genome) for genome in fresh_genomes]
                if len(evaluations) != len(fresh_genomes):
                    raise SearchError(
                        "batch evaluator returned "
                        f"{len(evaluations)} evaluations for {len(fresh_genomes)} genomes"
                    )
            except Exception as exc:  # noqa: BLE001 - worker failures must not kill the search
                evaluations = [
                    CandidateEvaluation(genome=genome, error=str(exc))
                    for genome in fresh_genomes
                ]
            elapsed = time.perf_counter() - start
            per_candidate = elapsed / len(fresh_genomes)
            with self._stats_lock:
                self.statistics.models_evaluated += len(fresh_genomes)
                self.statistics.total_evaluation_seconds += elapsed
            for (index, genome), evaluation in zip(fresh, evaluations):
                evaluation = self._stamp_elapsed(evaluation, per_candidate)
                self.cache.complete(genome, evaluation)
                results[index] = evaluation
        except BaseException:
            for index, genome in fresh:
                if results[index] is None:
                    self.cache.abandon(genome)
            raise
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------ internals
    def _warm_start_pool(self) -> list[CoDesignGenome]:
        """Validated, deduplicated warm-start genomes, capped at the population.

        Stale store rows are filtered out: a seed must still lie inside the
        current search space and fit the target device.
        """
        pool: list[CoDesignGenome] = []
        keys: set[str] = set()
        for genome in self.initial_genomes:
            if len(pool) >= self.config.population_size:
                break
            if not self.space.contains(genome):
                continue
            if self.device is not None and not genome.hardware.fits(self.device):
                continue
            key = genome.cache_key()
            if key in keys:
                continue
            keys.add(key)
            pool.append(genome)
        return pool

    def _initialize_population(self) -> Population:
        population = Population(capacity=self.config.population_size)
        for genome in self._warm_start_pool():
            if (
                len(population) >= self.config.population_size
                or self.statistics.models_generated >= self.config.max_evaluations
            ):
                break
            individual = self._evaluate_and_wrap(genome, step=len(population), population=population)
            population.add(individual)
            self._rescore(population)
            self.statistics.warm_start_seeds += 1
        attempts = 0
        max_attempts = self.config.population_size * 20
        while len(population) < self.config.population_size:
            if self.statistics.models_generated >= self.config.max_evaluations:
                break
            attempts += 1
            if attempts > max_attempts:
                raise SearchError(
                    "failed to build a feasible initial population; "
                    "check the search space against the target device"
                )
            genome = self.space.random_genome(self._rng, device=self.device)
            if self.config.avoid_duplicate_genomes and population.contains_genome(genome):
                continue
            individual = self._evaluate_and_wrap(genome, step=len(population), population=population)
            population.add(individual)
            self._rescore(population)
        if len(population) < 2:
            raise SearchError("initial population has fewer than two members")
        return population

    def _steady_state_step(self, population: Population, step: int) -> bool:
        genome = self._make_offspring(population)
        if genome is None:
            return False
        individual = self._evaluate_and_wrap(genome, step, population=population)
        population.add(individual)
        self._rescore(population)
        return True

    def _generational_step(self, population: Population, step: int) -> bool:
        """Replace the whole population each step (ablation mode)."""
        offspring: list[Individual] = []
        budget = self.config.max_evaluations - self.statistics.models_generated
        count = min(self.config.population_size, budget)
        if count <= 0:
            return False
        for _ in range(count):
            genome = self._make_offspring(population)
            if genome is None:
                continue
            offspring.append(self._evaluate_and_wrap(genome, step, population=population))
        if not offspring:
            return False
        # Elitism: keep the best parent.
        survivors = [population.best, *offspring]
        survivors = survivors[: self.config.population_size]
        population.members = survivors
        self._rescore(population)
        return True

    def _make_offspring(
        self, population: Population, in_flight_keys: set[str] | None = None
    ) -> CoDesignGenome | None:
        for _ in range(20):
            if self._rng.random() < self.config.crossover_probability and len(population) >= 2:
                parent_a, parent_b = self.selection.select_pair(population, self._rng)
                genome = self.crossover.recombine(parent_a.genome, parent_b.genome, self._rng)
            else:
                parent = self.selection.select(population, self._rng)
                genome = parent.genome
            if self._rng.random() < self.config.mutation_probability:
                genome = self.mutator.mutate(genome, self._rng)
            if self.config.avoid_duplicate_genomes and (
                population.contains_genome(genome)
                or (in_flight_keys and genome.cache_key() in in_flight_keys)
            ):
                continue
            return genome
        # Give up on uniqueness and explore randomly instead.
        return self.space.random_genome(self._rng, device=self.device)

    def _evaluate_and_wrap(
        self, genome: CoDesignGenome, step: int, population: Population
    ) -> Individual:
        evaluation = self._evaluate(genome)
        fitness = self.fitness.score(evaluation, reference=self._fitness_reference(population))
        self.callbacks.on_evaluation(evaluation, fitness, step)
        return Individual(genome=genome, evaluation=evaluation, fitness=fitness, birth_step=step)

    def _evaluate(self, genome: CoDesignGenome) -> CandidateEvaluation:
        self.statistics.models_generated += 1
        cached = self.cache.lookup(genome)
        if cached is not None:
            self.statistics.cache_hits += 1
            return cached
        start = time.perf_counter()
        try:
            evaluation = self.evaluator(genome)
        except Exception as exc:  # noqa: BLE001 - worker failures must not kill the search
            evaluation = CandidateEvaluation(genome=genome, error=str(exc))
        elapsed = time.perf_counter() - start
        evaluation = self._stamp_elapsed(evaluation, elapsed)
        self.statistics.models_evaluated += 1
        self.statistics.total_evaluation_seconds += elapsed
        self.cache.store(evaluation)
        return evaluation

    @staticmethod
    def _stamp_elapsed(evaluation: CandidateEvaluation, elapsed: float) -> CandidateEvaluation:
        """Fill in the measured wall-clock time when the evaluator left it at 0."""
        if evaluation.evaluation_seconds != 0.0 or evaluation.failed:
            return evaluation
        return CandidateEvaluation(
            genome=evaluation.genome,
            accuracy=evaluation.accuracy,
            accuracy_std=evaluation.accuracy_std,
            parameter_count=evaluation.parameter_count,
            fpga_metrics=evaluation.fpga_metrics,
            gpu_metrics=evaluation.gpu_metrics,
            synthesis=evaluation.synthesis,
            train_seconds=evaluation.train_seconds,
            evaluation_seconds=elapsed,
            extras=evaluation.extras,
        )

    def _rescore(self, population: Population) -> None:
        """Re-normalize fitness across the current population.

        Min-max normalization is population-relative, so after every insertion
        all members are rescored against the same reference — this keeps the
        steady-state replacement decisions consistent.
        """
        results = self.fitness.score_population(population.evaluations())
        population.rescore(results)
