"""Co-design genomes and their search spaces.

The ECAD evolutionary process "generates a population of NNA/Hardware
co-design candidates each with a complete set of parameters that effect both
the accuracy and the hardware performance.  The parameters we considered
during our searches included number of layers, layer size, activation
function, and bias" (section III-A), while the hardware side mutates the grid
rows/columns, interleaving and vector width (section III-C).

A genome is deliberately *declarative*: it holds parameter values only, no
trained weights and no derived metrics, so it can be hashed for the
evaluation cache, serialized into configuration files, and crossed over /
mutated without touching any heavyweight state.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

import numpy as np

from ..hardware.device import FPGADevice
from ..hardware.systolic import GridConfig, GridSearchSpace
from ..nn.activations import available_activations
from ..nn.mlp import MLPSpec
from .errors import GenomeError

__all__ = [
    "MLPGenome",
    "HardwareGenome",
    "CoDesignGenome",
    "MLPSearchSpace",
    "HardwareSearchSpace",
    "CoDesignSearchSpace",
]


# ---------------------------------------------------------------------------
# Genomes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MLPGenome:
    """Neural-architecture half of a co-design candidate.

    Attributes
    ----------
    hidden_layers:
        Neuron count of each hidden layer, in order.  May be empty (a
        softmax-regression network), although search spaces usually require
        at least one hidden layer.
    activations:
        Activation name per hidden layer (same length as ``hidden_layers``).
    use_bias:
        Whether all layers carry bias vectors (a single switch, as in the
        paper's parameter list).
    """

    hidden_layers: tuple[int, ...]
    activations: tuple[str, ...]
    use_bias: bool = True

    def __post_init__(self) -> None:
        hidden = tuple(int(h) for h in self.hidden_layers)
        acts = tuple(str(a) for a in self.activations)
        if any(h <= 0 for h in hidden):
            raise GenomeError(f"hidden layer sizes must be positive, got {hidden}")
        if len(acts) != len(hidden):
            raise GenomeError(
                f"got {len(acts)} activations for {len(hidden)} hidden layers"
            )
        valid = set(available_activations())
        for name in acts:
            if name not in valid:
                raise GenomeError(f"unknown activation {name!r} in genome")
        object.__setattr__(self, "hidden_layers", hidden)
        object.__setattr__(self, "activations", acts)

    @property
    def num_hidden_layers(self) -> int:
        """Number of hidden layers."""
        return len(self.hidden_layers)

    @property
    def total_hidden_neurons(self) -> int:
        """Total neurons across hidden layers (the paper's "network size" axis)."""
        return int(sum(self.hidden_layers))

    def to_spec(self, input_size: int, output_size: int) -> MLPSpec:
        """Materialize the genome into a trainable :class:`MLPSpec`."""
        return MLPSpec(
            input_size=input_size,
            output_size=output_size,
            hidden_sizes=self.hidden_layers,
            activations=self.activations if self.activations else ("relu",),
            use_bias=self.use_bias,
        )

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "hidden_layers": list(self.hidden_layers),
            "activations": list(self.activations),
            "use_bias": self.use_bias,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MLPGenome":
        """Inverse of :meth:`to_dict`."""
        return cls(
            hidden_layers=tuple(int(h) for h in data["hidden_layers"]),
            activations=tuple(data["activations"]),
            use_bias=bool(data.get("use_bias", True)),
        )


@dataclass(frozen=True)
class HardwareGenome:
    """Hardware half of a co-design candidate.

    Attributes
    ----------
    grid:
        The systolic-array configuration (rows, columns, interleaving, vector
        width).
    batch_size:
        Number of samples resident in accelerator DRAM per run (the GEMM
        ``m`` dimension of one run).  The paper's total-time metric covers a
        whole run — enqueue to last result — so throughput is measured over
        this many samples; the overlay still tiles it into small
        ``rows x interleave_rows`` blocks internally, which is why the FPGA
        remains a low-latency accelerator even at large run sizes.
    """

    grid: GridConfig
    batch_size: int = 1024

    def __post_init__(self) -> None:
        if int(self.batch_size) <= 0:
            raise GenomeError(f"batch_size must be positive, got {self.batch_size}")
        object.__setattr__(self, "batch_size", int(self.batch_size))

    @property
    def run_samples(self) -> int:
        """Alias for :attr:`batch_size` under the paper's "run" terminology."""
        return self.batch_size

    def fits(self, device: FPGADevice) -> bool:
        """Whether the grid fits the device's resource budget."""
        return self.grid.fits(device)

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {"grid": self.grid.to_dict(), "batch_size": self.batch_size}

    @classmethod
    def from_dict(cls, data: dict) -> "HardwareGenome":
        """Inverse of :meth:`to_dict`."""
        return cls(grid=GridConfig.from_dict(data["grid"]), batch_size=int(data.get("batch_size", 1024)))


@dataclass(frozen=True)
class CoDesignGenome:
    """A complete NNA + hardware candidate, the unit the population evolves.

    Attributes
    ----------
    mlp:
        The network-architecture genome.
    hardware:
        The FPGA overlay genome.
    gpu_batch_size:
        Batch size used when the same network is evaluated on the GPU
        baseline (the GPU has no other tunable hardware parameters).
    """

    mlp: MLPGenome
    hardware: HardwareGenome
    gpu_batch_size: int = 256

    def __post_init__(self) -> None:
        if int(self.gpu_batch_size) <= 0:
            raise GenomeError(f"gpu_batch_size must be positive, got {self.gpu_batch_size}")
        object.__setattr__(self, "gpu_batch_size", int(self.gpu_batch_size))

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "mlp": self.mlp.to_dict(),
            "hardware": self.hardware.to_dict(),
            "gpu_batch_size": self.gpu_batch_size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CoDesignGenome":
        """Inverse of :meth:`to_dict`."""
        return cls(
            mlp=MLPGenome.from_dict(data["mlp"]),
            hardware=HardwareGenome.from_dict(data["hardware"]),
            gpu_batch_size=int(data.get("gpu_batch_size", 256)),
        )

    def cache_key(self) -> str:
        """Stable hash identifying this exact parameter combination.

        The ECAD system "caches similar configurations and avoids reevaluating
        them" (Table III note); the key is a SHA-256 over the canonical JSON
        form, so any two genomes with identical parameters collide on purpose.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def with_mlp(self, mlp: MLPGenome) -> "CoDesignGenome":
        """Return a copy with a different network half."""
        return replace(self, mlp=mlp)

    def with_hardware(self, hardware: HardwareGenome) -> "CoDesignGenome":
        """Return a copy with a different hardware half."""
        return replace(self, hardware=hardware)


# ---------------------------------------------------------------------------
# Search spaces
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MLPSearchSpace:
    """Bounds and choices for the network half of the genome.

    Attributes
    ----------
    min_layers / max_layers:
        Range of hidden-layer counts.
    layer_sizes:
        Allowed neuron counts per hidden layer.
    activations:
        Allowed activation names.
    allow_bias_toggle:
        Whether mutation may flip ``use_bias`` (when false, bias is always on).
    """

    min_layers: int = 1
    max_layers: int = 4
    layer_sizes: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024)
    activations: tuple[str, ...] = ("relu", "tanh", "sigmoid", "elu")
    allow_bias_toggle: bool = True

    def __post_init__(self) -> None:
        if self.min_layers < 0:
            raise GenomeError(f"min_layers must be >= 0, got {self.min_layers}")
        if self.max_layers < max(1, self.min_layers):
            raise GenomeError(
                f"max_layers ({self.max_layers}) must be >= min_layers ({self.min_layers}) and >= 1"
            )
        sizes = tuple(sorted(int(s) for s in self.layer_sizes))
        if not sizes or any(s <= 0 for s in sizes):
            raise GenomeError(f"layer_sizes must be positive and non-empty, got {self.layer_sizes}")
        acts = tuple(str(a) for a in self.activations)
        if not acts:
            raise GenomeError("activations must not be empty")
        valid = set(available_activations())
        for name in acts:
            if name not in valid:
                raise GenomeError(f"unknown activation {name!r} in search space")
        object.__setattr__(self, "layer_sizes", sizes)
        object.__setattr__(self, "activations", acts)

    def random_genome(self, rng: np.random.Generator) -> MLPGenome:
        """Draw a uniformly random network genome from this space."""
        num_layers = int(rng.integers(max(1, self.min_layers), self.max_layers + 1))
        hidden = tuple(int(rng.choice(self.layer_sizes)) for _ in range(num_layers))
        acts = tuple(str(rng.choice(self.activations)) for _ in range(num_layers))
        use_bias = bool(rng.integers(0, 2)) if self.allow_bias_toggle else True
        return MLPGenome(hidden_layers=hidden, activations=acts, use_bias=use_bias)

    def contains(self, genome: MLPGenome) -> bool:
        """Whether a genome lies inside this space's bounds."""
        if not (max(1, self.min_layers) <= genome.num_hidden_layers <= self.max_layers):
            return False
        if any(size not in self.layer_sizes for size in genome.hidden_layers):
            return False
        if any(act not in self.activations for act in genome.activations):
            return False
        if not self.allow_bias_toggle and not genome.use_bias:
            return False
        return True

    @property
    def size(self) -> int:
        """Number of distinct network genomes in the space."""
        total = 0
        per_layer_choices = len(self.layer_sizes) * len(self.activations)
        for depth in range(max(1, self.min_layers), self.max_layers + 1):
            total += per_layer_choices ** depth
        return total * (2 if self.allow_bias_toggle else 1)


@dataclass(frozen=True)
class HardwareSearchSpace:
    """Bounds and choices for the hardware half of the genome."""

    grid_space: GridSearchSpace = field(default_factory=GridSearchSpace)
    batch_sizes: tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192)

    def __post_init__(self) -> None:
        batches = tuple(sorted(int(b) for b in self.batch_sizes))
        if not batches or any(b <= 0 for b in batches):
            raise GenomeError(f"batch_sizes must be positive and non-empty, got {self.batch_sizes}")
        object.__setattr__(self, "batch_sizes", batches)

    def random_genome(self, rng: np.random.Generator, device: FPGADevice | None = None) -> HardwareGenome:
        """Draw a random hardware genome, rejecting grids that do not fit ``device``."""
        grid = self.grid_space.random_config(rng, device=device)
        batch = int(rng.choice(self.batch_sizes))
        return HardwareGenome(grid=grid, batch_size=batch)

    def contains(self, genome: HardwareGenome) -> bool:
        """Whether a hardware genome lies inside this space's bounds."""
        grid = genome.grid
        space = self.grid_space
        return (
            grid.rows in space.rows
            and grid.columns in space.columns
            and grid.interleave_rows in space.interleave_rows
            and grid.interleave_columns in space.interleave_columns
            and grid.vector_width in space.vector_width
            and genome.batch_size in self.batch_sizes
        )

    @property
    def size(self) -> int:
        """Number of distinct hardware genomes in the space."""
        return self.grid_space.size * len(self.batch_sizes)


@dataclass(frozen=True)
class CoDesignSearchSpace:
    """The joint NNA x hardware design space the engine explores."""

    mlp_space: MLPSearchSpace = field(default_factory=MLPSearchSpace)
    hardware_space: HardwareSearchSpace = field(default_factory=HardwareSearchSpace)
    gpu_batch_sizes: tuple[int, ...] = (64, 128, 256, 512, 1024)

    def __post_init__(self) -> None:
        batches = tuple(sorted(int(b) for b in self.gpu_batch_sizes))
        if not batches or any(b <= 0 for b in batches):
            raise GenomeError(
                f"gpu_batch_sizes must be positive and non-empty, got {self.gpu_batch_sizes}"
            )
        object.__setattr__(self, "gpu_batch_sizes", batches)

    def random_genome(self, rng: np.random.Generator, device: FPGADevice | None = None) -> CoDesignGenome:
        """Draw a uniformly random co-design genome."""
        return CoDesignGenome(
            mlp=self.mlp_space.random_genome(rng),
            hardware=self.hardware_space.random_genome(rng, device=device),
            gpu_batch_size=int(rng.choice(self.gpu_batch_sizes)),
        )

    def contains(self, genome: CoDesignGenome) -> bool:
        """Whether a co-design genome lies inside this space."""
        return (
            self.mlp_space.contains(genome.mlp)
            and self.hardware_space.contains(genome.hardware)
            and genome.gpu_batch_size in self.gpu_batch_sizes
        )

    @property
    def size(self) -> int:
        """Number of distinct co-design genomes in the joint space."""
        return self.mlp_space.size * self.hardware_space.size * len(self.gpu_batch_sizes)
