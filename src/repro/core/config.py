"""The ECAD configuration file.

Section III of the paper: once a problem is identified, "a dataset will be
exported into a Comma Separated Value (CSV) tabular data format, in addition a
configuration file will be created and will contain information on (a) the
general NNA structure including input and output sizes, initial number of
layers and neurons, (b) Hardware target including reconfigurable hardware
device type, DSP count, memory size and number of blocks, (c) optimization
targets such as accuracy, throughput, latency, and floating-point operations.
Note that the configuration file can be generated automatically based on an
existing template configuration file and the dataset."

:class:`ECADConfig` is that file in object form: it can be loaded from / saved
to JSON, validated, and turned into the concrete objects the search needs
(search space, fitness objectives, engine configuration, devices).  The
``template_for_dataset`` constructor implements the automatic generation from
a dataset.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Iterable, Mapping

from ..datasets.base import Dataset, DatasetInfo
from ..hardware.device import FPGADevice, GPUDevice, fpga_device, gpu_device
from ..nn.training import TrainingConfig
from .engine import EngineConfig
from .errors import ConfigurationError
from .fitness import FitnessObjective
from .genome import CoDesignSearchSpace, HardwareSearchSpace, MLPSearchSpace
from .mutation import MutationConfig

__all__ = [
    "NNAStructureConfig",
    "HardwareTargetConfig",
    "OptimizationTargetConfig",
    "StoreConfig",
    "SurrogateConfig",
    "ServiceConfig",
    "ECADConfig",
    "parse_override",
    "parse_override_value",
]


@dataclass(frozen=True)
class NNAStructureConfig:
    """Section (a) of the configuration file: the NNA structure and bounds."""

    input_size: int
    output_size: int
    min_layers: int = 1
    max_layers: int = 4
    layer_sizes: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024)
    activations: tuple[str, ...] = ("relu", "tanh", "sigmoid", "elu")
    allow_bias_toggle: bool = True

    def __post_init__(self) -> None:
        if self.input_size <= 0:
            raise ConfigurationError(f"input_size must be positive, got {self.input_size}")
        if self.output_size <= 0:
            raise ConfigurationError(f"output_size must be positive, got {self.output_size}")

    def to_search_space(self) -> MLPSearchSpace:
        """Build the network half of the co-design search space."""
        return MLPSearchSpace(
            min_layers=self.min_layers,
            max_layers=self.max_layers,
            layer_sizes=tuple(self.layer_sizes),
            activations=tuple(self.activations),
            allow_bias_toggle=self.allow_bias_toggle,
        )


@dataclass(frozen=True)
class HardwareTargetConfig:
    """Section (b) of the configuration file: the hardware targets.

    Attributes
    ----------
    fpga:
        Catalogue name of the FPGA target (e.g. ``"arria10"``, ``"stratix10"``).
    ddr_banks:
        DDR banks populated on the board (overrides the catalogue default).
    clock_mhz:
        Overlay clock override; 0 keeps the catalogue value.
    gpu:
        Catalogue name of the GPU baseline, or empty to skip the GPU model.
    fpga_batch_sizes / gpu_batch_sizes:
        Batch-size choices exposed to the search.
    """

    fpga: str = "arria10"
    ddr_banks: int = 0
    clock_mhz: float = 0.0
    gpu: str = "titan_x"
    fpga_batch_sizes: tuple[int, ...] = (256, 512, 1024, 2048, 4096, 8192)
    gpu_batch_sizes: tuple[int, ...] = (64, 128, 256, 512, 1024)

    def fpga_device(self) -> FPGADevice:
        """Resolve the FPGA target, applying bank/clock overrides."""
        device = fpga_device(self.fpga)
        if self.ddr_banks > 0:
            device = device.with_ddr_banks(self.ddr_banks)
        if self.clock_mhz > 0:
            device = device.with_clock(self.clock_mhz)
        return device

    def gpu_device(self) -> GPUDevice | None:
        """Resolve the GPU baseline, or None when disabled."""
        if not self.gpu:
            return None
        return gpu_device(self.gpu)

    def to_search_space(self) -> HardwareSearchSpace:
        """Build the hardware half of the co-design search space."""
        return HardwareSearchSpace(batch_sizes=tuple(self.fpga_batch_sizes))


@dataclass(frozen=True)
class OptimizationTargetConfig:
    """Section (c) of the configuration file: what the search optimizes.

    Each target is ``(objective name, weight, maximize)``; the default is the
    joint accuracy + FPGA-throughput search used for Table IV and Figure 2.
    ``constraints`` are feasibility bounds on registered objectives
    (``"dsp_usage<=512"`` style): hardware budgets expressed as constraints
    instead of fitness penalties — violating candidates are infeasible and
    never selected, bred from, or admitted to the frontier.
    """

    objectives: tuple[tuple[str, float, bool], ...] = (
        ("accuracy", 1.0, True),
        ("fpga_throughput", 1.0, True),
    )
    constraints: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ConfigurationError("at least one optimization target is required")
        object.__setattr__(
            self, "constraints", tuple(str(c).strip() for c in self.constraints)
        )
        self.to_constraints()  # validate eagerly

    def to_fitness_objectives(self) -> list[FitnessObjective]:
        """Build the fitness-objective list for the evaluator."""
        objectives = []
        for name, weight, maximize in self.objectives:
            scale = 1.0 if name == "accuracy" else 0.0
            objectives.append(
                FitnessObjective(name=name, weight=float(weight), maximize=bool(maximize), scale=scale)
            )
        return objectives

    def to_constraints(self) -> list:
        """Parse the constraint expressions into ``Constraint`` objects."""
        from .objectives import parse_constraint

        return [parse_constraint(text) for text in self.constraints]

    def with_constraints(self, constraints: Iterable[str]) -> "OptimizationTargetConfig":
        """A copy of this target section with ``constraints`` replacing the old ones."""
        return OptimizationTargetConfig(
            objectives=self.objectives, constraints=tuple(constraints)
        )

    @classmethod
    def accuracy_only(cls) -> "OptimizationTargetConfig":
        """Target used for the Table I / Table II accuracy searches."""
        return cls(objectives=(("accuracy", 1.0, True),))

    @classmethod
    def accuracy_and_throughput(cls) -> "OptimizationTargetConfig":
        """Target used for the Table IV / Figure 2 co-design searches."""
        return cls(objectives=(("accuracy", 1.0, True), ("fpga_throughput", 1.0, True)))


@dataclass(frozen=True)
class StoreConfig:
    """Persistent evaluation-store settings (the ``store`` config section).

    Attributes
    ----------
    path:
        Location of the SQLite store file.  Empty (the default) disables the
        store entirely; the search then runs on the in-memory cache alone.
    enabled:
        Master switch — lets a config keep its ``path`` while temporarily
        opting out (e.g. for a bit-identity A/B run).
    readonly:
        Open the store for reads only: evaluations are served from it but
        fresh results are not written back.  Useful for sharing a reference
        store between many consumers.
    warm_start:
        Seed the initial population with up to this many of the best stored
        candidates matching the current problem digest (0 disables
        warm-starting; the run then stays bit-identical to a store-less run
        on a cold store).
    shards:
        Number of SQLite shard files the store spreads rows over (routed by
        problem-digest prefix).  ``1`` (the default) is the original
        single-file layout; ``N > 1`` opens/creates an N-shard directory so
        concurrent jobs on different problems never contend on one writer
        lock.  An existing sharded layout is auto-detected regardless of
        this value; pointing ``shards > 1`` at an existing single file
        fails with a hint to run ``ecad store migrate``.
    """

    path: str = ""
    enabled: bool = True
    readonly: bool = False
    warm_start: int = 0
    shards: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "path", str(self.path))
        if self.warm_start < 0:
            raise ConfigurationError(f"warm_start must be >= 0, got {self.warm_start}")
        if not (1 <= self.shards <= 1024):
            raise ConfigurationError(
                f"store shards must be in [1, 1024], got {self.shards}"
            )

    @property
    def active(self) -> bool:
        """Whether a store should actually be opened for this run."""
        return self.enabled and bool(self.path)

    @classmethod
    def from_dict(cls, data: Mapping) -> "StoreConfig":
        """Strict parse of the ``store`` configuration section."""
        _reject_unknown_keys(data, _STORE_KEYS, section="store")
        try:
            return cls(
                path=str(data.get("path", "")),
                enabled=bool(data.get("enabled", True)),
                readonly=bool(data.get("readonly", False)),
                warm_start=int(data.get("warm_start", 0)),
                shards=int(data.get("shards", 1)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed store section: {exc!r}") from exc


@dataclass(frozen=True)
class SurrogateConfig:
    """Surrogate-assisted search settings (the ``surrogate`` config section).

    When enabled, the ``surrogate`` strategy wraps the base evolutionary (or
    NSGA-II) search with an offspring pre-screen: a cheap regressor trained on
    the evaluation store's rows for the current problem predicts each
    objective with a split-conformal interval, and only candidates the model
    ranks highly (by predicted Pareto contribution) receive a real NN
    training.  Everything here shapes *which* candidates get real evaluations,
    never what one evaluation returns, so none of these fields participate in
    the store's problem digest.

    Attributes
    ----------
    enabled:
        Master switch — lets a config keep its surrogate tuning while
        temporarily opting out: with ``enabled`` false the ``surrogate``
        strategy runs its base strategy unchanged (the A/B arm of the
        ablation).  Runs not using the ``surrogate`` strategy never consult
        this section at all.
    base:
        The wrapped strategy: ``"evolutionary"`` (weighted-sum fitness) or
        ``"nsga2"`` (Pareto rank + crowding).
    min_rows:
        Minimum number of store-seeded evaluations before the model is
        trusted.  Real results observed during the run refine the model but
        never bootstrap one, so below this threshold the search runs exactly
        like the base strategy for its whole duration (the screen is a no-op
        on an empty or too-small store).
    pool_size:
        Offspring candidates bred per steady-state step once the screen is
        active; the surrogate ranks the pool and only the winner is really
        evaluated.
    exploration_fraction:
        Probability that a step ignores the ranking and promotes a random
        pool member instead — the screen always keeps exploring, so a wrong
        model cannot permanently blind the search.
    confidence:
        Nominal coverage of the split-conformal prediction intervals
        (e.g. 0.8 → 80% of true values fall inside the interval).  Ranking
        uses the optimistic end of each interval, so a candidate is only
        screened out when the model is confident it offers nothing.
    refit_interval:
        Refit the model after this many fresh real evaluations (online
        feedback; every real result becomes training data).
    rung_epochs:
        Successive-halving fidelity rungs: ascending low-epoch budgets the
        screened survivors are trained at before the full-budget evaluation
        (empty disables the fidelity lever).  Requires an evaluator exposing
        a mutable ``training_config`` (the master does).
    rung_survivors:
        Pool members entering the first rung; each rung promotes the top
        ``promote_fraction`` until one survivor gets the full budget.
    promote_fraction:
        Fraction of candidates promoted out of each rung (at least one
        always survives).
    """

    enabled: bool = True
    base: str = "evolutionary"
    min_rows: int = 24
    pool_size: int = 8
    exploration_fraction: float = 0.15
    confidence: float = 0.8
    refit_interval: int = 8
    rung_epochs: tuple[int, ...] = ()
    rung_survivors: int = 2
    promote_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.base not in ("evolutionary", "weighted_sum", "default", "nsga2"):
            raise ConfigurationError(
                f"surrogate.base must be 'evolutionary' or 'nsga2', got {self.base!r}"
            )
        if self.min_rows < 2:
            raise ConfigurationError(f"surrogate.min_rows must be >= 2, got {self.min_rows}")
        if self.pool_size < 2:
            raise ConfigurationError(f"surrogate.pool_size must be >= 2, got {self.pool_size}")
        if not 0.0 <= self.exploration_fraction <= 1.0:
            raise ConfigurationError(
                "surrogate.exploration_fraction must be in [0, 1], "
                f"got {self.exploration_fraction}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"surrogate.confidence must be in (0, 1), got {self.confidence}"
            )
        if self.refit_interval < 1:
            raise ConfigurationError(
                f"surrogate.refit_interval must be >= 1, got {self.refit_interval}"
            )
        object.__setattr__(self, "rung_epochs", tuple(int(e) for e in self.rung_epochs))
        if any(e <= 0 for e in self.rung_epochs):
            raise ConfigurationError(
                f"surrogate.rung_epochs must all be positive, got {self.rung_epochs}"
            )
        if list(self.rung_epochs) != sorted(self.rung_epochs):
            raise ConfigurationError(
                f"surrogate.rung_epochs must be ascending, got {self.rung_epochs}"
            )
        if self.rung_survivors < 1:
            raise ConfigurationError(
                f"surrogate.rung_survivors must be >= 1, got {self.rung_survivors}"
            )
        if not 0.0 < self.promote_fraction <= 1.0:
            raise ConfigurationError(
                f"surrogate.promote_fraction must be in (0, 1], got {self.promote_fraction}"
            )

    @property
    def active(self) -> bool:
        """Whether the surrogate screen should be built for this run."""
        return self.enabled

    @classmethod
    def from_dict(cls, data: Mapping) -> "SurrogateConfig":
        """Strict parse of the ``surrogate`` configuration section."""
        _reject_unknown_keys(data, _SURROGATE_KEYS, section="surrogate")
        try:
            return cls(
                enabled=bool(data.get("enabled", True)),
                base=str(data.get("base", "evolutionary")),
                min_rows=int(data.get("min_rows", 24)),
                pool_size=int(data.get("pool_size", 8)),
                exploration_fraction=float(data.get("exploration_fraction", 0.15)),
                confidence=float(data.get("confidence", 0.8)),
                refit_interval=int(data.get("refit_interval", 8)),
                rung_epochs=tuple(int(e) for e in data.get("rung_epochs", ())),
                rung_survivors=int(data.get("rung_survivors", 2)),
                promote_fraction=float(data.get("promote_fraction", 0.5)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed surrogate section: {exc!r}") from exc


@dataclass(frozen=True)
class ServiceConfig:
    """Settings of the long-lived ``ecad serve`` co-design service.

    Attributes
    ----------
    host / port:
        Bind address of the HTTP API.  Port 0 asks the OS for a free
        ephemeral port (useful for tests and CI).
    data_dir:
        Root directory of everything the service persists: the job queue
        database and one artifact directory per job
        (``<data_dir>/jobs/<job_id>/``).
    queue_path:
        Location of the SQLite job-queue database.  Empty (the default)
        derives ``<data_dir>/queue.sqlite``.
    store_path:
        Persistent :class:`~repro.store.EvaluationStore` shared by every job
        the service runs; empty disables the shared store.
    store_shards:
        Shard count of the shared store (see ``StoreConfig.shards``) — with
        ``max_concurrent_jobs > 1`` a sharded store lets jobs on different
        problems write without contending on one SQLite writer lock.
    max_concurrent_jobs:
        How many jobs the scheduler keeps running at once.  Queued jobs wait
        until a slot frees up.
    backend / eval_workers:
        Default execution backend and candidate-evaluation parallelism for
        jobs that do not choose their own.  The service owns one warm
        backend pool of ``eval_workers`` workers shared by all jobs.
    long_poll_timeout:
        Upper bound (seconds) on how long ``GET /jobs/{id}/frontier`` holds
        a long-poll open before answering with no new events.
    """

    host: str = "127.0.0.1"
    port: int = 8282
    data_dir: str = "ecad-service"
    queue_path: str = ""
    store_path: str = ""
    store_shards: int = 1
    max_concurrent_jobs: int = 1
    backend: str = "threads"
    eval_workers: int = 4
    long_poll_timeout: float = 30.0

    def __post_init__(self) -> None:
        if not (0 <= self.port <= 65535):
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port}")
        if self.max_concurrent_jobs < 1:
            raise ConfigurationError(
                f"max_concurrent_jobs must be >= 1, got {self.max_concurrent_jobs}"
            )
        if self.eval_workers < 1:
            raise ConfigurationError(f"eval_workers must be >= 1, got {self.eval_workers}")
        if not (1 <= self.store_shards <= 1024):
            raise ConfigurationError(
                f"store_shards must be in [1, 1024], got {self.store_shards}"
            )
        if self.long_poll_timeout <= 0:
            raise ConfigurationError(
                f"long_poll_timeout must be positive, got {self.long_poll_timeout}"
            )

    @property
    def resolved_queue_path(self) -> Path:
        """The queue database location, derived from ``data_dir`` when unset."""
        return Path(self.queue_path) if self.queue_path else Path(self.data_dir) / "queue.sqlite"

    @property
    def jobs_dir(self) -> Path:
        """Root of the per-job artifact directories."""
        return Path(self.data_dir) / "jobs"

    # ---------------------------------------------------------------- JSON
    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ServiceConfig":
        """Strict parse; unknown keys are rejected."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"malformed service configuration: expected an object, got {type(data).__name__}"
            )
        _reject_unknown_keys(data, _SERVICE_KEYS, section="service")
        try:
            return cls(
                host=str(data.get("host", "127.0.0.1")),
                port=int(data.get("port", 8282)),
                data_dir=str(data.get("data_dir", "ecad-service")),
                queue_path=str(data.get("queue_path", "")),
                store_path=str(data.get("store_path", "")),
                store_shards=int(data.get("store_shards", 1)),
                max_concurrent_jobs=int(data.get("max_concurrent_jobs", 1)),
                backend=str(data.get("backend", "threads")),
                eval_workers=int(data.get("eval_workers", 4)),
                long_poll_timeout=float(data.get("long_poll_timeout", 30.0)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed service configuration: {exc!r}") from exc

    def save(self, path: str | Path) -> None:
        """Write the configuration to a JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "ServiceConfig":
        """Read a configuration from a JSON file."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"service configuration file not found: {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"service configuration {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)


def _reject_unknown_keys(data: Mapping, allowed: set[str], section: str) -> None:
    """Raise when ``data`` contains keys outside ``allowed``."""
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown {section} key(s): {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


def parse_override_value(text: str):
    """Parse a ``--set`` value: JSON when possible, bare string otherwise."""
    try:
        return json.loads(text)
    except (json.JSONDecodeError, TypeError):
        return text


def parse_override(assignment: str) -> tuple[str, object]:
    """Split one ``key=value`` assignment into a dotted key and parsed value."""
    key, separator, raw = str(assignment).partition("=")
    key = key.strip()
    if not separator or not key:
        raise ConfigurationError(
            f"override {assignment!r} is not of the form key=value (e.g. nna.max_layers=6)"
        )
    return key, parse_override_value(raw)


@dataclass(frozen=True)
class ECADConfig:
    """The full ECAD configuration file.

    ``backend`` ("serial", "threads" or "processes") selects how candidate
    evaluations are dispatched, ``eval_parallelism`` bounds how many are
    kept in flight at once (1 keeps the reproducible serial search), and
    ``eval_batch_size`` fuses that many offspring into one batched dispatch
    so workers can run fused GEMM training and vectorized hardware lookups
    over whole candidate groups (results stay bit-identical).
    ``strategy`` names the registered search strategy driving the run:
    ``"evolutionary"`` (the default weighted-sum steady-state search),
    ``"nsga2"`` (Pareto-native multi-objective search), ``"random"``, or
    ``"surrogate"`` (the store-trained offspring pre-screen configured by
    the ``surrogate`` section, :class:`SurrogateConfig`).
    ``nsga2_tournament_size`` sets the NSGA-II selection pressure (default:
    the classic binary tournament; raise it to match a scalarized baseline's
    tournament when comparing strategies at equal budgets).
    ``store`` configures the persistent cross-run evaluation store
    (:class:`StoreConfig`): when its ``path`` is set, evaluations are served
    from / written to an SQLite file shared across runs, and ``warm_start``
    seeds the initial population from the best stored candidates.
    """

    dataset_name: str
    nna: NNAStructureConfig
    hardware: HardwareTargetConfig = field(default_factory=HardwareTargetConfig)
    optimization: OptimizationTargetConfig = field(default_factory=OptimizationTargetConfig)
    population_size: int = 24
    max_evaluations: int = 200
    seed: int | None = 0
    evaluation_protocol: str = "1-fold"
    num_folds: int = 10
    training_epochs: int = 20
    training_batch_size: int = 32
    dataset_csv: str = ""
    dataset_test_csv: str = ""
    backend: str = "serial"
    eval_parallelism: int = 1
    eval_batch_size: int = 1
    strategy: str = "evolutionary"
    nsga2_tournament_size: int = 2
    store: StoreConfig = field(default_factory=StoreConfig)
    surrogate: SurrogateConfig = field(default_factory=SurrogateConfig)

    def __post_init__(self) -> None:
        if self.evaluation_protocol not in ("1-fold", "10-fold"):
            raise ConfigurationError(
                f"evaluation_protocol must be '1-fold' or '10-fold', got {self.evaluation_protocol!r}"
            )
        # Imported lazily: repro.workers depends on repro.core at import time.
        from ..workers.backends import BACKENDS, available_backends

        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; registered: {', '.join(available_backends())}"
            )
        from .strategy import STRATEGIES, available_strategies

        if self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown search strategy {self.strategy!r}; "
                f"registered: {', '.join(available_strategies())}"
            )
        if self.eval_parallelism < 1:
            raise ConfigurationError(
                f"eval_parallelism must be >= 1, got {self.eval_parallelism}"
            )
        if self.eval_batch_size < 1:
            raise ConfigurationError(
                f"eval_batch_size must be >= 1, got {self.eval_batch_size}"
            )
        if self.nsga2_tournament_size < 2:
            raise ConfigurationError(
                f"nsga2_tournament_size must be >= 2, got {self.nsga2_tournament_size}"
            )
        if self.num_folds < 2:
            raise ConfigurationError(f"num_folds must be >= 2, got {self.num_folds}")
        if self.training_epochs <= 0:
            raise ConfigurationError(f"training_epochs must be positive, got {self.training_epochs}")
        if self.training_batch_size <= 0:
            raise ConfigurationError(
                f"training_batch_size must be positive, got {self.training_batch_size}"
            )

    # ----------------------------------------------------------- factories
    @classmethod
    def template_for_dataset(
        cls,
        dataset: Dataset | DatasetInfo,
        fpga: str = "arria10",
        gpu: str = "titan_x",
        optimization: OptimizationTargetConfig | None = None,
        **overrides,
    ) -> "ECADConfig":
        """Automatically generate a configuration from a dataset.

        Mirrors the paper's note that "the configuration file can be generated
        automatically based on an existing template configuration file and the
        dataset": the NNA input/output sizes come from the dataset, the
        evaluation protocol follows the dataset's pre-split status, and the
        layer-size menu is clipped to sensible values for the input width.
        """
        info = dataset.info() if isinstance(dataset, Dataset) else dataset
        protocol = overrides.pop(
            "evaluation_protocol", "1-fold" if info.has_test_split else "10-fold"
        )
        nna = NNAStructureConfig(input_size=info.num_features, output_size=info.num_classes)
        hardware = HardwareTargetConfig(fpga=fpga, gpu=gpu)
        return cls(
            dataset_name=info.name,
            nna=nna,
            hardware=hardware,
            optimization=optimization or OptimizationTargetConfig(),
            evaluation_protocol=protocol,
            **overrides,
        )

    # --------------------------------------------------------- conversions
    def to_search_space(self) -> CoDesignSearchSpace:
        """Build the joint co-design search space."""
        return CoDesignSearchSpace(
            mlp_space=self.nna.to_search_space(),
            hardware_space=self.hardware.to_search_space(),
            gpu_batch_sizes=tuple(self.hardware.gpu_batch_sizes),
        )

    def to_engine_config(self) -> EngineConfig:
        """Build the evolutionary-engine configuration."""
        return EngineConfig(
            population_size=self.population_size,
            max_evaluations=self.max_evaluations,
            seed=self.seed,
            eval_parallelism=self.eval_parallelism,
            eval_batch_size=self.eval_batch_size,
            nsga2_tournament_size=self.nsga2_tournament_size,
        )

    def to_training_config(self) -> TrainingConfig:
        """Build the candidate-training configuration."""
        return TrainingConfig(epochs=self.training_epochs, batch_size=self.training_batch_size)

    def to_mutation_config(self) -> MutationConfig:
        """Build mutation weights appropriate for the optimization targets."""
        names = {name for name, _, _ in self.optimization.objectives}
        hardware_objectives = {
            "fpga_throughput",
            "fpga_latency",
            "fpga_efficiency",
            "fpga_effective_gflops",
            "gpu_throughput",
            "dsp_usage",
        }
        if names & hardware_objectives:
            return MutationConfig()
        return MutationConfig.accuracy_only()

    # ---------------------------------------------------------------- JSON
    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        data = asdict(self)
        data["nna"]["layer_sizes"] = list(self.nna.layer_sizes)
        data["nna"]["activations"] = list(self.nna.activations)
        data["hardware"]["fpga_batch_sizes"] = list(self.hardware.fpga_batch_sizes)
        data["hardware"]["gpu_batch_sizes"] = list(self.hardware.gpu_batch_sizes)
        data["optimization"]["objectives"] = [list(obj) for obj in self.optimization.objectives]
        data["optimization"]["constraints"] = list(self.optimization.constraints)
        data["surrogate"]["rung_epochs"] = list(self.surrogate.rung_epochs)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ECADConfig":
        """Inverse of :meth:`to_dict`.

        Unknown keys are rejected (at the top level and inside each section)
        so that typos in hand-edited configuration files fail loudly instead
        of silently falling back to defaults.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"malformed configuration: expected an object, got {type(data).__name__}"
            )
        try:
            nna_data = dict(data["nna"])
            hardware_data = dict(data.get("hardware", {}))
            optimization_data = dict(data.get("optimization", {}))
            store_data = dict(data.get("store", {}))
            surrogate_data = dict(data.get("surrogate", {}))
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed configuration: {exc}") from exc
        _reject_unknown_keys(data, _TOP_LEVEL_KEYS, section="configuration")
        _reject_unknown_keys(nna_data, _NNA_KEYS, section="nna")
        _reject_unknown_keys(hardware_data, _HARDWARE_KEYS, section="hardware")
        _reject_unknown_keys(optimization_data, _OPTIMIZATION_KEYS, section="optimization")
        try:
            nna = NNAStructureConfig(
                input_size=int(nna_data["input_size"]),
                output_size=int(nna_data["output_size"]),
                min_layers=int(nna_data.get("min_layers", 1)),
                max_layers=int(nna_data.get("max_layers", 4)),
                layer_sizes=tuple(int(v) for v in nna_data.get("layer_sizes", (16, 32, 64, 128, 256, 512, 1024))),
                activations=tuple(nna_data.get("activations", ("relu", "tanh", "sigmoid", "elu"))),
                allow_bias_toggle=bool(nna_data.get("allow_bias_toggle", True)),
            )
            hardware = HardwareTargetConfig(
                fpga=str(hardware_data.get("fpga", "arria10")),
                ddr_banks=int(hardware_data.get("ddr_banks", 0)),
                clock_mhz=float(hardware_data.get("clock_mhz", 0.0)),
                gpu=str(hardware_data.get("gpu", "titan_x")),
                fpga_batch_sizes=tuple(int(v) for v in hardware_data.get("fpga_batch_sizes", (256, 512, 1024, 2048, 4096, 8192))),
                gpu_batch_sizes=tuple(int(v) for v in hardware_data.get("gpu_batch_sizes", (64, 128, 256, 512, 1024))),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed configuration: {exc!r}") from exc
        objectives_data = optimization_data.get("objectives", [["accuracy", 1.0, True], ["fpga_throughput", 1.0, True]])
        try:
            objectives = tuple((str(n), float(w), bool(m)) for n, w, m in objectives_data)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed optimization objectives {objectives_data!r}: "
                "expected [name, weight, maximize] triples"
            ) from exc
        constraints_data = optimization_data.get("constraints", [])
        if isinstance(constraints_data, str):
            constraints_data = [constraints_data]
        optimization = OptimizationTargetConfig(
            objectives=objectives,
            constraints=tuple(str(c) for c in constraints_data),
        )
        if "dataset_name" not in data:
            raise ConfigurationError("malformed configuration: missing 'dataset_name'")
        return cls(
            dataset_name=str(data["dataset_name"]),
            nna=nna,
            hardware=hardware,
            optimization=optimization,
            population_size=int(data.get("population_size", 24)),
            max_evaluations=int(data.get("max_evaluations", 200)),
            seed=data.get("seed", 0),
            evaluation_protocol=str(data.get("evaluation_protocol", "1-fold")),
            num_folds=int(data.get("num_folds", 10)),
            training_epochs=int(data.get("training_epochs", 20)),
            training_batch_size=int(data.get("training_batch_size", 32)),
            dataset_csv=str(data.get("dataset_csv", "")),
            dataset_test_csv=str(data.get("dataset_test_csv", "")),
            backend=str(data.get("backend", "serial")),
            eval_parallelism=int(data.get("eval_parallelism", 1)),
            eval_batch_size=int(data.get("eval_batch_size", 1)),
            strategy=str(data.get("strategy", "evolutionary")),
            nsga2_tournament_size=int(data.get("nsga2_tournament_size", 2)),
            store=StoreConfig.from_dict(store_data),
            surrogate=SurrogateConfig.from_dict(surrogate_data),
        )

    def with_overrides(
        self, assignments: Mapping[str, object] | Iterable[str]
    ) -> "ECADConfig":
        """Apply dotted-key overrides and return the re-validated configuration.

        ``assignments`` is either a mapping of dotted keys to values
        (``{"nna.max_layers": 6}``) or an iterable of CLI-style
        ``"key=value"`` strings (values parsed as JSON when possible).  This
        is the machinery behind the ``--set`` flag and the experiment specs'
        ``overrides`` section; unknown keys are rejected.
        """
        if isinstance(assignments, Mapping):
            pairs = [(str(key), value) for key, value in assignments.items()]
        else:
            pairs = [parse_override(assignment) for assignment in assignments]
        data = self.to_dict()
        for dotted_key, value in pairs:
            parts = [part for part in dotted_key.split(".") if part]
            if not parts:
                raise ConfigurationError(f"empty override key in {dotted_key!r}")
            node = data
            for part in parts[:-1]:
                if not isinstance(node.get(part), dict):
                    raise ConfigurationError(
                        f"unknown configuration key {dotted_key!r} (no section {part!r})"
                    )
                node = node[part]
            if parts[-1] not in node:
                raise ConfigurationError(
                    f"unknown configuration key {dotted_key!r}; "
                    f"known keys here: {', '.join(sorted(node))}"
                )
            node[parts[-1]] = value
        return ECADConfig.from_dict(data)

    def save(self, path: str | Path) -> None:
        """Write the configuration to a JSON file."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "ECADConfig":
        """Read a configuration from a JSON file."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"configuration file not found: {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"configuration file {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


#: Allowed key sets for strict :meth:`ECADConfig.from_dict` parsing, derived
#: from the dataclass fields so they never drift from the schema.
_TOP_LEVEL_KEYS = {f.name for f in fields(ECADConfig)}
_NNA_KEYS = {f.name for f in fields(NNAStructureConfig)}
_HARDWARE_KEYS = {f.name for f in fields(HardwareTargetConfig)}
_OPTIMIZATION_KEYS = {f.name for f in fields(OptimizationTargetConfig)}
_STORE_KEYS = {f.name for f in fields(StoreConfig)}
_SURROGATE_KEYS = {f.name for f in fields(SurrogateConfig)}
_SERVICE_KEYS = {f.name for f in fields(ServiceConfig)}
