"""Streaming Pareto-frontier archive, updated while the search runs.

Section III-B: *"the Pareto frontiers that result after parsing the
evolutionary design space define what the optimal solution is ... Having the
data to make decisions based on trade-offs is highly valuable."*  Instead of
re-deriving the frontier from the full history after the run,
:class:`FrontierArchive` rides the engine's callback bus (serial and
asynchronous paths alike) and maintains the non-dominated set incrementally:
every evaluation either joins the frontier (evicting the members it
dominates) or is discarded, and each change is recorded as a
:class:`FrontierSnapshot` so the frontier's growth over the run can be
reported.  Its final state is exactly the Pareto frontier of the run's
unique successful evaluations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from .callbacks import Callback
from .candidate import CandidateEvaluation
from .fitness import FitnessResult
from .objectives import (
    Constraint,
    ObjectiveSpec,
    ObjectiveVector,
    build_objective_vector,
    resolve_constraints,
)

__all__ = ["FrontierSnapshot", "FrontierMember", "FrontierArchive"]


@dataclass(frozen=True)
class FrontierSnapshot:
    """One frontier change: when it happened and how big the frontier was.

    ``best_accuracy`` is the running maximum accuracy over every feasible,
    successful evaluation seen so far (not just frontier members); arena
    leaderboards derive evals-to-target from it.
    """

    step: int
    size: int
    evaluations_seen: int
    best_accuracy: float = 0.0


@dataclass(frozen=True)
class FrontierMember:
    """One archived candidate: its evaluation plus its objective vector."""

    evaluation: CandidateEvaluation
    vector: ObjectiveVector


class FrontierArchive(Callback):
    """Maintains the running Pareto frontier over configured objectives.

    Parameters
    ----------
    objectives:
        Objective specs defining the frontier's axes (order matters for
        reporting; the first objective is the primary sort key).
    constraints:
        Feasibility constraints; infeasible candidates never enter the
        archive.

    The archive is an engine :class:`~repro.core.callbacks.Callback`: the
    engine feeds it through ``on_evaluation`` on both the serial and the
    asynchronous steady-state paths, so the frontier is live *during* the
    run.  It can also be fed directly via :meth:`observe` (e.g. by
    ``RandomSearch``).  Updates are lock-protected, and duplicate genomes
    (cache hits re-entering the history) are ignored so the final state
    matches post-hoc extraction over the run's unique evaluations.
    """

    def __init__(
        self,
        objectives: Sequence[ObjectiveSpec],
        constraints: Sequence[Constraint | str] = (),
    ) -> None:
        if not objectives:
            raise ValueError("a frontier archive needs at least one objective")
        self.objectives = list(objectives)
        self.constraints = resolve_constraints(constraints)
        self.snapshots: list[FrontierSnapshot] = []
        self.updates = 0
        self.evaluations_seen = 0
        self._best_accuracy = 0.0
        self._members: dict[str, FrontierMember] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- callback
    def on_evaluation(
        self, evaluation: CandidateEvaluation, fitness: FitnessResult, step: int
    ) -> None:
        """Engine callback: offer each scored evaluation to the archive.

        Parameters
        ----------
        evaluation:
            The candidate that just finished evaluating.
        fitness:
            Its fitness result; the attached objective vector is reused when
            it was scored under the archive's own objectives, otherwise the
            vector is rebuilt from the evaluation.
        step:
            The engine step the evaluation landed on (recorded in
            snapshots).
        """
        vector = fitness.vector if fitness is not None else None
        if vector is not None and tuple(vector.names) != tuple(
            spec.name for spec in self.objectives
        ):
            vector = None  # scored under different objectives; rebuild below
        self.observe(evaluation, step=step, vector=vector)

    # -------------------------------------------------------------- updates
    def observe(
        self,
        evaluation: CandidateEvaluation,
        step: int = 0,
        vector: ObjectiveVector | None = None,
    ) -> bool:
        """Offer one evaluation to the archive.

        Parameters
        ----------
        evaluation:
            The candidate to consider.  Failed, infeasible and duplicate
            candidates never enter the archive.
        step:
            Search step recorded in the snapshot when the frontier changes.
        vector:
            Pre-computed objective vector; when ``None`` (or computed under
            different objectives) one is built from the evaluation.

        Returns
        -------
        bool
            True when the frontier changed (the candidate joined it,
            possibly evicting dominated members).
        """
        with self._lock:
            self.evaluations_seen += 1
            if evaluation.failed:
                return False
            if vector is None:
                vector = build_objective_vector(evaluation, self.objectives, self.constraints)
            if not vector.feasible:
                return False
            accuracy = float(getattr(evaluation, "accuracy", 0.0) or 0.0)
            if accuracy > self._best_accuracy:
                self._best_accuracy = accuracy
            key = evaluation.genome.cache_key()
            if key in self._members:
                return False
            if any(member.vector.dominates(vector) for member in self._members.values()):
                return False
            dominated = [
                existing_key
                for existing_key, member in self._members.items()
                if vector.dominates(member.vector)
            ]
            for existing_key in dominated:
                del self._members[existing_key]
            self._members[key] = FrontierMember(evaluation=evaluation, vector=vector)
            self.updates += 1
            self.snapshots.append(
                FrontierSnapshot(
                    step=int(step),
                    size=len(self._members),
                    evaluations_seen=self.evaluations_seen,
                    best_accuracy=self._best_accuracy,
                )
            )
            return True

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    @property
    def best_accuracy(self) -> float:
        """Best accuracy over every feasible, successful evaluation seen."""
        with self._lock:
            return self._best_accuracy

    @property
    def objective_names(self) -> list[str]:
        """Names of the frontier's objectives, in order."""
        return [spec.name for spec in self.objectives]

    def members(self) -> list[FrontierMember]:
        """Current frontier members.

        Returns
        -------
        list[FrontierMember]
            Mutually non-dominated members, sorted by the first objective's
            canonical (maximization-form) value, best first.
        """
        with self._lock:
            members = list(self._members.values())
        return sorted(members, key=lambda m: m.vector.canonical[0], reverse=True)

    def frontier(self) -> list[CandidateEvaluation]:
        """Frontier evaluations, same order as :meth:`members`."""
        return [member.evaluation for member in self.members()]

    def vectors(self) -> list[ObjectiveVector]:
        """Frontier objective vectors, same order as :meth:`members`."""
        return [member.vector for member in self.members()]

    def rows(self) -> list[dict]:
        """Flat report rows (JSON/CSV friendly).

        Returns
        -------
        list[dict]
            One row per frontier member: the raw objective values merged
            with the candidate summary
            (:meth:`~repro.core.candidate.CandidateEvaluation.summary`).
        """
        rows = []
        for member in self.members():
            row = dict(member.vector.as_dict())
            row.update(member.evaluation.summary())
            rows.append(row)
        return rows
