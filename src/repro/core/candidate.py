"""The evaluated-candidate record exchanged between workers, cache and engine.

A :class:`CandidateEvaluation` is what the master process hands back to the
evolutionary engine for each co-design genome: the raw measurements from every
worker that looked at the candidate (training accuracy from the simulation
worker, FPGA overlay metrics from the hardware database worker, GPU metrics
from the simulation worker, synthesis metrics from the physical worker).
Fitness functions consume this record; they never talk to workers directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.results import HardwareMetrics
from ..hardware.synthesis import SynthesisReport
from .genome import CoDesignGenome

__all__ = ["CandidateEvaluation"]


@dataclass(frozen=True)
class CandidateEvaluation:
    """All raw measurements for one co-design candidate.

    Attributes
    ----------
    genome:
        The candidate that was evaluated.
    accuracy:
        Classification accuracy under the experiment's evaluation protocol
        (10-fold mean or single-fold test accuracy).
    accuracy_std:
        Standard deviation across folds (0 for single-fold evaluation).
    parameter_count:
        Trainable parameter count of the network.
    fpga_metrics:
        Overlay performance estimate from the hardware database worker, or
        ``None`` when the search does not target an FPGA.
    gpu_metrics:
        GPU baseline estimate from the simulation worker, or ``None`` when no
        GPU baseline was requested.
    synthesis:
        Resource/Fmax estimate from the physical worker, or ``None``.
    train_seconds:
        Wall-clock time spent training/evaluating the network.
    evaluation_seconds:
        End-to-end wall-clock time of the whole candidate evaluation (the
        quantity averaged in Table III).
    from_cache:
        Whether this record was served from the evaluation cache instead of
        being recomputed.
    error:
        Non-empty when the evaluation failed; such candidates receive the
        worst possible fitness instead of crashing the search.
    extras:
        Free-form diagnostics from workers.
    """

    genome: CoDesignGenome
    accuracy: float = 0.0
    accuracy_std: float = 0.0
    parameter_count: int = 0
    fpga_metrics: HardwareMetrics | None = None
    gpu_metrics: HardwareMetrics | None = None
    synthesis: SynthesisReport | None = None
    train_seconds: float = 0.0
    evaluation_seconds: float = 0.0
    from_cache: bool = False
    error: str = ""
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.error:
            if not 0.0 <= self.accuracy <= 1.0:
                raise ValueError(f"accuracy must be in [0, 1], got {self.accuracy}")
            if self.accuracy_std < 0:
                raise ValueError(f"accuracy_std must be >= 0, got {self.accuracy_std}")
        if self.parameter_count < 0:
            raise ValueError(f"parameter_count must be >= 0, got {self.parameter_count}")
        if self.train_seconds < 0:
            raise ValueError(f"train_seconds must be >= 0, got {self.train_seconds}")
        if self.evaluation_seconds < 0:
            raise ValueError(f"evaluation_seconds must be >= 0, got {self.evaluation_seconds}")

    @property
    def failed(self) -> bool:
        """Whether the evaluation failed."""
        return bool(self.error)

    @property
    def fpga_outputs_per_second(self) -> float:
        """FPGA throughput, or 0 when no FPGA metrics are present."""
        return self.fpga_metrics.outputs_per_second if self.fpga_metrics else 0.0

    @property
    def gpu_outputs_per_second(self) -> float:
        """GPU throughput, or 0 when no GPU metrics are present."""
        return self.gpu_metrics.outputs_per_second if self.gpu_metrics else 0.0

    def as_cache_copy(self) -> "CandidateEvaluation":
        """Return a copy flagged as served from the cache."""
        return CandidateEvaluation(
            genome=self.genome,
            accuracy=self.accuracy,
            accuracy_std=self.accuracy_std,
            parameter_count=self.parameter_count,
            fpga_metrics=self.fpga_metrics,
            gpu_metrics=self.gpu_metrics,
            synthesis=self.synthesis,
            train_seconds=self.train_seconds,
            evaluation_seconds=self.evaluation_seconds,
            from_cache=True,
            error=self.error,
            extras=dict(self.extras),
        )

    def summary(self) -> dict:
        """Flat dictionary used by reports and the search history."""
        return {
            "cache_key": self.genome.cache_key(),
            "hidden_layers": list(self.genome.mlp.hidden_layers),
            "activations": list(self.genome.mlp.activations),
            "use_bias": self.genome.mlp.use_bias,
            "grid": self.genome.hardware.grid.to_dict(),
            "fpga_batch": self.genome.hardware.batch_size,
            "gpu_batch": self.genome.gpu_batch_size,
            "accuracy": self.accuracy,
            "accuracy_std": self.accuracy_std,
            "parameter_count": self.parameter_count,
            "fpga_outputs_per_second": self.fpga_outputs_per_second,
            "gpu_outputs_per_second": self.gpu_outputs_per_second,
            "fpga_efficiency": self.fpga_metrics.efficiency if self.fpga_metrics else 0.0,
            "gpu_efficiency": self.gpu_metrics.efficiency if self.gpu_metrics else 0.0,
            "train_seconds": self.train_seconds,
            "evaluation_seconds": self.evaluation_seconds,
            "from_cache": self.from_cache,
            "error": self.error,
        }
