"""Typed multi-objective model: registered objectives, specs, vectors, constraints.

Section III-A of the paper: *"Each candidate in the population is evaluated
according to configurable and potentially multiple criteria, for example
accuracy alone or accuracy vs throughput."*  The paper's headline results are
accuracy-vs-throughput *frontiers*, so multi-objective data is first-class
here rather than an implementation detail of the scalarized fitness:

* the objective registry (:data:`OBJECTIVES`, :func:`register_objective`) maps
  stable names to functions over :class:`~repro.core.candidate.CandidateEvaluation`,
* :class:`ObjectiveSpec` is one named objective with a direction, weight and
  optional normalization scale (``FitnessObjective`` in older code),
* :class:`Constraint` is a feasibility bound on a registered objective
  (``dsp_usage<=512`` style) — budgets are constraints, not penalty hacks,
* :class:`ObjectiveVector` is the direction-aware, constraint-aware value
  vector of one candidate, with Deb-style constrained Pareto dominance.

:class:`~repro.core.fitness.FitnessEvaluator` produces
:class:`ObjectiveVector`s natively; Pareto utilities
(:mod:`repro.core.pareto`), the NSGA-II selection scheme and the streaming
:class:`~repro.core.frontier.FrontierArchive` all consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from ..registry import Registry, normalize_key
from .candidate import CandidateEvaluation
from .errors import ConfigurationError

__all__ = [
    "OBJECTIVES",
    "ObjectiveFunction",
    "register_objective",
    "available_objectives",
    "get_objective",
    "objective_default_maximize",
    "ObjectiveSpec",
    "Constraint",
    "parse_constraint",
    "resolve_constraints",
    "ObjectiveVector",
    "build_objective_vector",
]

#: An objective maps an evaluated candidate to a raw scalar value.
ObjectiveFunction = Callable[[CandidateEvaluation], float]

#: The shared objective registry; plugins may register additional objectives.
OBJECTIVES: Registry[ObjectiveFunction] = Registry("objective")

#: Default optimization direction per registered objective (True = maximize).
_DEFAULT_MAXIMIZE: dict[str, bool] = {}


def register_objective(
    name: str,
    function: ObjectiveFunction,
    overwrite: bool = False,
    maximize_by_default: bool = True,
) -> None:
    """Register a new objective under ``name``.

    Parameters
    ----------
    name:
        Stable identifier usable from configuration files.
    function:
        Callable mapping a :class:`CandidateEvaluation` to a float.
    overwrite:
        Allow replacing an existing registration (off by default so typos do
        not silently shadow built-ins).
    maximize_by_default:
        Direction used when the objective is named without an explicit
        direction (e.g. in an experiment spec's objective grid); pass False
        for cost-style objectives such as latency.
    """
    try:
        OBJECTIVES.register(name, function, overwrite=overwrite)
    except ValueError as exc:
        raise ConfigurationError(str(exc)) from exc
    _DEFAULT_MAXIMIZE[OBJECTIVES.canonical_name(name)] = bool(maximize_by_default)


def objective_default_maximize(name: str) -> bool:
    """Whether a registered objective is maximized when no direction is given.

    Parameters
    ----------
    name:
        Registered objective name (experiment specs name objectives without
        an explicit direction, e.g. ``"accuracy+fpga_latency"``).

    Returns
    -------
    bool
        The direction declared at registration time (True = maximize).

    Raises
    ------
    ConfigurationError
        For unknown objective names.
    """
    get_objective(name)  # raise the usual error for unknown names
    return _DEFAULT_MAXIMIZE.get(OBJECTIVES.canonical_name(name), True)


def available_objectives() -> list[str]:
    """Sorted names of all registered objectives."""
    return OBJECTIVES.available()


def get_objective(name: str) -> ObjectiveFunction:
    """Look up a registered objective by name.

    Parameters
    ----------
    name:
        Registered objective name (registry-normalized, so ``"FPGA-Throughput"``
        resolves to ``fpga_throughput``).

    Returns
    -------
    ObjectiveFunction
        The registered callable ``CandidateEvaluation -> float``.

    Raises
    ------
    ConfigurationError
        For unknown objective names (the message lists what is available).
    """
    try:
        return OBJECTIVES.resolve(name)
    except KeyError as exc:
        # The registry message already lists what is available and suggests
        # near-miss names; re-raising it verbatim keeps the hint.
        raise ConfigurationError(str(exc.args[0])) from exc


# ---------------------------------------------------------------------------
# Built-in objectives
# ---------------------------------------------------------------------------


def _accuracy(evaluation: CandidateEvaluation) -> float:
    return evaluation.accuracy


def _fpga_throughput(evaluation: CandidateEvaluation) -> float:
    return evaluation.fpga_outputs_per_second


def _gpu_throughput(evaluation: CandidateEvaluation) -> float:
    return evaluation.gpu_outputs_per_second


def _fpga_latency(evaluation: CandidateEvaluation) -> float:
    return evaluation.fpga_metrics.latency_seconds if evaluation.fpga_metrics else float("inf")


def _fpga_efficiency(evaluation: CandidateEvaluation) -> float:
    return evaluation.fpga_metrics.efficiency if evaluation.fpga_metrics else 0.0


def _fpga_effective_gflops(evaluation: CandidateEvaluation) -> float:
    return evaluation.fpga_metrics.effective_gflops if evaluation.fpga_metrics else 0.0


def _parameter_count(evaluation: CandidateEvaluation) -> float:
    return float(evaluation.parameter_count)


def _dsp_usage(evaluation: CandidateEvaluation) -> float:
    return float(evaluation.genome.hardware.grid.dsp_blocks_used)


register_objective("accuracy", _accuracy)
register_objective("fpga_throughput", _fpga_throughput)
register_objective("gpu_throughput", _gpu_throughput)
register_objective("fpga_latency", _fpga_latency, maximize_by_default=False)
register_objective("fpga_efficiency", _fpga_efficiency)
register_objective("fpga_effective_gflops", _fpga_effective_gflops)
register_objective("parameter_count", _parameter_count, maximize_by_default=False)
register_objective("dsp_usage", _dsp_usage, maximize_by_default=False)


# ---------------------------------------------------------------------------
# Objective specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ObjectiveSpec:
    """One named objective with an optimization direction and a weight.

    Attributes
    ----------
    name:
        Registered objective name.
    maximize:
        True to maximize, False to minimize (e.g. latency, parameter count).
    weight:
        Relative weight in the scalarized selection fitness.
    scale:
        Optional fixed normalization scale.  When > 0, the raw value is
        divided by this scale instead of being min-max normalized against the
        current population — useful when the expected magnitude is known
        (e.g. accuracy is already in [0, 1]).
    """

    name: str
    maximize: bool = True
    weight: float = 1.0
    scale: float = 0.0

    def __post_init__(self) -> None:
        get_objective(self.name)  # validate eagerly
        if self.weight <= 0:
            raise ConfigurationError(f"objective weight must be positive, got {self.weight}")
        if self.scale < 0:
            raise ConfigurationError(f"objective scale must be >= 0, got {self.scale}")

    def raw_value(self, evaluation: CandidateEvaluation) -> float:
        """The raw objective value for one candidate."""
        return float(get_objective(self.name)(evaluation))

    @classmethod
    def accuracy(cls, weight: float = 1.0) -> "ObjectiveSpec":
        """Convenience constructor: maximize accuracy (already in [0, 1])."""
        return cls(name="accuracy", maximize=True, weight=weight, scale=1.0)

    @classmethod
    def fpga_throughput(cls, weight: float = 1.0) -> "ObjectiveSpec":
        """Convenience constructor: maximize FPGA outputs/s."""
        return cls(name="fpga_throughput", maximize=True, weight=weight)

    @classmethod
    def gpu_throughput(cls, weight: float = 1.0) -> "ObjectiveSpec":
        """Convenience constructor: maximize GPU outputs/s."""
        return cls(name="gpu_throughput", maximize=True, weight=weight)

    @classmethod
    def fpga_latency(cls, weight: float = 1.0) -> "ObjectiveSpec":
        """Convenience constructor: minimize FPGA latency."""
        return cls(name="fpga_latency", maximize=False, weight=weight)


# ---------------------------------------------------------------------------
# Feasibility constraints
# ---------------------------------------------------------------------------

#: Supported comparison operators, longest first so parsing is unambiguous.
_CONSTRAINT_OPS = ("<=", ">=", "<", ">")


@dataclass(frozen=True)
class Constraint:
    """A feasibility bound on one registered objective.

    Resource budgets (DSP blocks, BRAM, power, parameter counts) are
    expressed as constraints instead of fitness penalties: candidates that
    violate any constraint are *infeasible* — they receive the worst
    possible scalar fitness and are dominated by every feasible candidate
    under constrained Pareto dominance.

    Attributes
    ----------
    objective:
        Registered objective name whose raw value is bounded.
    op:
        One of ``<=``, ``>=``, ``<``, ``>``.
    bound:
        The feasibility bound.
    """

    objective: str
    op: str
    bound: float

    def __post_init__(self) -> None:
        get_objective(self.objective)  # validate eagerly
        if self.op not in _CONSTRAINT_OPS:
            raise ConfigurationError(
                f"unknown constraint operator {self.op!r}; allowed: {', '.join(_CONSTRAINT_OPS)}"
            )
        object.__setattr__(self, "bound", float(self.bound))

    def value(self, evaluation: CandidateEvaluation) -> float:
        """The raw constrained-objective value of one candidate."""
        return float(get_objective(self.objective)(evaluation))

    def satisfied(self, value: float) -> bool:
        """Whether a raw value meets the bound."""
        value = float(value)
        if not np.isfinite(value):
            return False
        if self.op == "<=":
            return value <= self.bound
        if self.op == ">=":
            return value >= self.bound
        if self.op == "<":
            return value < self.bound
        return value > self.bound

    def violation(self, value: float) -> float:
        """How far past the bound a raw value is (0 when satisfied)."""
        if self.satisfied(value):
            return 0.0
        if not np.isfinite(float(value)):
            return float("inf")
        return abs(float(value) - self.bound)

    def __str__(self) -> str:
        bound = int(self.bound) if float(self.bound).is_integer() else self.bound
        return f"{self.objective}{self.op}{bound}"


def parse_constraint(text: str) -> Constraint:
    """Parse a ``objective<=bound`` style constraint expression.

    Parameters
    ----------
    text:
        The CLI/spec syntax, e.g. ``dsp_usage<=512``, ``accuracy>=0.9`` or
        ``fpga_latency<0.001``.

    Returns
    -------
    Constraint
        The parsed, validated constraint.

    Raises
    ------
    ConfigurationError
        For malformed expressions, unknown objectives or non-numeric bounds.
    """
    expression = str(text).strip()
    for op in _CONSTRAINT_OPS:
        name, separator, raw_bound = expression.partition(op)
        if not separator:
            continue
        name = name.strip()
        raw_bound = raw_bound.strip()
        if not name or not raw_bound:
            break
        try:
            bound = float(raw_bound)
        except ValueError as exc:
            raise ConfigurationError(
                f"constraint {text!r} has a non-numeric bound {raw_bound!r}"
            ) from exc
        return Constraint(objective=name, op=op, bound=bound)
    raise ConfigurationError(
        f"constraint {text!r} is not of the form OBJECTIVE OP BOUND "
        f"(e.g. dsp_usage<=512); operators: {', '.join(_CONSTRAINT_OPS)}"
    )


def resolve_constraints(constraints: Iterable[Constraint | str]) -> list[Constraint]:
    """Normalize a mixed list of constraint objects / expressions.

    Parameters
    ----------
    constraints:
        :class:`Constraint` instances (passed through) and/or string
        expressions (parsed with :func:`parse_constraint`); ``None`` is
        treated as empty.

    Returns
    -------
    list[Constraint]
        The resolved constraints, in input order.
    """
    resolved: list[Constraint] = []
    for constraint in constraints or ():
        if isinstance(constraint, Constraint):
            resolved.append(constraint)
        else:
            resolved.append(parse_constraint(constraint))
    return resolved


# ---------------------------------------------------------------------------
# Objective vectors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ObjectiveVector:
    """The typed, direction-aware objective values of one candidate.

    Attributes
    ----------
    names:
        Objective names, in configuration order.
    values:
        Raw objective values (same order as ``names``).
    maximize:
        Per-objective optimization direction.
    feasible:
        False when the candidate failed to evaluate or violates a
        feasibility constraint.
    violation:
        Total constraint violation (0 for feasible candidates); used to
        order infeasible candidates under constrained dominance.
    """

    names: tuple[str, ...]
    values: tuple[float, ...]
    maximize: tuple[bool, ...]
    feasible: bool = True
    violation: float = 0.0

    def __post_init__(self) -> None:
        names = tuple(str(n) for n in self.names)
        values = tuple(float(v) for v in self.values)
        maximize = tuple(bool(m) for m in self.maximize)
        if not names:
            raise ValueError("an objective vector needs at least one objective")
        if len(values) != len(names) or len(maximize) != len(names):
            raise ValueError(
                f"objective vector shape mismatch: {len(names)} names, "
                f"{len(values)} values, {len(maximize)} directions"
            )
        object.__setattr__(self, "names", names)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "maximize", maximize)
        object.__setattr__(self, "violation", float(self.violation))

    def __len__(self) -> int:
        return len(self.values)

    @property
    def canonical(self) -> tuple[float, ...]:
        """Values in maximization form (minimized objectives negated)."""
        return tuple(
            value if is_max else -value for value, is_max in zip(self.values, self.maximize)
        )

    def value(self, name: str) -> float:
        """Raw value of one objective by name (registry-style normalization)."""
        key = normalize_key(name)
        for objective, value in zip(self.names, self.values):
            if normalize_key(objective) == key:
                return value
        raise KeyError(f"objective {name!r} is not part of this vector")

    def dominates(self, other: "ObjectiveVector") -> bool:
        """Constrained Pareto dominance (Deb 2002).

        A feasible vector dominates any infeasible one; between two
        infeasible vectors the smaller total violation dominates; between
        two feasible vectors standard Pareto dominance applies on the
        canonical (maximization-form) values.
        """
        if self.names != other.names:
            raise ValueError(
                f"cannot compare objective vectors over {self.names} and {other.names}"
            )
        if self.feasible != other.feasible:
            return self.feasible
        if not self.feasible:
            return self.violation < other.violation
        a, b = self.canonical, other.canonical
        at_least_as_good = all(x >= y for x, y in zip(a, b))
        strictly_better = any(x > y for x, y in zip(a, b))
        return at_least_as_good and strictly_better

    def as_dict(self) -> dict[str, float]:
        """Name -> raw value mapping (report/JSON friendly)."""
        return dict(zip(self.names, self.values))


def build_objective_vector(
    evaluation: CandidateEvaluation,
    objectives: Sequence[ObjectiveSpec],
    constraints: Sequence[Constraint | str] = (),
    raw_values: Sequence[float] | None = None,
) -> ObjectiveVector:
    """Evaluate every objective and constraint for one candidate.

    Failed evaluations yield an all-NaN, infeasible vector with infinite
    violation, so they sort after every real candidate under constrained
    dominance.  ``raw_values`` (objective values in ``objectives`` order)
    skips re-evaluating the objective functions when the caller already has
    them.
    """
    if not objectives:
        raise ConfigurationError("at least one objective is required to build a vector")
    names = tuple(spec.name for spec in objectives)
    maximize = tuple(spec.maximize for spec in objectives)
    if evaluation.failed:
        return ObjectiveVector(
            names=names,
            values=tuple(float("nan") for _ in objectives),
            maximize=maximize,
            feasible=False,
            violation=float("inf"),
        )
    if raw_values is None:
        values = tuple(spec.raw_value(evaluation) for spec in objectives)
    else:
        values = tuple(float(v) for v in raw_values)
        if len(values) != len(objectives):
            raise ValueError(
                f"got {len(values)} raw values for {len(objectives)} objectives"
            )
    violation = 0.0
    for constraint in resolve_constraints(constraints):
        violation += constraint.violation(constraint.value(evaluation))
    return ObjectiveVector(
        names=names,
        values=values,
        maximize=maximize,
        feasible=violation == 0.0,
        violation=violation,
    )
