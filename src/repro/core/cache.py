"""Evaluation cache keyed by genome parameters.

Table III of the paper notes: *"in order to optimize the search and run time
of the system, potential NNA/HW candidates are first analyzed for similarities
to previous evaluations and duplicates are not evaluated twice"* and *"The
ECAD system caches similar configurations and avoids reevaluating them."*

The cache is an in-memory LRU map from the genome's canonical hash to its
:class:`~repro.core.candidate.CandidateEvaluation`.  It also keeps hit/miss
statistics because the run-time table (Table III) distinguishes the number of
models *generated* from the number actually *evaluated*.

The cache is thread-safe, and for the asynchronous evaluation pipeline it
keeps an **in-flight registry**: :meth:`lookup_or_reserve` lets exactly one
caller own the fresh evaluation of a genome while concurrent callers asking
for the same genome block until that one evaluation completes, instead of
recomputing it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .candidate import CandidateEvaluation
from .genome import CoDesignGenome

__all__ = ["CacheStatistics", "EvaluationCache"]


@dataclass
class CacheStatistics:
    """Hit/miss counters of one cache instance.

    ``coalesced`` counts lookups that were answered by waiting on another
    caller's in-flight evaluation of the same genome; they are also counted
    in ``hits`` (the caller did not evaluate anything itself).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    coalesced: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never used)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class _InFlightTicket:
    """One pending evaluation: waiters block on the event, the owner publishes."""

    __slots__ = ("event", "evaluation")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.evaluation: CandidateEvaluation | None = None


class EvaluationCache:
    """Thread-safe in-memory LRU cache of candidate evaluations.

    Parameters
    ----------
    max_entries:
        Optional bound on the number of stored evaluations.  When exceeded
        the least-recently-used entry is evicted (lookups refresh recency),
        which keeps long searches from growing without limit.  ``None`` means
        unbounded.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive or None, got {max_entries}")
        self._entries: dict[str, CandidateEvaluation] = {}
        self._max_entries = max_entries
        self._lock = threading.RLock()
        self._in_flight: dict[str, _InFlightTicket] = {}
        self.statistics = CacheStatistics()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, genome: CoDesignGenome) -> bool:
        with self._lock:
            return genome.cache_key() in self._entries

    # --------------------------------------------------------------- lookups
    def lookup(self, genome: CoDesignGenome) -> CandidateEvaluation | None:
        """Return the cached evaluation for ``genome`` or ``None`` on a miss.

        Cache hits are returned as copies flagged ``from_cache=True`` so the
        run-time statistics can distinguish them from fresh evaluations, and
        refresh the entry's recency (true LRU).
        """
        key = genome.cache_key()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.statistics.misses += 1
                return None
            # Re-insertion moves the key to the most-recent end of the dict.
            del self._entries[key]
            self._entries[key] = entry
            self.statistics.hits += 1
            return entry.as_cache_copy()

    def lookup_or_reserve(self, genome: CoDesignGenome) -> tuple[CandidateEvaluation | None, bool]:
        """Concurrent-safe lookup with single-flight semantics.

        Returns ``(evaluation, False)`` when the genome is already cached, or
        when another thread is currently evaluating it (the call blocks until
        that evaluation completes and shares its result).  Returns
        ``(None, True)`` when the caller now *owns* the evaluation: it must
        evaluate the genome and then call :meth:`complete` (or
        :meth:`abandon` on an unexpected error) to release the waiters.
        """
        key = genome.cache_key()
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    del self._entries[key]
                    self._entries[key] = entry
                    self.statistics.hits += 1
                    return entry.as_cache_copy(), False
                ticket = self._in_flight.get(key)
                if ticket is None:
                    self.statistics.misses += 1
                    self._in_flight[key] = _InFlightTicket()
                    return None, True
            ticket.event.wait()
            published = ticket.evaluation
            if published is not None:
                with self._lock:
                    self.statistics.hits += 1
                    self.statistics.coalesced += 1
                return published.as_cache_copy(), False
            # The owner abandoned the evaluation: race to take ownership.

    def complete(self, genome: CoDesignGenome, evaluation: CandidateEvaluation) -> None:
        """Publish the owner's result: store it and wake any waiters.

        Failed evaluations are still handed to waiters (so they do not
        recompute a candidate that just failed) but are not cached.
        """
        key = genome.cache_key()
        with self._lock:
            self._store_locked(key, evaluation)
            ticket = self._in_flight.pop(key, None)
        if ticket is not None:
            ticket.evaluation = evaluation
            ticket.event.set()

    def abandon(self, genome: CoDesignGenome) -> None:
        """Release a reservation without a result (owner crashed); waiters retry."""
        with self._lock:
            ticket = self._in_flight.pop(genome.cache_key(), None)
        if ticket is not None:
            ticket.event.set()

    @property
    def in_flight_count(self) -> int:
        """Number of genomes currently reserved for evaluation."""
        with self._lock:
            return len(self._in_flight)

    # ---------------------------------------------------------------- stores
    def store(self, evaluation: CandidateEvaluation) -> None:
        """Insert (or refresh) the evaluation of one candidate.

        Failed evaluations are not cached: a transient failure should not
        permanently poison a genome.
        """
        with self._lock:
            self._store_locked(evaluation.genome.cache_key(), evaluation)

    def _store_locked(self, key: str, evaluation: CandidateEvaluation) -> None:
        if evaluation.failed:
            return
        if key not in self._entries and self._max_entries is not None:
            while len(self._entries) >= self._max_entries:
                oldest_key = next(iter(self._entries))
                del self._entries[oldest_key]
        elif key in self._entries:
            # Refresh recency on overwrite too.
            del self._entries[key]
        self._entries[key] = evaluation
        self.statistics.stores += 1

    def clear(self) -> None:
        """Drop all entries and reset statistics (in-flight waiters are released)."""
        with self._lock:
            tickets = list(self._in_flight.values())
            self._in_flight.clear()
            self._entries.clear()
            self.statistics = CacheStatistics()
        for ticket in tickets:
            ticket.event.set()

    def values(self) -> list[CandidateEvaluation]:
        """All cached evaluations, least-recently-used first."""
        with self._lock:
            return list(self._entries.values())
