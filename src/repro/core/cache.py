"""Evaluation cache keyed by genome parameters.

Table III of the paper notes: *"in order to optimize the search and run time
of the system, potential NNA/HW candidates are first analyzed for similarities
to previous evaluations and duplicates are not evaluated twice"* and *"The
ECAD system caches similar configurations and avoids reevaluating them."*

The cache is an in-memory map from the genome's canonical hash to its
:class:`~repro.core.candidate.CandidateEvaluation`.  It also keeps hit/miss
statistics because the run-time table (Table III) distinguishes the number of
models *generated* from the number actually *evaluated*.
"""

from __future__ import annotations

from dataclasses import dataclass

from .candidate import CandidateEvaluation
from .genome import CoDesignGenome

__all__ = ["CacheStatistics", "EvaluationCache"]


@dataclass
class CacheStatistics:
    """Hit/miss counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never used)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class EvaluationCache:
    """In-memory candidate-evaluation cache with optional capacity bound.

    Parameters
    ----------
    max_entries:
        Optional bound on the number of stored evaluations.  When exceeded the
        oldest entry is evicted (insertion order), which keeps long searches
        from growing without limit.  ``None`` means unbounded.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive or None, got {max_entries}")
        self._entries: dict[str, CandidateEvaluation] = {}
        self._max_entries = max_entries
        self.statistics = CacheStatistics()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, genome: CoDesignGenome) -> bool:
        return genome.cache_key() in self._entries

    def lookup(self, genome: CoDesignGenome) -> CandidateEvaluation | None:
        """Return the cached evaluation for ``genome`` or ``None`` on a miss.

        Cache hits are returned as copies flagged ``from_cache=True`` so the
        run-time statistics can distinguish them from fresh evaluations.
        """
        key = genome.cache_key()
        entry = self._entries.get(key)
        if entry is None:
            self.statistics.misses += 1
            return None
        self.statistics.hits += 1
        return entry.as_cache_copy()

    def store(self, evaluation: CandidateEvaluation) -> None:
        """Insert (or refresh) the evaluation of one candidate.

        Failed evaluations are not cached: a transient failure should not
        permanently poison a genome.
        """
        if evaluation.failed:
            return
        key = evaluation.genome.cache_key()
        if key not in self._entries and self._max_entries is not None:
            while len(self._entries) >= self._max_entries:
                oldest_key = next(iter(self._entries))
                del self._entries[oldest_key]
        self._entries[key] = evaluation
        self.statistics.stores += 1

    def clear(self) -> None:
        """Drop all entries and reset statistics."""
        self._entries.clear()
        self.statistics = CacheStatistics()

    def values(self) -> list[CandidateEvaluation]:
        """All cached evaluations, in insertion order."""
        return list(self._entries.values())
