"""Engine callbacks and the search-history recorder.

The evolutionary engine reports progress through a small callback protocol so
that logging, live plotting, checkpointing or early termination can be added
without modifying the engine.  :class:`SearchHistory` is the built-in callback
every search installs: it records every evaluated candidate in order, which is
the raw material for the paper's scatter plots (Figure 2), the Pareto tables
(Table IV) and the run-time statistics (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .candidate import CandidateEvaluation
from .fitness import FitnessResult
from .population import Population

__all__ = ["Callback", "CallbackList", "SearchHistory", "ProgressLogger"]


class Callback:
    """Base class for engine callbacks; all hooks are optional no-ops.

    Dispatch guarantees (both the serial and the asynchronous steady-state
    engine paths):

    * every hook fires on the engine's coordinating thread, never on an
      evaluation worker thread, so callbacks need no locking of their own;
    * ``on_evaluation`` fires exactly once per generated candidate (cache
      hits included), in *completion* order — on the asynchronous path that
      order may differ from generation order;
    * each ``on_evaluation`` is followed by the matching ``on_step_end``
      (with a strictly increasing step) before the next candidate's hooks,
      except for the initial population, which fires ``on_evaluation`` only.
    """

    def on_search_start(self, population: Population) -> None:
        """Called once after the initial population has been evaluated."""

    def on_evaluation(self, evaluation: CandidateEvaluation, fitness: FitnessResult, step: int) -> None:
        """Called after every candidate evaluation (including cache hits)."""

    def on_step_end(self, population: Population, step: int) -> None:
        """Called after each steady-state replacement step."""

    def on_search_end(self, population: Population) -> None:
        """Called once when the search finishes."""


class CallbackList(Callback):
    """Dispatches every hook to a list of callbacks, in order."""

    def __init__(self, callbacks: list[Callback] | None = None) -> None:
        self.callbacks: list[Callback] = list(callbacks or [])

    def append(self, callback: Callback) -> None:
        """Add one callback to the end of the dispatch order."""
        self.callbacks.append(callback)

    def on_search_start(self, population: Population) -> None:
        for callback in self.callbacks:
            callback.on_search_start(population)

    def on_evaluation(self, evaluation: CandidateEvaluation, fitness: FitnessResult, step: int) -> None:
        for callback in self.callbacks:
            callback.on_evaluation(evaluation, fitness, step)

    def on_step_end(self, population: Population, step: int) -> None:
        for callback in self.callbacks:
            callback.on_step_end(population, step)

    def on_search_end(self, population: Population) -> None:
        for callback in self.callbacks:
            callback.on_search_end(population)


@dataclass
class HistoryRecord:
    """One entry of the search history: an evaluation and its fitness at a step."""

    step: int
    evaluation: CandidateEvaluation
    fitness: FitnessResult

    @property
    def accuracy(self) -> float:
        """Convenience accessor used by the figure benchmarks."""
        return self.evaluation.accuracy

    @property
    def fpga_outputs_per_second(self) -> float:
        """Convenience accessor used by the figure benchmarks."""
        return self.evaluation.fpga_outputs_per_second

    @property
    def gpu_outputs_per_second(self) -> float:
        """Convenience accessor used by the figure benchmarks."""
        return self.evaluation.gpu_outputs_per_second


@dataclass
class SearchHistory(Callback):
    """Records every evaluated candidate plus per-step best-fitness traces."""

    records: list[HistoryRecord] = field(default_factory=list)
    best_fitness_trace: list[float] = field(default_factory=list)
    best_accuracy_trace: list[float] = field(default_factory=list)

    # ------------------------------------------------------------ callbacks
    def on_evaluation(self, evaluation: CandidateEvaluation, fitness: FitnessResult, step: int) -> None:
        self.records.append(HistoryRecord(step=step, evaluation=evaluation, fitness=fitness))

    def on_step_end(self, population: Population, step: int) -> None:
        self.best_fitness_trace.append(population.best.fitness_value)
        self.best_accuracy_trace.append(
            max(member.evaluation.accuracy for member in population.members)
        )

    # -------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.records)

    def evaluations(self) -> list[CandidateEvaluation]:
        """All evaluations in the order they happened."""
        return [record.evaluation for record in self.records]

    def unique_evaluations(self) -> list[CandidateEvaluation]:
        """Evaluations of distinct genomes only (first occurrence kept)."""
        seen: set[str] = set()
        unique: list[CandidateEvaluation] = []
        for record in self.records:
            key = record.evaluation.genome.cache_key()
            if key in seen:
                continue
            seen.add(key)
            unique.append(record.evaluation)
        return unique

    def best_accuracy(self) -> float:
        """Highest accuracy ever evaluated (nan when empty)."""
        if not self.records:
            return float("nan")
        return max(record.evaluation.accuracy for record in self.records)

    def best_record_by(self, extractor) -> HistoryRecord:
        """The record maximizing an arbitrary extractor function."""
        if not self.records:
            raise ValueError("history is empty")
        return max(self.records, key=lambda record: extractor(record))

    def accuracy_throughput_series(self, device: str = "fpga") -> list[tuple[float, float]]:
        """(accuracy, outputs/s) pairs for every evaluation — Figure 2 raw data."""
        if device not in ("fpga", "gpu"):
            raise ValueError(f"device must be 'fpga' or 'gpu', got {device!r}")
        pairs: list[tuple[float, float]] = []
        for record in self.records:
            throughput = (
                record.fpga_outputs_per_second if device == "fpga" else record.gpu_outputs_per_second
            )
            pairs.append((record.accuracy, throughput))
        return pairs


class ProgressLogger(Callback):
    """Prints a short line every ``interval`` steps (used by the CLI)."""

    def __init__(self, interval: int = 25, printer=print) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = int(interval)
        self._printer = printer

    def on_step_end(self, population: Population, step: int) -> None:
        if step % self.interval != 0:
            return
        best = population.best
        self._printer(
            f"[step {step:5d}] best fitness {best.fitness_value:.4f} "
            f"accuracy {best.evaluation.accuracy:.4f} "
            f"fpga {best.evaluation.fpga_outputs_per_second:.3e} out/s"
        )
