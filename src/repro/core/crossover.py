"""Crossover (recombination) operators over co-design genomes.

Crossover in a joint NNA/hardware space is most useful *across* the two
halves: a child can inherit a strong network from one parent and a strong
hardware allocation from the other.  Within the network half we implement a
layer-wise uniform crossover; within the hardware half a field-wise uniform
crossover over the grid parameters.

Like mutation, operators are pure functions returning new genomes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.device import FPGADevice
from ..hardware.systolic import GridConfig
from .genome import CoDesignGenome, HardwareGenome, MLPGenome

__all__ = [
    "crossover_mlp_layers",
    "crossover_hardware_fields",
    "crossover_swap_halves",
    "CoDesignCrossover",
]


def crossover_mlp_layers(
    parent_a: MLPGenome, parent_b: MLPGenome, rng: np.random.Generator
) -> MLPGenome:
    """Layer-wise uniform crossover of two network genomes.

    The child depth is drawn from one of the parents; each layer position then
    takes its (size, activation) pair from whichever parent has a layer at
    that position (uniformly when both do).  The bias flag is inherited
    uniformly.
    """
    depth_source = parent_a if rng.random() < 0.5 else parent_b
    depth = depth_source.num_hidden_layers
    hidden: list[int] = []
    activations: list[str] = []
    for index in range(depth):
        donors = []
        if index < parent_a.num_hidden_layers:
            donors.append(parent_a)
        if index < parent_b.num_hidden_layers:
            donors.append(parent_b)
        donor = donors[int(rng.integers(0, len(donors)))]
        hidden.append(donor.hidden_layers[index])
        activations.append(donor.activations[index])
    use_bias = parent_a.use_bias if rng.random() < 0.5 else parent_b.use_bias
    return MLPGenome(hidden_layers=tuple(hidden), activations=tuple(activations), use_bias=use_bias)


def crossover_hardware_fields(
    parent_a: HardwareGenome, parent_b: HardwareGenome, rng: np.random.Generator
) -> HardwareGenome:
    """Field-wise uniform crossover of two hardware genomes."""
    fields_a = parent_a.grid.to_dict()
    fields_b = parent_b.grid.to_dict()
    child_fields = {
        key: fields_a[key] if rng.random() < 0.5 else fields_b[key] for key in fields_a
    }
    batch = parent_a.batch_size if rng.random() < 0.5 else parent_b.batch_size
    return HardwareGenome(grid=GridConfig.from_dict(child_fields), batch_size=batch)


def crossover_swap_halves(
    parent_a: CoDesignGenome, parent_b: CoDesignGenome, rng: np.random.Generator
) -> CoDesignGenome:
    """Take the full network half from one parent and the hardware half from the other."""
    if rng.random() < 0.5:
        return CoDesignGenome(
            mlp=parent_a.mlp, hardware=parent_b.hardware, gpu_batch_size=parent_a.gpu_batch_size
        )
    return CoDesignGenome(
        mlp=parent_b.mlp, hardware=parent_a.hardware, gpu_batch_size=parent_b.gpu_batch_size
    )


@dataclass
class CoDesignCrossover:
    """Composite crossover: per-half recombination or whole-half swap.

    Parameters
    ----------
    swap_probability:
        Probability of using the whole-half swap instead of per-field
        recombination.
    device:
        Optional FPGA device; infeasible children fall back to the fitter
        hardware half of the parents (parent_a by convention).
    """

    swap_probability: float = 0.3
    device: FPGADevice | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.swap_probability <= 1.0:
            raise ValueError(f"swap_probability must be in [0, 1], got {self.swap_probability}")

    def recombine(
        self, parent_a: CoDesignGenome, parent_b: CoDesignGenome, rng: np.random.Generator
    ) -> CoDesignGenome:
        """Produce one child genome from two parents."""
        if rng.random() < self.swap_probability:
            child = crossover_swap_halves(parent_a, parent_b, rng)
        else:
            child = CoDesignGenome(
                mlp=crossover_mlp_layers(parent_a.mlp, parent_b.mlp, rng),
                hardware=crossover_hardware_fields(parent_a.hardware, parent_b.hardware, rng),
                gpu_batch_size=(
                    parent_a.gpu_batch_size if rng.random() < 0.5 else parent_b.gpu_batch_size
                ),
            )
        if self.device is not None and not child.hardware.fits(self.device):
            child = CoDesignGenome(
                mlp=child.mlp, hardware=parent_a.hardware, gpu_batch_size=child.gpu_batch_size
            )
        return child
