"""High-level co-design search front-end.

:class:`CoDesignSearch` ties the whole ECAD flow together: given a dataset and
an :class:`~repro.core.config.ECADConfig` it builds the search space, the
workers and master, the fitness evaluator and the evolutionary engine, runs
the search, and returns a :class:`SearchResult` with the best candidates, the
Pareto frontier, the full history and the run-time statistics (everything the
paper's tables and figures are derived from).

It also provides :class:`RandomSearch`, the random-search baseline the
evolutionary algorithm is compared against in the ablation benchmark (the
paper cites evidence that evolution beats random search [4]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets.base import Dataset
from .cache import EvaluationCache
from .callbacks import Callback, SearchHistory
from .candidate import CandidateEvaluation
from .config import ECADConfig
from .engine import EngineResult, EvolutionaryEngine, RunStatistics
from .errors import ConfigurationError
from .fitness import FitnessEvaluator, FitnessObjective
from .genome import CoDesignGenome, CoDesignSearchSpace
from .pareto import ParetoPoint, pareto_frontier, top_tradeoff_points

__all__ = ["SearchResult", "CoDesignSearch", "RandomSearch"]


@dataclass
class SearchResult:
    """Outcome of one co-design search.

    Attributes
    ----------
    best_accuracy_candidate:
        The evaluated candidate with the highest accuracy seen anywhere in the
        search (Table I / Table II rows).
    best_fitness_candidate:
        The candidate the engine ranked best under the configured fitness.
    frontier:
        The accuracy-vs-FPGA-throughput Pareto frontier over all evaluated
        candidates (Table IV / Figure 2 material).
    history:
        Full evaluation history.
    statistics:
        Run-time statistics (Table III).
    """

    best_accuracy_candidate: CandidateEvaluation
    best_fitness_candidate: CandidateEvaluation
    frontier: list[CandidateEvaluation] = field(default_factory=list)
    history: SearchHistory = field(default_factory=SearchHistory)
    statistics: RunStatistics = field(default_factory=RunStatistics)

    @property
    def best_accuracy(self) -> float:
        """Highest accuracy achieved by any evaluated candidate."""
        return self.best_accuracy_candidate.accuracy

    def pareto_rows(self, count: int = 2) -> list[CandidateEvaluation]:
        """Representative frontier rows, Table-IV style (best accuracy first)."""
        points = [
            ParetoPoint(values=(c.accuracy, c.fpga_outputs_per_second), payload=c)
            for c in self.frontier
        ]
        rows = top_tradeoff_points(points, count=count, primary=0)
        return [row.payload for row in rows]


def _extract_frontier(evaluations: list[CandidateEvaluation]) -> list[CandidateEvaluation]:
    """Accuracy-vs-FPGA-throughput Pareto frontier of a set of evaluations."""
    valid = [e for e in evaluations if not e.failed]
    if not valid:
        return []
    points = [
        ParetoPoint(values=(e.accuracy, e.fpga_outputs_per_second), payload=e) for e in valid
    ]
    return [point.payload for point in pareto_frontier(points)]


class CoDesignSearch:
    """End-to-end ECAD search over one dataset.

    Parameters
    ----------
    dataset:
        The problem to co-design for.
    config:
        The ECAD configuration file; when omitted a template is generated
        automatically from the dataset (as the paper describes).
    callbacks:
        Extra engine callbacks (progress logging, checkpointing, ...).
    backend:
        Execution backend name for the master ("serial", "threads" or
        "processes"); ``None`` (the default) uses the configuration's
        ``backend`` field.
    """

    def __init__(
        self,
        dataset: Dataset,
        config: ECADConfig | None = None,
        callbacks: list[Callback] | None = None,
        backend: str | None = None,
    ) -> None:
        self.dataset = dataset
        self.config = config or ECADConfig.template_for_dataset(dataset)
        if self.config.nna.input_size != dataset.num_features:
            raise ConfigurationError(
                f"configuration expects {self.config.nna.input_size} input features "
                f"but dataset {dataset.name!r} has {dataset.num_features}"
            )
        if self.config.nna.output_size != dataset.num_classes:
            raise ConfigurationError(
                f"configuration expects {self.config.nna.output_size} classes "
                f"but dataset {dataset.name!r} has {dataset.num_classes}"
            )
        self.callbacks = list(callbacks or [])
        self.backend = backend if backend is not None else self.config.backend
        self.cache = EvaluationCache()

    # ----------------------------------------------------------- assembly
    def build_master(self):
        """Construct the master with the workers the configuration asks for."""
        # Imported lazily to keep repro.core free of a package-level
        # dependency cycle with repro.workers.
        from ..workers.hardware_db import HardwareDatabaseWorker
        from ..workers.master import Master
        from ..workers.physical import PhysicalWorker
        from ..workers.simulation import SimulationWorker

        fpga = self.config.hardware.fpga_device()
        gpu = self.config.hardware.gpu_device()
        workers = [
            SimulationWorker(gpu=gpu, measure_gpu=gpu is not None),
            HardwareDatabaseWorker(device=fpga),
            PhysicalWorker(device=fpga),
        ]
        return Master(
            workers=workers,
            dataset=self.dataset,
            evaluation_protocol=self.config.evaluation_protocol,
            num_folds=self.config.num_folds,
            training_config=self.config.to_training_config(),
            backend=self.backend,
            max_workers=max(self.config.eval_parallelism, 1),
            seed=self.config.seed,
        )

    def build_engine(self, evaluator=None) -> EvolutionaryEngine:
        """Construct the evolutionary engine (optionally with a custom evaluator)."""
        space = self.config.to_search_space()
        fitness = FitnessEvaluator(self.config.optimization.to_fitness_objectives())
        if evaluator is None:
            evaluator = self.build_master()
        return EvolutionaryEngine(
            space=space,
            evaluator=evaluator,
            fitness=fitness,
            config=self.config.to_engine_config(),
            device=self.config.hardware.fpga_device(),
            mutation_config=self.config.to_mutation_config(),
            cache=self.cache,
            callbacks=self.callbacks,
        )

    # ---------------------------------------------------------------- run
    def run(self, evaluator=None) -> SearchResult:
        """Run the full search and package the results.

        When no evaluator is supplied, the search builds (and owns) a master
        whose execution backend is released once the search finishes.
        """
        owned_master = None
        if evaluator is None:
            owned_master = self.build_master()
            evaluator = owned_master
        engine = self.build_engine(evaluator=evaluator)
        try:
            outcome: EngineResult = engine.run()
        finally:
            if owned_master is not None:
                owned_master.shutdown()
        return self._package(outcome)

    def _package(self, outcome: EngineResult) -> SearchResult:
        evaluations = [e for e in outcome.history.evaluations() if not e.failed]
        if not evaluations:
            raise ConfigurationError("the search produced no successful evaluations")
        best_accuracy = max(evaluations, key=lambda e: e.accuracy)
        return SearchResult(
            best_accuracy_candidate=best_accuracy,
            best_fitness_candidate=outcome.best.evaluation,
            frontier=_extract_frontier(evaluations),
            history=outcome.history,
            statistics=outcome.statistics,
        )


class RandomSearch:
    """Uniform random search over the same co-design space (baseline).

    Evaluates ``max_evaluations`` genomes drawn uniformly from the search
    space with the same evaluator and returns the same :class:`SearchResult`
    structure, so the ablation benchmark can compare it directly with the
    evolutionary engine.
    """

    def __init__(
        self,
        space: CoDesignSearchSpace,
        evaluator,
        objectives: list[FitnessObjective] | None = None,
        max_evaluations: int = 100,
        seed: int | None = 0,
        device=None,
    ) -> None:
        if max_evaluations <= 0:
            raise ConfigurationError(f"max_evaluations must be positive, got {max_evaluations}")
        self.space = space
        self.evaluator = evaluator
        self.fitness = FitnessEvaluator(objectives or [FitnessObjective.accuracy()])
        self.max_evaluations = int(max_evaluations)
        self.seed = seed
        self.device = device
        self.cache = EvaluationCache()

    def run(self) -> SearchResult:
        """Draw, evaluate and rank random candidates."""
        rng = np.random.default_rng(self.seed)
        history = SearchHistory()
        statistics = RunStatistics()
        import time as _time

        start = _time.perf_counter()
        evaluations: list[CandidateEvaluation] = []
        for step in range(self.max_evaluations):
            genome: CoDesignGenome = self.space.random_genome(rng, device=self.device)
            statistics.models_generated += 1
            cached = self.cache.lookup(genome)
            if cached is not None:
                statistics.cache_hits += 1
                evaluation = cached
            else:
                eval_start = _time.perf_counter()
                try:
                    evaluation = self.evaluator(genome)
                except Exception as exc:  # noqa: BLE001 - mirror the engine's behaviour
                    evaluation = CandidateEvaluation(genome=genome, error=str(exc))
                elapsed = _time.perf_counter() - eval_start
                statistics.models_evaluated += 1
                statistics.total_evaluation_seconds += elapsed
                self.cache.store(evaluation)
            evaluations.append(evaluation)
            fitness = self.fitness.score(evaluation, reference=evaluations)
            history.on_evaluation(evaluation, fitness, step)
        statistics.wall_clock_seconds = _time.perf_counter() - start

        successful = [e for e in evaluations if not e.failed]
        if not successful:
            raise ConfigurationError("random search produced no successful evaluations")
        scored = self.fitness.score_population(successful)
        best_index = int(np.argmax([result.fitness for result in scored]))
        best_accuracy = max(successful, key=lambda e: e.accuracy)
        return SearchResult(
            best_accuracy_candidate=best_accuracy,
            best_fitness_candidate=successful[best_index],
            frontier=_extract_frontier(successful),
            history=history,
            statistics=statistics,
        )
