"""High-level co-design search front-end.

:class:`CoDesignSearch` ties the whole ECAD flow together: given a dataset and
an :class:`~repro.core.config.ECADConfig` it builds the search space, the
workers and master, the fitness evaluator and the evolutionary engine, runs
the search, and returns a :class:`SearchResult` with the best candidates, the
Pareto frontier, the full history and the run-time statistics (everything the
paper's tables and figures are derived from).

It also provides :class:`RandomSearch`, the random-search baseline the
evolutionary algorithm is compared against in the ablation benchmark (the
paper cites evidence that evolution beats random search [4]).
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field

import numpy as np

from ..datasets.base import Dataset
from .cache import EvaluationCache
from .callbacks import Callback, CallbackList, SearchHistory
from .candidate import CandidateEvaluation
from .config import ECADConfig
from .engine import EngineConfig, EngineResult, EvolutionaryEngine, RunStatistics
from .errors import ConfigurationError
from .fitness import Constraint, FitnessEvaluator, FitnessObjective
from .frontier import FrontierArchive
from .genome import CoDesignGenome, CoDesignSearchSpace
from .pareto import ParetoPoint, evaluation_frontier, top_tradeoff_points

__all__ = ["SearchResult", "CoDesignSearch", "RandomSearch", "close_active_searches"]

#: Live searches with possibly-open stores / unflushed write-behind caches.
#: Weak references only — a search that is garbage-collected drops out on its
#: own; :func:`close_active_searches` sweeps whatever is still alive (the
#: CLI's KeyboardInterrupt handler uses this to avoid losing store writes).
_ACTIVE_SEARCHES: "weakref.WeakSet[CoDesignSearch]" = weakref.WeakSet()
_ACTIVE_LOCK = threading.Lock()


def close_active_searches() -> int:
    """Close every live :class:`CoDesignSearch`; returns how many were closed.

    Flushes each search's write-behind store cache and closes search-owned
    stores.  Safe to call at any time (``close`` is idempotent); used by the
    CLI to shut down cleanly on Ctrl-C.
    """
    with _ACTIVE_LOCK:
        searches = list(_ACTIVE_SEARCHES)
    for search in searches:
        try:
            search.close()
        except Exception:  # noqa: BLE001 - best-effort cleanup must not raise
            pass
    return len(searches)


@dataclass
class SearchResult:
    """Outcome of one co-design search.

    Attributes
    ----------
    best_accuracy_candidate:
        The evaluated candidate with the highest accuracy seen anywhere in the
        search (Table I / Table II rows).
    best_fitness_candidate:
        The candidate the engine ranked best under the configured fitness.
    frontier:
        The accuracy-vs-FPGA-throughput Pareto frontier over all evaluated
        candidates (Table IV / Figure 2 material).
    frontier_archive:
        The streaming :class:`~repro.core.frontier.FrontierArchive` the
        engine maintained over the *configured* objectives during the run
        (``None`` for evaluators that bypass the engine).
    history:
        Full evaluation history.
    statistics:
        Run-time statistics (Table III).
    """

    best_accuracy_candidate: CandidateEvaluation
    best_fitness_candidate: CandidateEvaluation
    frontier: list[CandidateEvaluation] = field(default_factory=list)
    history: SearchHistory = field(default_factory=SearchHistory)
    statistics: RunStatistics = field(default_factory=RunStatistics)
    frontier_archive: FrontierArchive | None = None

    @property
    def best_accuracy(self) -> float:
        """Highest accuracy achieved by any evaluated candidate."""
        return self.best_accuracy_candidate.accuracy

    @property
    def objective_frontier(self) -> list[CandidateEvaluation]:
        """Frontier over the run's configured objectives (archive-backed).

        Falls back to the accuracy-vs-FPGA-throughput ``frontier`` when no
        archive was streamed (e.g. results reconstructed from history only).
        """
        if self.frontier_archive is not None:
            return self.frontier_archive.frontier()
        return list(self.frontier)

    def pareto_rows(self, count: int = 2) -> list[CandidateEvaluation]:
        """Representative frontier rows, Table-IV style (best accuracy first)."""
        points = [
            ParetoPoint(values=(c.accuracy, c.fpga_outputs_per_second), payload=c)
            for c in self.frontier
        ]
        rows = top_tradeoff_points(points, count=count, primary=0)
        return [row.payload for row in rows]


def _extract_frontier(evaluations: list[CandidateEvaluation]) -> list[CandidateEvaluation]:
    """Accuracy-vs-FPGA-throughput Pareto frontier of a set of evaluations.

    Thin wrapper kept for compatibility; the single source of truth is
    :func:`repro.core.pareto.evaluation_frontier`.
    """
    return evaluation_frontier(evaluations, device="fpga")


class CoDesignSearch:
    """End-to-end ECAD search over one dataset.

    Parameters
    ----------
    dataset:
        The problem to co-design for.
    config:
        The ECAD configuration file; when omitted a template is generated
        automatically from the dataset (as the paper describes).
    callbacks:
        Extra engine callbacks (progress logging, checkpointing, ...).
    backend:
        Execution backend name for the master ("serial", "threads" or
        "processes"); ``None`` (the default) uses the configuration's
        ``backend`` field.
    store:
        Persistent evaluation store to read through / write behind.  ``None``
        (the default) opens one from the configuration's ``store`` section
        when that is active; the search owns (and eventually closes) a store
        it opened itself but never one passed in.
    """

    def __init__(
        self,
        dataset: Dataset,
        config: ECADConfig | None = None,
        callbacks: list[Callback] | None = None,
        backend: str | None = None,
        store=None,
    ) -> None:
        self.dataset = dataset
        self.config = config or ECADConfig.template_for_dataset(dataset)
        if self.config.nna.input_size != dataset.num_features:
            raise ConfigurationError(
                f"configuration expects {self.config.nna.input_size} input features "
                f"but dataset {dataset.name!r} has {dataset.num_features}"
            )
        if self.config.nna.output_size != dataset.num_classes:
            raise ConfigurationError(
                f"configuration expects {self.config.nna.output_size} classes "
                f"but dataset {dataset.name!r} has {dataset.num_classes}"
            )
        self.callbacks = list(callbacks or [])
        self.backend = backend if backend is not None else self.config.backend
        self.store = store
        self._owns_store = False
        self.problem_digest: str | None = None
        if self.store is None and self.config.store.active:
            # Imported lazily: repro.store depends on repro.core at import time.
            from ..store import EvaluationStore

            self.store = EvaluationStore(
                self.config.store.path,
                readonly=self.config.store.readonly,
                shards=self.config.store.shards,
            )
            self._owns_store = True
        if self.store is not None:
            from ..store import StoreBackedCache, problem_digest

            self.problem_digest = problem_digest(self.config, dataset)
            self.cache: EvaluationCache = StoreBackedCache(self.store, self.problem_digest)
        else:
            self.cache = EvaluationCache()
        with _ACTIVE_LOCK:
            _ACTIVE_SEARCHES.add(self)

    # ----------------------------------------------------------- assembly
    #: Worker types consulted for every candidate, resolved by registered
    #: name so plugins can swap implementations without touching this class.
    worker_types: tuple[str, ...] = ("simulation", "hardware_db", "physical")

    def build_master(self):
        """Construct the master with the workers the configuration asks for."""
        # Imported lazily to keep repro.core free of a package-level
        # dependency cycle with repro.workers.
        from ..workers.base import resolve_worker
        from ..workers.master import Master

        fpga = self.config.hardware.fpga_device()
        gpu = self.config.hardware.gpu_device()
        workers = []
        for type_name in self.worker_types:
            worker_cls = resolve_worker(type_name)
            if type_name == "simulation":
                workers.append(worker_cls(gpu=gpu, measure_gpu=gpu is not None))
            else:
                workers.append(worker_cls(device=fpga))
        return Master(
            workers=workers,
            dataset=self.dataset,
            evaluation_protocol=self.config.evaluation_protocol,
            num_folds=self.config.num_folds,
            training_config=self.config.to_training_config(),
            backend=self.backend,
            max_workers=max(self.config.eval_parallelism, 1),
            seed=self.config.seed,
        )

    def build_engine(
        self,
        evaluator=None,
        fitness: FitnessEvaluator | None = None,
        selection=None,
        engine_cls: type[EvolutionaryEngine] | None = None,
        engine_config: EngineConfig | None = None,
        **engine_kwargs,
    ) -> EvolutionaryEngine:
        """Construct the evolutionary engine.

        ``fitness`` and ``selection`` default to the configuration's
        weighted-sum evaluator and selection scheme; search strategies (e.g.
        NSGA-II) inject their own here.  ``engine_cls`` lets a strategy swap
        in an :class:`EvolutionaryEngine` subclass (the surrogate-screened
        engine does), ``engine_config`` overrides the derived
        :class:`EngineConfig`, and extra keyword arguments are forwarded to
        the engine constructor.  When the configuration asks for
        warm-starting, the engine is seeded with the store's best candidates
        for the current problem digest.
        """
        space = self.config.to_search_space()
        if fitness is None:
            fitness = FitnessEvaluator(
                self.config.optimization.to_fitness_objectives(),
                constraints=self.config.optimization.to_constraints(),
            )
        if evaluator is None:
            evaluator = self.build_master()
        cls = engine_cls if engine_cls is not None else EvolutionaryEngine
        return cls(
            space=space,
            evaluator=evaluator,
            fitness=fitness,
            config=engine_config if engine_config is not None else self.config.to_engine_config(),
            device=self.config.hardware.fpga_device(),
            mutation_config=self.config.to_mutation_config(),
            cache=self.cache,
            callbacks=self.callbacks,
            selection=selection,
            initial_genomes=self.warm_start_genomes(),
            **engine_kwargs,
        )

    def warm_start_genomes(self) -> list[CoDesignGenome]:
        """Best stored genomes for this problem, for population seeding.

        Returns at most ``config.store.warm_start`` genomes, best stored
        accuracy first; empty when warm-starting is disabled, no store is
        attached, or the store has never seen this problem.  Stale genomes
        (outside the current search space) are filtered later by the engine.
        """
        limit = self.config.store.warm_start
        if limit <= 0 or self.store is None or self.problem_digest is None:
            return []
        from .errors import StoreError

        try:
            best = self.store.best(self.problem_digest, limit=limit)
        except StoreError:
            return []
        return [evaluation.genome for evaluation in best]

    # ---------------------------------------------------------------- run
    def run(self, evaluator=None, strategy=None) -> SearchResult:
        """Run the full search and package the results.

        The search is driven by a registered
        :class:`~repro.core.strategy.SearchStrategy` — ``strategy`` (a name
        or instance) when given, otherwise the configuration's ``strategy``
        field (``"evolutionary"`` by default, which reproduces the paper's
        weighted-sum steady-state search exactly).  When no evaluator is
        supplied, the strategy builds (and owns) a master whose execution
        backend is released once the search finishes.  Any write-behind
        store rows are flushed before the result is returned, and the
        result's statistics carry the store hit/miss counters.
        """
        from .strategy import get_strategy

        chosen = strategy if strategy is not None else self.config.strategy
        try:
            result = get_strategy(chosen).execute(self, evaluator)
        finally:
            self._flush_store()
        self._record_store_statistics(result.statistics)
        return result

    def close(self) -> None:
        """Flush pending store writes and close a search-owned store."""
        self._flush_store()
        if self._owns_store and self.store is not None:
            self.store.close()
            self.store = None
        with _ACTIVE_LOCK:
            _ACTIVE_SEARCHES.discard(self)

    def _flush_store(self) -> None:
        flush = getattr(self.cache, "flush", None)
        if callable(flush):
            flush()

    def _record_store_statistics(self, statistics: RunStatistics) -> None:
        store_stats = getattr(self.cache, "store_statistics", None)
        if store_stats is not None:
            statistics.store_hits = store_stats.hits
            statistics.store_misses = store_stats.misses

    def _package(self, outcome: EngineResult) -> SearchResult:
        evaluations = [e for e in outcome.history.evaluations() if not e.failed]
        if not evaluations:
            raise ConfigurationError("the search produced no successful evaluations")
        best_accuracy = max(evaluations, key=lambda e: e.accuracy)
        return SearchResult(
            best_accuracy_candidate=best_accuracy,
            best_fitness_candidate=outcome.best.evaluation,
            frontier=_extract_frontier(evaluations),
            history=outcome.history,
            statistics=outcome.statistics,
            frontier_archive=outcome.frontier,
        )


class RandomSearch:
    """Uniform random search over the same co-design space (baseline).

    Evaluates ``max_evaluations`` genomes drawn uniformly from the search
    space with the same evaluator and returns the same :class:`SearchResult`
    structure, so the ablation benchmark can compare it directly with the
    evolutionary engine.
    """

    def __init__(
        self,
        space: CoDesignSearchSpace,
        evaluator,
        objectives: list[FitnessObjective] | None = None,
        max_evaluations: int = 100,
        seed: int | None = 0,
        device=None,
        constraints: list[Constraint | str] | None = None,
        callbacks: list[Callback] | None = None,
        cache: EvaluationCache | None = None,
    ) -> None:
        if max_evaluations <= 0:
            raise ConfigurationError(f"max_evaluations must be positive, got {max_evaluations}")
        self.space = space
        self.evaluator = evaluator
        self.fitness = FitnessEvaluator(
            objectives or [FitnessObjective.accuracy()], constraints=constraints or ()
        )
        self.max_evaluations = int(max_evaluations)
        self.seed = seed
        self.device = device
        self.callbacks = list(callbacks or [])
        self.cache = cache if cache is not None else EvaluationCache()

    def run(self) -> SearchResult:
        """Draw, evaluate and rank random candidates.

        When the evaluator exposes the asynchronous batch interface
        (``submit``/``as_completed``, e.g. :class:`~repro.workers.master.Master`),
        distinct genomes are dispatched through it and evaluated with up to
        ``eval_parallelism`` candidates in flight on the configured execution
        backend; otherwise the original serial loop runs.  Either way the
        genome draws, the history order and the result ranking are identical,
        so the ablation baseline stays reproducible.
        """
        rng = np.random.default_rng(self.seed)
        history = SearchHistory()
        archive = FrontierArchive(
            objectives=self.fitness.objectives, constraints=self.fitness.constraints
        )
        statistics = RunStatistics()
        import time as _time

        start = _time.perf_counter()
        # Draw every genome up front so the RNG stream does not depend on the
        # evaluation schedule.
        genomes: list[CoDesignGenome] = [
            self.space.random_genome(rng, device=self.device)
            for _ in range(self.max_evaluations)
        ]
        statistics.models_generated = len(genomes)

        use_async = hasattr(self.evaluator, "submit") and hasattr(self.evaluator, "as_completed")
        if use_async:
            evaluations = self._evaluate_async(genomes, statistics)
        else:
            evaluations = self._evaluate_serial(genomes, statistics)

        extra_callbacks = CallbackList(self.callbacks)
        for step, evaluation in enumerate(evaluations):
            fitness = self.fitness.score(evaluation, reference=evaluations[: step + 1])
            history.on_evaluation(evaluation, fitness, step)
            archive.observe(evaluation, step=step, vector=fitness.vector)
            extra_callbacks.on_evaluation(evaluation, fitness, step)
        statistics.wall_clock_seconds = _time.perf_counter() - start
        statistics.frontier_size = len(archive)
        statistics.frontier_updates = archive.updates

        successful = [e for e in evaluations if not e.failed]
        if not successful:
            raise ConfigurationError("random search produced no successful evaluations")
        scored = self.fitness.score_population(successful)
        best_index = int(np.argmax([result.fitness for result in scored]))
        best_accuracy = max(successful, key=lambda e: e.accuracy)
        return SearchResult(
            best_accuracy_candidate=best_accuracy,
            best_fitness_candidate=successful[best_index],
            frontier=_extract_frontier(successful),
            history=history,
            statistics=statistics,
            frontier_archive=archive,
        )

    # ------------------------------------------------------------ evaluation
    def _evaluate_serial(
        self, genomes: list[CoDesignGenome], statistics: RunStatistics
    ) -> list[CandidateEvaluation]:
        """Original serial loop: one evaluator call at a time, cache-first."""
        import time as _time

        evaluations: list[CandidateEvaluation] = []
        for genome in genomes:
            cached = self.cache.lookup(genome)
            if cached is not None:
                statistics.cache_hits += 1
                evaluations.append(cached)
                continue
            eval_start = _time.perf_counter()
            try:
                evaluation = self.evaluator(genome)
            except Exception as exc:  # noqa: BLE001 - mirror the engine's behaviour
                evaluation = CandidateEvaluation(genome=genome, error=str(exc))
            statistics.models_evaluated += 1
            statistics.total_evaluation_seconds += _time.perf_counter() - eval_start
            self.cache.store(evaluation)
            evaluations.append(evaluation)
        return evaluations

    def _evaluate_async(
        self, genomes: list[CoDesignGenome], statistics: RunStatistics
    ) -> list[CandidateEvaluation]:
        """Fan distinct genomes out through the evaluator's futures interface.

        Each distinct uncached genome is submitted exactly once; repeat draws
        are answered by the evaluation cache, matching the serial path's
        statistics.  Results are collected in completion order but reassembled
        in draw order.
        """
        futures: dict[str, object] = {}
        for genome in genomes:
            key = genome.cache_key()
            if key in futures or self.cache.lookup(genome) is not None:
                continue
            futures[key] = self.evaluator.submit(genome)

        fresh: dict[str, CandidateEvaluation] = {}
        future_keys = {id(future): key for key, future in futures.items()}
        for done in self.evaluator.as_completed(list(futures.values())):
            key = future_keys[id(done)]
            try:
                evaluation = done.result()
            except Exception as exc:  # noqa: BLE001 - mirror the engine's behaviour
                genome = next(g for g in genomes if g.cache_key() == key)
                evaluation = CandidateEvaluation(genome=genome, error=str(exc))
            statistics.models_evaluated += 1
            # The evaluation's own stamp is the only honest per-candidate
            # time here; submit-to-completion wall time would also count the
            # queueing delay behind other in-flight candidates.
            statistics.total_evaluation_seconds += getattr(evaluation, "evaluation_seconds", 0.0)
            self.cache.store(evaluation)
            fresh[key] = evaluation

        evaluations: list[CandidateEvaluation] = []
        first_use = set()
        for genome in genomes:
            key = genome.cache_key()
            if key in fresh and key not in first_use:
                first_use.add(key)
                evaluations.append(fresh[key])
                continue
            cached = self.cache.lookup(genome)
            statistics.cache_hits += 1
            evaluations.append(cached if cached is not None else fresh[key])
        return evaluations
