"""Pareto-dominance utilities for multi-objective co-design results.

Section III-B: *"the Pareto frontiers that result after parsing the
evolutionary design space define what the optimal solution is ... Having the
data to make decisions based on trade-offs is highly valuable."*  Table IV of
the paper reports, per dataset, two points from the accuracy-vs-throughput
Pareto frontier.  This module provides dominance tests, frontier extraction
and the "best trade-off rows" selection that the table uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "ParetoPoint",
    "dominates",
    "pareto_frontier",
    "pareto_frontier_indices",
    "fast_non_dominated_sort",
    "crowding_distances",
    "hypervolume_2d",
    "evaluation_frontier",
    "knee_point",
    "top_tradeoff_points",
]


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate's objective vector plus an arbitrary payload.

    Attributes
    ----------
    values:
        Objective values, all expressed in *maximization* form (callers negate
        minimized objectives before building points).
    payload:
        The underlying object (typically a ``CandidateEvaluation``).
    """

    values: tuple[float, ...]
    payload: object = None

    def __post_init__(self) -> None:
        values = tuple(float(v) for v in self.values)
        if not values:
            raise ValueError("a Pareto point needs at least one objective value")
        object.__setattr__(self, "values", values)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Pareto dominance between two plain objective vectors (maximization).

    Parameters
    ----------
    a, b:
        Objective vectors of equal length, every objective expressed in
        maximization form (negate minimized objectives first).

    Returns
    -------
    bool
        True when ``a`` is at least as good as ``b`` in every objective and
        strictly better in at least one.

    Raises
    ------
    ValueError
        When the vectors have different lengths.
    """
    a = tuple(float(x) for x in a)
    b = tuple(float(x) for x in b)
    if len(a) != len(b):
        raise ValueError(f"objective vectors have different lengths: {len(a)} vs {len(b)}")
    at_least_as_good = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_frontier_indices(points: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated points (maximization in every objective).

    Parameters
    ----------
    points:
        Objective vectors, all in maximization form.

    Returns
    -------
    list[int]
        Indices into ``points`` of the non-dominated members, in input
        order.  Duplicates of a frontier point are all kept (none dominates
        the other).
    """
    vectors = [tuple(float(v) for v in point) for point in points]
    frontier: list[int] = []
    for i, candidate in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if i != j and dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            frontier.append(i)
    return frontier


def pareto_frontier(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset of ``points``.

    Parameters
    ----------
    points:
        Candidate points (values in maximization form).

    Returns
    -------
    list[ParetoPoint]
        The Pareto frontier, sorted by the first objective, best first.
    """
    indices = pareto_frontier_indices([point.values for point in points])
    frontier = [points[i] for i in indices]
    return sorted(frontier, key=lambda point: point.values[0], reverse=True)


def fast_non_dominated_sort(
    items: Sequence, dominates_fn: Callable[[object, object], bool] | None = None
) -> list[list[int]]:
    """NSGA-II fast non-dominated sorting (Deb et al. 2002).

    Partitions ``items`` into successive non-dominated fronts and returns
    them as lists of indices: front 0 is the Pareto frontier of the whole
    set, front 1 the frontier of the remainder, and so on.

    Parameters
    ----------
    items:
        Objective vectors.  By default plain sequences of floats in
        maximization form compared with :func:`dominates`; pass
        ``dominates_fn`` to sort richer objects (e.g.
        ``ObjectiveVector.dominates`` for constrained dominance).
    dominates_fn:
        Binary predicate ``dominates_fn(a, b)`` — True when ``a`` dominates
        ``b``.
    """
    compare = dominates_fn or dominates
    count = len(items)
    dominated_by: list[list[int]] = [[] for _ in range(count)]
    domination_count = [0] * count
    fronts: list[list[int]] = [[]]
    for i in range(count):
        for j in range(count):
            if i == j:
                continue
            if compare(items[i], items[j]):
                dominated_by[i].append(j)
            elif compare(items[j], items[i]):
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    return [front for front in fronts if front]


def crowding_distances(values: Sequence[Sequence[float]]) -> list[float]:
    """NSGA-II crowding distance of every point within one front.

    Boundary points (extreme in any objective) get infinite distance so they
    are always preferred; interior points get the normalized perimeter of
    the cuboid spanned by their neighbours.

    Parameters
    ----------
    values:
        Objective vectors of one front.  Maximization-form (or any
        consistently ordered) values; direction does not matter because the
        measure is symmetric.

    Returns
    -------
    list[float]
        Crowding distance per point, aligned with ``values``; larger means
        lonelier (preferred for diversity).
    """
    count = len(values)
    if count == 0:
        return []
    if count <= 2:
        return [float("inf")] * count
    matrix = np.asarray([[float(v) for v in row] for row in values], dtype=float)
    distances = np.zeros(count, dtype=float)
    for column in range(matrix.shape[1]):
        order = np.argsort(matrix[:, column], kind="stable")
        low = matrix[order[0], column]
        high = matrix[order[-1], column]
        distances[order[0]] = float("inf")
        distances[order[-1]] = float("inf")
        span = high - low
        if span < 1e-12:
            continue
        for position in range(1, count - 1):
            index = order[position]
            if np.isinf(distances[index]):
                continue
            gap = matrix[order[position + 1], column] - matrix[order[position - 1], column]
            distances[index] += gap / span
    return [float(d) for d in distances]


def hypervolume_2d(
    points: Sequence[Sequence[float]], reference: Sequence[float] = (0.0, 0.0)
) -> float:
    """Hypervolume (area) dominated by a 2-D point set, maximization form.

    The standard frontier-quality indicator: the area between the Pareto
    frontier of ``points`` and the ``reference`` point (which should be
    dominated by every point; contributions below it are clipped to zero).
    Used by the benchmark harness to compare NSGA-II and weighted-sum
    searches at equal evaluation budgets.

    Parameters
    ----------
    points:
        2-D objective vectors in maximization form; non-finite points are
        ignored.
    reference:
        The reference corner the dominated area is measured against.

    Returns
    -------
    float
        The dominated area (0 when no finite point remains).
    """
    ref_x, ref_y = float(reference[0]), float(reference[1])
    clipped = [
        (max(float(x), ref_x), max(float(y), ref_y))
        for x, y in points
        if np.isfinite(float(x)) and np.isfinite(float(y))
    ]
    if not clipped:
        return 0.0
    frontier = sorted(
        (clipped[i] for i in pareto_frontier_indices(clipped)),
        key=lambda p: p[0],
        reverse=True,
    )
    area = 0.0
    previous_y = ref_y
    for x, y in frontier:
        area += (x - ref_x) * (y - previous_y)
        previous_y = max(previous_y, y)
    return float(area)


def evaluation_frontier(evaluations: Sequence, device: str = "fpga") -> list:
    """The canonical accuracy-vs-throughput Pareto frontier of evaluations.

    Single source of truth used by ``SearchResult``, the analysis layer and
    the reports: failed evaluations are dropped, the objective vector is
    ``(accuracy, outputs/s)`` for the chosen device, and the frontier is
    returned best-accuracy first.

    Parameters
    ----------
    evaluations:
        Any sequence of
        :class:`~repro.core.candidate.CandidateEvaluation`-shaped objects.
    device:
        ``"fpga"`` or ``"gpu"`` — which throughput axis to use.

    Returns
    -------
    list
        The non-dominated evaluations, best accuracy first.

    Raises
    ------
    ValueError
        For an unknown ``device``.
    """
    if device not in ("fpga", "gpu"):
        raise ValueError(f"device must be 'fpga' or 'gpu', got {device!r}")
    valid = [e for e in evaluations if not e.failed]
    if not valid:
        return []
    points = [
        ParetoPoint(
            values=(
                e.accuracy,
                e.fpga_outputs_per_second if device == "fpga" else e.gpu_outputs_per_second,
            ),
            payload=e,
        )
        for e in valid
    ]
    return [point.payload for point in pareto_frontier(points)]


def knee_point(frontier: Sequence[ParetoPoint]) -> ParetoPoint:
    """The frontier point with the best balanced trade-off.

    Objectives are min-max normalized over the frontier; the knee is the point
    maximizing the minimum normalized objective (the most "balanced" point).
    Useful as a single-answer summary of a two-objective frontier.

    Parameters
    ----------
    frontier:
        A non-empty Pareto frontier.

    Returns
    -------
    ParetoPoint
        The most balanced frontier member.

    Raises
    ------
    ValueError
        When ``frontier`` is empty.
    """
    if not frontier:
        raise ValueError("frontier must not be empty")
    matrix = np.asarray([point.values for point in frontier], dtype=float)
    lows = matrix.min(axis=0)
    highs = matrix.max(axis=0)
    spans = np.where(highs - lows > 1e-12, highs - lows, 1.0)
    normalized = (matrix - lows) / spans
    scores = normalized.min(axis=1)
    return frontier[int(np.argmax(scores))]


def top_tradeoff_points(
    frontier: Sequence[ParetoPoint],
    count: int = 2,
    primary: int = 0,
) -> list[ParetoPoint]:
    """Pick ``count`` representative rows from a frontier, Table-IV style.

    The first selected point is the one with the best primary objective
    (accuracy in the paper's usage); subsequent points are the remaining
    frontier entries with the best *other* objectives, i.e. the "sacrifice a
    little accuracy for a big throughput win" rows.

    Parameters
    ----------
    frontier:
        A Pareto frontier (already non-dominated).
    count:
        Number of rows to return (fewer if the frontier is smaller).
    primary:
        Index of the primary objective inside ``values``.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not frontier:
        return []
    remaining = list(frontier)
    remaining.sort(key=lambda point: point.values[primary], reverse=True)
    selected = [remaining.pop(0)]
    secondary_indices = [i for i in range(len(selected[0].values)) if i != primary]
    while remaining and len(selected) < count:
        if secondary_indices:
            remaining.sort(
                key=lambda point: tuple(point.values[i] for i in secondary_indices),
                reverse=True,
            )
        selected.append(remaining.pop(0))
    return selected


def make_points(
    items: Sequence[object],
    *extractors: Callable[[object], float],
) -> list[ParetoPoint]:
    """Build Pareto points from arbitrary objects and value extractors.

    Parameters
    ----------
    items:
        Payload objects (evaluations, frontier members, rows, ...).
    *extractors:
        One callable per objective, each mapping an item to a float in
        maximization form.

    Returns
    -------
    list[ParetoPoint]
        One point per item, values in extractor order, payload attached.
    """
    if not extractors:
        raise ValueError("at least one extractor is required")
    return [
        ParetoPoint(values=tuple(extract(item) for extract in extractors), payload=item)
        for item in items
    ]


__all__.append("make_points")
