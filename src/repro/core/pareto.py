"""Pareto-dominance utilities for multi-objective co-design results.

Section III-B: *"the Pareto frontiers that result after parsing the
evolutionary design space define what the optimal solution is ... Having the
data to make decisions based on trade-offs is highly valuable."*  Table IV of
the paper reports, per dataset, two points from the accuracy-vs-throughput
Pareto frontier.  This module provides dominance tests, frontier extraction
and the "best trade-off rows" selection that the table uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "ParetoPoint",
    "dominates",
    "pareto_frontier",
    "pareto_frontier_indices",
    "knee_point",
    "top_tradeoff_points",
]


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate's objective vector plus an arbitrary payload.

    Attributes
    ----------
    values:
        Objective values, all expressed in *maximization* form (callers negate
        minimized objectives before building points).
    payload:
        The underlying object (typically a ``CandidateEvaluation``).
    """

    values: tuple[float, ...]
    payload: object = None

    def __post_init__(self) -> None:
        values = tuple(float(v) for v in self.values)
        if not values:
            raise ValueError("a Pareto point needs at least one objective value")
        object.__setattr__(self, "values", values)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (maximization).

    ``a`` dominates ``b`` when it is at least as good in every objective and
    strictly better in at least one.
    """
    a = tuple(float(x) for x in a)
    b = tuple(float(x) for x in b)
    if len(a) != len(b):
        raise ValueError(f"objective vectors have different lengths: {len(a)} vs {len(b)}")
    at_least_as_good = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_frontier_indices(points: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the non-dominated points (maximization in every objective)."""
    vectors = [tuple(float(v) for v in point) for point in points]
    frontier: list[int] = []
    for i, candidate in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if i != j and dominates(other, candidate):
                dominated = True
                break
        if not dominated:
            frontier.append(i)
    return frontier


def pareto_frontier(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset of ``points``, sorted by the first objective (descending)."""
    indices = pareto_frontier_indices([point.values for point in points])
    frontier = [points[i] for i in indices]
    return sorted(frontier, key=lambda point: point.values[0], reverse=True)


def knee_point(frontier: Sequence[ParetoPoint]) -> ParetoPoint:
    """The frontier point with the best balanced trade-off.

    Objectives are min-max normalized over the frontier; the knee is the point
    maximizing the minimum normalized objective (the most "balanced" point).
    Useful as a single-answer summary of a two-objective frontier.
    """
    if not frontier:
        raise ValueError("frontier must not be empty")
    matrix = np.asarray([point.values for point in frontier], dtype=float)
    lows = matrix.min(axis=0)
    highs = matrix.max(axis=0)
    spans = np.where(highs - lows > 1e-12, highs - lows, 1.0)
    normalized = (matrix - lows) / spans
    scores = normalized.min(axis=1)
    return frontier[int(np.argmax(scores))]


def top_tradeoff_points(
    frontier: Sequence[ParetoPoint],
    count: int = 2,
    primary: int = 0,
) -> list[ParetoPoint]:
    """Pick ``count`` representative rows from a frontier, Table-IV style.

    The first selected point is the one with the best primary objective
    (accuracy in the paper's usage); subsequent points are the remaining
    frontier entries with the best *other* objectives, i.e. the "sacrifice a
    little accuracy for a big throughput win" rows.

    Parameters
    ----------
    frontier:
        A Pareto frontier (already non-dominated).
    count:
        Number of rows to return (fewer if the frontier is smaller).
    primary:
        Index of the primary objective inside ``values``.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not frontier:
        return []
    remaining = list(frontier)
    remaining.sort(key=lambda point: point.values[primary], reverse=True)
    selected = [remaining.pop(0)]
    secondary_indices = [i for i in range(len(selected[0].values)) if i != primary]
    while remaining and len(selected) < count:
        if secondary_indices:
            remaining.sort(
                key=lambda point: tuple(point.values[i] for i in secondary_indices),
                reverse=True,
            )
        selected.append(remaining.pop(0))
    return selected


def make_points(
    items: Sequence[object],
    *extractors: Callable[[object], float],
) -> list[ParetoPoint]:
    """Build Pareto points from arbitrary objects and value extractors."""
    if not extractors:
        raise ValueError("at least one extractor is required")
    return [
        ParetoPoint(values=tuple(extract(item) for extract in extractors), payload=item)
        for item in items
    ]


__all__.append("make_points")
