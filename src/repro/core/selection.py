"""Parent-selection schemes for the steady-state engine.

The paper cites Goldberg & Deb's comparative analysis of selection schemes
[16]; the engine defaults to tournament selection (robust, scale-free) but
roulette-wheel and rank selection are also provided so the ablation benchmark
can compare them.  NSGA-II selection (tournament on non-dominated rank with
crowding-distance tiebreak, over the members' typed objective vectors) backs
the multi-objective ``nsga2`` search strategy.
"""

from __future__ import annotations

import numpy as np

from .errors import SearchError
from .pareto import crowding_distances, fast_non_dominated_sort
from .population import Individual, Population

__all__ = [
    "SelectionScheme",
    "TournamentSelection",
    "RouletteWheelSelection",
    "RankSelection",
    "NSGA2Selection",
    "get_selection",
    "available_selection_schemes",
]


class SelectionScheme:
    """Base class: picks one parent from a population."""

    name: str = "selection"

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        """Return one parent."""
        raise NotImplementedError

    def select_pair(self, population: Population, rng: np.random.Generator) -> tuple[Individual, Individual]:
        """Return two parents, distinct whenever the population allows it."""
        first = self.select(population, rng)
        if len(population) < 2:
            return first, first
        for _ in range(16):
            second = self.select(population, rng)
            if second is not first:
                return first, second
        return first, second


class TournamentSelection(SelectionScheme):
    """Pick the fittest of ``tournament_size`` uniformly sampled members."""

    name = "tournament"

    def __init__(self, tournament_size: int = 3) -> None:
        if tournament_size < 2:
            raise ValueError(f"tournament_size must be >= 2, got {tournament_size}")
        self.tournament_size = int(tournament_size)

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        if len(population) == 0:
            raise SearchError("cannot select from an empty population")
        size = min(self.tournament_size, len(population))
        indices = rng.choice(len(population), size=size, replace=False)
        contenders = [population.members[int(i)] for i in indices]
        return max(contenders, key=lambda member: member.fitness_value)


class RouletteWheelSelection(SelectionScheme):
    """Fitness-proportional selection (after shifting fitness to be positive)."""

    name = "roulette"

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        if len(population) == 0:
            raise SearchError("cannot select from an empty population")
        fitness = np.asarray(
            [
                member.fitness_value if np.isfinite(member.fitness_value) else 0.0
                for member in population.members
            ],
            dtype=float,
        )
        shifted = fitness - fitness.min()
        total = shifted.sum()
        if total <= 0:
            index = int(rng.integers(0, len(population)))
        else:
            probabilities = shifted / total
            index = int(rng.choice(len(population), p=probabilities))
        return population.members[index]


class RankSelection(SelectionScheme):
    """Linear rank-based selection (pressure controlled by ``selection_pressure``)."""

    name = "rank"

    def __init__(self, selection_pressure: float = 1.5) -> None:
        if not 1.0 < selection_pressure <= 2.0:
            raise ValueError(
                f"selection_pressure must be in (1, 2], got {selection_pressure}"
            )
        self.selection_pressure = float(selection_pressure)

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        if len(population) == 0:
            raise SearchError("cannot select from an empty population")
        count = len(population)
        if count == 1:
            return population.members[0]
        # members[0] is the best; rank 0 = best.
        ranks = np.arange(count, dtype=float)
        pressure = self.selection_pressure
        probabilities = (2 - pressure) / count + 2 * (count - 1 - ranks) * (pressure - 1) / (
            count * (count - 1)
        )
        probabilities = probabilities / probabilities.sum()
        index = int(rng.choice(count, p=probabilities))
        return population.members[index]


class NSGA2Selection(SelectionScheme):
    """NSGA-II tournament: lower Pareto rank wins, crowding breaks ties.

    Ranks are computed by fast non-dominated sorting over the members'
    :class:`~repro.core.objectives.ObjectiveVector`s (constrained dominance,
    so feasible members always outrank infeasible ones); within a front the
    more isolated member (larger crowding distance) is preferred, preserving
    frontier diversity.  Populations whose fitness results carry no vectors
    (e.g. a plain scalarizing evaluator) fall back to scalar-fitness
    comparison, which keeps the scheme usable everywhere.

    ``tournament_size`` defaults to the classic binary tournament and is
    configurable through ``nsga2_tournament_size``.  The right pressure is
    landscape-dependent: generational NSGA-II gets extra pressure from
    mu+lambda survival, while this steady-state loop replaces one member
    per step, so at small populations a binary tournament rarely samples
    the (2-3 member) first front and the search can breed from dominated
    stock — there, matching the scalarized baseline's tournament size
    keeps an equal-budget frontier comparison apples to apples (see the
    table4 benchmark).  On near-degenerate landscapes (a hard accuracy
    plateau makes dominance effectively one-dimensional) the same pressure
    fixates the tiny population on the accuracy-extreme point, so the
    binary default is kept for general use.
    """

    name = "nsga2"

    def __init__(self, tournament_size: int = 2) -> None:
        if tournament_size < 2:
            raise ValueError(f"tournament_size must be >= 2, got {tournament_size}")
        self.tournament_size = int(tournament_size)
        #: Ranking memo for the last-seen population state.  Keyed on the
        #: identity of every member's fitness result: ``Population.rescore``
        #: replaces those objects, so the key changes exactly when the
        #: ranking could — selection between rescores reuses the sort
        #: instead of redoing O(n^2) dominance work per parent pick.
        self._cache_key: tuple[int, ...] = ()
        self._cache: tuple[list[int], list[float]] = ([], [])

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        if len(population) == 0:
            raise SearchError("cannot select from an empty population")
        if len(population) == 1:
            return population.members[0]
        key = tuple(id(member.fitness) for member in population.members)
        if key != self._cache_key:
            self._cache = self._ranking(population)
            self._cache_key = key
        ranks, crowding = self._cache
        size = min(self.tournament_size, len(population))
        picks = [int(i) for i in rng.choice(len(population), size=size, replace=False)]
        best = picks[0]
        for contender in picks[1:]:
            best = self._better(best, contender, ranks, crowding)
        return population.members[best]

    @staticmethod
    def _better(i: int, j: int, ranks: list[int], crowding: list[float]) -> int:
        if ranks[i] != ranks[j]:
            return i if ranks[i] < ranks[j] else j
        if crowding[i] != crowding[j]:
            return i if crowding[i] > crowding[j] else j
        return i

    def _ranking(self, population: Population) -> tuple[list[int], list[float]]:
        """Per-member (non-dominated rank, crowding distance)."""
        members = population.members
        vectors = [member.fitness.vector for member in members]
        if any(vector is None for vector in vectors):
            # No typed vectors: rank by scalar fitness (one member per front).
            order = sorted(
                range(len(members)), key=lambda k: members[k].fitness_value, reverse=True
            )
            ranks = [0] * len(members)
            for rank, index in enumerate(order):
                ranks[index] = rank
            return ranks, [0.0] * len(members)
        from .objectives import ObjectiveVector

        fronts = fast_non_dominated_sort(vectors, dominates_fn=ObjectiveVector.dominates)
        ranks = [0] * len(members)
        crowding = [0.0] * len(members)
        for rank, front in enumerate(fronts):
            distances = crowding_distances([vectors[i].canonical for i in front])
            for i, distance in zip(front, distances):
                ranks[i] = rank
                crowding[i] = distance
        return ranks, crowding


_REGISTRY: dict[str, type[SelectionScheme]] = {
    TournamentSelection.name: TournamentSelection,
    RouletteWheelSelection.name: RouletteWheelSelection,
    RankSelection.name: RankSelection,
    NSGA2Selection.name: NSGA2Selection,
}


def available_selection_schemes() -> list[str]:
    """Sorted names of all registered selection schemes."""
    return sorted(_REGISTRY)


def get_selection(name: str | SelectionScheme, **kwargs) -> SelectionScheme:
    """Resolve a selection scheme by name, forwarding keyword arguments."""
    if isinstance(name, SelectionScheme):
        if kwargs:
            raise ValueError("cannot pass keyword arguments together with a scheme instance")
        return name
    key = str(name).strip().lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown selection scheme {name!r}; available: {', '.join(available_selection_schemes())}"
        )
    return _REGISTRY[key](**kwargs)
