"""Parent-selection schemes for the steady-state engine.

The paper cites Goldberg & Deb's comparative analysis of selection schemes
[16]; the engine defaults to tournament selection (robust, scale-free) but
roulette-wheel and rank selection are also provided so the ablation benchmark
can compare them.
"""

from __future__ import annotations

import numpy as np

from .errors import SearchError
from .population import Individual, Population

__all__ = [
    "SelectionScheme",
    "TournamentSelection",
    "RouletteWheelSelection",
    "RankSelection",
    "get_selection",
    "available_selection_schemes",
]


class SelectionScheme:
    """Base class: picks one parent from a population."""

    name: str = "selection"

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        """Return one parent."""
        raise NotImplementedError

    def select_pair(self, population: Population, rng: np.random.Generator) -> tuple[Individual, Individual]:
        """Return two parents, distinct whenever the population allows it."""
        first = self.select(population, rng)
        if len(population) < 2:
            return first, first
        for _ in range(16):
            second = self.select(population, rng)
            if second is not first:
                return first, second
        return first, second


class TournamentSelection(SelectionScheme):
    """Pick the fittest of ``tournament_size`` uniformly sampled members."""

    name = "tournament"

    def __init__(self, tournament_size: int = 3) -> None:
        if tournament_size < 2:
            raise ValueError(f"tournament_size must be >= 2, got {tournament_size}")
        self.tournament_size = int(tournament_size)

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        if len(population) == 0:
            raise SearchError("cannot select from an empty population")
        size = min(self.tournament_size, len(population))
        indices = rng.choice(len(population), size=size, replace=False)
        contenders = [population.members[int(i)] for i in indices]
        return max(contenders, key=lambda member: member.fitness_value)


class RouletteWheelSelection(SelectionScheme):
    """Fitness-proportional selection (after shifting fitness to be positive)."""

    name = "roulette"

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        if len(population) == 0:
            raise SearchError("cannot select from an empty population")
        fitness = np.asarray(
            [
                member.fitness_value if np.isfinite(member.fitness_value) else 0.0
                for member in population.members
            ],
            dtype=float,
        )
        shifted = fitness - fitness.min()
        total = shifted.sum()
        if total <= 0:
            index = int(rng.integers(0, len(population)))
        else:
            probabilities = shifted / total
            index = int(rng.choice(len(population), p=probabilities))
        return population.members[index]


class RankSelection(SelectionScheme):
    """Linear rank-based selection (pressure controlled by ``selection_pressure``)."""

    name = "rank"

    def __init__(self, selection_pressure: float = 1.5) -> None:
        if not 1.0 < selection_pressure <= 2.0:
            raise ValueError(
                f"selection_pressure must be in (1, 2], got {selection_pressure}"
            )
        self.selection_pressure = float(selection_pressure)

    def select(self, population: Population, rng: np.random.Generator) -> Individual:
        if len(population) == 0:
            raise SearchError("cannot select from an empty population")
        count = len(population)
        if count == 1:
            return population.members[0]
        # members[0] is the best; rank 0 = best.
        ranks = np.arange(count, dtype=float)
        pressure = self.selection_pressure
        probabilities = (2 - pressure) / count + 2 * (count - 1 - ranks) * (pressure - 1) / (
            count * (count - 1)
        )
        probabilities = probabilities / probabilities.sum()
        index = int(rng.choice(count, p=probabilities))
        return population.members[index]


_REGISTRY: dict[str, type[SelectionScheme]] = {
    TournamentSelection.name: TournamentSelection,
    RouletteWheelSelection.name: RouletteWheelSelection,
    RankSelection.name: RankSelection,
}


def available_selection_schemes() -> list[str]:
    """Sorted names of all registered selection schemes."""
    return sorted(_REGISTRY)


def get_selection(name: str | SelectionScheme, **kwargs) -> SelectionScheme:
    """Resolve a selection scheme by name, forwarding keyword arguments."""
    if isinstance(name, SelectionScheme):
        if kwargs:
            raise ValueError("cannot pass keyword arguments together with a scheme instance")
        return name
    key = str(name).strip().lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown selection scheme {name!r}; available: {', '.join(available_selection_schemes())}"
        )
    return _REGISTRY[key](**kwargs)
