"""Pluggable search strategies over the co-design space.

The paper's evaluation compares several ways of exploring the same search
space — the steady-state evolutionary search, a random-search baseline, and
frontier-oriented multi-objective selection.  :class:`SearchStrategy` is the
protocol unifying them: a strategy drives a configured
:class:`~repro.core.search.CoDesignSearch` end to end and returns the same
:class:`~repro.core.search.SearchResult` shape, so every consumer (CLI,
experiment runner, benchmarks) is strategy-agnostic.

Strategies are an open registry (:data:`STRATEGIES` /
:func:`register_strategy`), like datasets, backends, devices and objectives:

* ``evolutionary`` (aliases ``weighted_sum``, ``default``) — the paper's
  steady-state search with the scalarized weighted-sum fitness.  This is the
  default and reproduces pre-strategy behaviour bit for bit.
* ``nsga2`` — NSGA-II: Pareto-rank + crowding-distance scoring
  (:class:`~repro.core.fitness.ParetoRankingEvaluator`) with the ``nsga2``
  selection scheme, for searches whose *product* is the frontier itself.
* ``random`` — uniform random search at the same evaluation budget (the
  ablation baseline).
"""

from __future__ import annotations

from ..registry import Registry
from .errors import ConfigurationError
from .fitness import ParetoRankingEvaluator
from .selection import get_selection

__all__ = [
    "SearchStrategy",
    "EvolutionaryStrategy",
    "NSGA2Strategy",
    "RandomStrategy",
    "SurrogateStrategy",
    "STRATEGIES",
    "register_strategy",
    "available_strategies",
    "arena_strategies",
    "get_strategy",
]


class SearchStrategy:
    """Protocol: drives one configured search and packages its result.

    Subclasses implement :meth:`execute`; ``search`` is a
    :class:`~repro.core.search.CoDesignSearch` (dataset + configuration +
    builders), ``evaluator`` an optional externally owned evaluator.  When
    ``evaluator`` is ``None`` the strategy builds (and shuts down) its own
    master through ``search.build_master()``.
    """

    name: str = "strategy"

    #: Whether the arena enters this strategy into tournaments by default.
    #: Plugins may register helper strategies (e.g. fixed replay baselines)
    #: that should not compete; they set this to False.
    arena_eligible: bool = True

    def execute(self, search, evaluator=None):
        """Run the search end to end.

        Parameters
        ----------
        search:
            The configured :class:`~repro.core.search.CoDesignSearch` to
            drive; supplies the dataset, configuration, evaluation cache and
            the master/engine factories.
        evaluator:
            Optional externally owned evaluator (a callable
            ``genome -> CandidateEvaluation``, typically a
            :class:`~repro.workers.master.Master`).  When ``None``, the
            strategy builds its own master and shuts it down afterwards.

        Returns
        -------
        SearchResult
            The packaged outcome (best candidates, frontier, history,
            run-time statistics), identical in shape for every strategy.
        """
        raise NotImplementedError


#: The open strategy registry; plugins may register additional strategies.
STRATEGIES: Registry[type[SearchStrategy]] = Registry("search strategy")


def register_strategy(
    name: str,
    strategy: type[SearchStrategy],
    aliases: tuple[str, ...] = (),
    overwrite: bool = False,
) -> None:
    """Register a strategy class under ``name`` (and ``aliases``).

    Parameters
    ----------
    name:
        Stable identifier usable from configuration files, experiment specs
        and the CLI (``--strategy``).
    strategy:
        The :class:`SearchStrategy` subclass to instantiate per run.
    aliases:
        Additional names resolving to the same strategy.
    overwrite:
        Allow replacing an existing registration (off by default so typos
        do not silently shadow built-ins).

    Raises
    ------
    ConfigurationError
        When the name is already registered and ``overwrite`` is False.
    """
    try:
        STRATEGIES.register(name, strategy, aliases=aliases, overwrite=overwrite)
    except ValueError as exc:
        raise ConfigurationError(str(exc)) from exc


def available_strategies() -> list[str]:
    """Sorted names of all registered strategies."""
    return STRATEGIES.available()


def arena_strategies() -> list[str]:
    """Sorted names of strategies that enter arena tournaments by default.

    Every registered strategy competes unless its class opts out with
    ``arena_eligible = False``.
    """
    return [
        name
        for name, strategy_cls in STRATEGIES.entries().items()
        if getattr(strategy_cls, "arena_eligible", True)
    ]


def get_strategy(name: str | SearchStrategy) -> SearchStrategy:
    """Resolve a strategy by name (instances pass through unchanged).

    Parameters
    ----------
    name:
        A registered strategy name (or alias), or an already constructed
        :class:`SearchStrategy` instance.

    Returns
    -------
    SearchStrategy
        A fresh instance for names; the same object for instances.

    Raises
    ------
    ConfigurationError
        When the name is not registered.
    """
    if isinstance(name, SearchStrategy):
        return name
    try:
        strategy_cls = STRATEGIES.resolve(str(name))
    except KeyError as exc:
        # The registry message already lists what is available and suggests
        # near-miss names; re-raising it verbatim keeps the hint.
        raise ConfigurationError(str(exc.args[0])) from exc
    return strategy_cls()


class EvolutionaryStrategy(SearchStrategy):
    """The paper's steady-state search with the weighted-sum fitness.

    This is the default strategy and reproduces pre-strategy behaviour bit
    for bit: scalarized selection fitness, tournament parent selection, and
    the serial or asynchronous steady-state engine depending on
    ``eval_parallelism``.
    """

    name = "evolutionary"

    def build_engine(self, search, evaluator):
        """Engine factory hook; subclasses swap fitness/selection here.

        Parameters
        ----------
        search:
            The driving :class:`~repro.core.search.CoDesignSearch`.
        evaluator:
            The candidate evaluator the engine will call.

        Returns
        -------
        EvolutionaryEngine
            A fully wired engine (cache, callbacks, warm-start seeds).
        """
        return search.build_engine(evaluator=evaluator)

    def execute(self, search, evaluator=None):
        owned_master = None
        if evaluator is None:
            owned_master = search.build_master()
            evaluator = owned_master
        engine = self.build_engine(search, evaluator)
        try:
            outcome = engine.run()
        finally:
            if owned_master is not None:
                owned_master.shutdown()
        return search._package(outcome)


class NSGA2Strategy(EvolutionaryStrategy):
    """NSGA-II: Pareto-rank scoring plus rank/crowding binary tournament."""

    name = "nsga2"

    def build_engine(self, search, evaluator):
        config = search.config
        fitness = ParetoRankingEvaluator(
            config.optimization.to_fitness_objectives(),
            constraints=config.optimization.to_constraints(),
        )
        return search.build_engine(
            evaluator=evaluator,
            fitness=fitness,
            selection=get_selection(
                "nsga2", tournament_size=config.nsga2_tournament_size
            ),
        )


class SurrogateStrategy(EvolutionaryStrategy):
    """Surrogate-assisted, multi-fidelity search over the evaluation store.

    Wraps the base evolutionary (or NSGA-II — ``surrogate.base``) search with
    the conformal offspring pre-screen and successive-halving fidelity rungs
    of :mod:`repro.surrogate`.  The screen trains on the persistent store's
    rows for the current problem digest and feeds every real result back; on
    an empty or too-small store it is a provable no-op and the run is
    bit-identical to the base strategy.  ``surrogate.enabled=false`` skips
    the screen entirely (the A/B arm of the ablation benchmark).
    """

    name = "surrogate"

    def build_engine(self, search, evaluator):
        # Imported lazily: repro.surrogate builds on repro.core and the
        # store; importing it at module scope would cycle through this
        # registry module.
        config = search.config.surrogate
        if not config.active:
            if config.base == "nsga2":
                return NSGA2Strategy().build_engine(search, evaluator)
            return super().build_engine(search, evaluator)
        from ..surrogate.engine import build_surrogate_engine

        return build_surrogate_engine(search, evaluator)


class RandomStrategy(SearchStrategy):
    """Uniform random search at the configured evaluation budget.

    The ablation baseline.  It shares the search's evaluation cache (and
    therefore any attached persistent store), but ignores ``warm_start`` —
    seeding a uniform baseline would bias the very comparison it exists for.
    """

    name = "random"

    def execute(self, search, evaluator=None):
        from .search import RandomSearch

        config = search.config
        owned_master = None
        if evaluator is None:
            owned_master = search.build_master()
            evaluator = owned_master
        try:
            return RandomSearch(
                space=config.to_search_space(),
                evaluator=evaluator,
                objectives=config.optimization.to_fitness_objectives(),
                constraints=config.optimization.to_constraints(),
                max_evaluations=config.max_evaluations,
                seed=config.seed,
                device=config.hardware.fpga_device(),
                callbacks=search.callbacks,
                cache=search.cache,
            ).run()
        finally:
            if owned_master is not None:
                owned_master.shutdown()


register_strategy("evolutionary", EvolutionaryStrategy, aliases=("weighted_sum", "default"))
register_strategy("nsga2", NSGA2Strategy)
register_strategy("random", RandomStrategy)
register_strategy("surrogate", SurrogateStrategy)
