"""Exception hierarchy for the ECAD core.

Having a dedicated root exception lets callers distinguish ECAD failures
(configuration mistakes, infeasible genomes, worker errors) from unrelated
bugs, and lets the master process convert worker-side failures into structured
results instead of crashing the whole search.
"""

from __future__ import annotations

__all__ = [
    "ECADError",
    "ConfigurationError",
    "GenomeError",
    "InfeasibleHardwareError",
    "EvaluationError",
    "SearchError",
    "StoreError",
    "ServiceError",
]


class ECADError(Exception):
    """Root of all ECAD-specific exceptions."""


class ConfigurationError(ECADError):
    """A configuration file or configuration object is invalid."""


class GenomeError(ECADError):
    """A genome violates its search-space constraints."""


class InfeasibleHardwareError(GenomeError):
    """A hardware genome does not fit the target device's resource budget."""


class EvaluationError(ECADError):
    """A worker failed while evaluating a candidate."""

    def __init__(self, message: str, genome_key: str | None = None) -> None:
        super().__init__(message)
        #: Cache key of the genome whose evaluation failed, when known.
        self.genome_key = genome_key


class SearchError(ECADError):
    """The evolutionary search cannot proceed (e.g. empty population)."""


class StoreError(ECADError):
    """The persistent evaluation store is unusable (corrupt file, schema
    mismatch, write to a read-only store)."""


class ServiceError(ECADError):
    """The co-design job service cannot proceed (bad job payload, unusable
    queue database, unreachable server)."""
