"""Fitness functions and multi-objective evaluation.

Section III-A: *"Each candidate in the population is evaluated according to
configurable and potentially multiple criteria, for example accuracy alone or
accuracy vs throughput.  Result evaluation is done using user defined fitness
functions ... Simple evaluation functions can be specified in the
configuration file and more complex ones are written in code and added by
registering them with the framework."*

This module provides exactly that:

* built-in objectives (accuracy, FPGA/GPU throughput, latency, efficiency,
  parameter count) registered under stable names,
* a registry so users can add their own objective by name,
* :class:`FitnessObjective` — one named objective with direction and optional
  weight/scaling — and
* :class:`FitnessEvaluator` — combines several objectives into a scalar
  selection fitness (weighted sum of min-max-normalized objectives) while
  keeping the raw per-objective values for Pareto analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..registry import Registry
from .candidate import CandidateEvaluation
from .errors import ConfigurationError

__all__ = [
    "OBJECTIVES",
    "ObjectiveFunction",
    "register_objective",
    "available_objectives",
    "get_objective",
    "objective_default_maximize",
    "FitnessObjective",
    "FitnessResult",
    "FitnessEvaluator",
]

#: An objective maps an evaluated candidate to a raw scalar value.
ObjectiveFunction = Callable[[CandidateEvaluation], float]

#: The shared objective registry; plugins may register additional objectives.
OBJECTIVES: Registry[ObjectiveFunction] = Registry("objective")

#: Default optimization direction per registered objective (True = maximize).
_DEFAULT_MAXIMIZE: dict[str, bool] = {}


def register_objective(
    name: str,
    function: ObjectiveFunction,
    overwrite: bool = False,
    maximize_by_default: bool = True,
) -> None:
    """Register a new objective under ``name``.

    Parameters
    ----------
    name:
        Stable identifier usable from configuration files.
    function:
        Callable mapping a :class:`CandidateEvaluation` to a float.
    overwrite:
        Allow replacing an existing registration (off by default so typos do
        not silently shadow built-ins).
    maximize_by_default:
        Direction used when the objective is named without an explicit
        direction (e.g. in an experiment spec's objective grid); pass False
        for cost-style objectives such as latency.
    """
    try:
        OBJECTIVES.register(name, function, overwrite=overwrite)
    except ValueError as exc:
        raise ConfigurationError(str(exc)) from exc
    _DEFAULT_MAXIMIZE[OBJECTIVES.canonical_name(name)] = bool(maximize_by_default)


def objective_default_maximize(name: str) -> bool:
    """Whether a registered objective is maximized when no direction is given."""
    get_objective(name)  # raise the usual error for unknown names
    return _DEFAULT_MAXIMIZE.get(OBJECTIVES.canonical_name(name), True)


def available_objectives() -> list[str]:
    """Sorted names of all registered objectives."""
    return OBJECTIVES.available()


def get_objective(name: str) -> ObjectiveFunction:
    """Look up a registered objective by name."""
    try:
        return OBJECTIVES.resolve(name)
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown objective {name!r}; available: {', '.join(available_objectives())}"
        ) from exc


# ---------------------------------------------------------------------------
# Built-in objectives
# ---------------------------------------------------------------------------


def _accuracy(evaluation: CandidateEvaluation) -> float:
    return evaluation.accuracy


def _fpga_throughput(evaluation: CandidateEvaluation) -> float:
    return evaluation.fpga_outputs_per_second


def _gpu_throughput(evaluation: CandidateEvaluation) -> float:
    return evaluation.gpu_outputs_per_second


def _fpga_latency(evaluation: CandidateEvaluation) -> float:
    return evaluation.fpga_metrics.latency_seconds if evaluation.fpga_metrics else float("inf")


def _fpga_efficiency(evaluation: CandidateEvaluation) -> float:
    return evaluation.fpga_metrics.efficiency if evaluation.fpga_metrics else 0.0


def _fpga_effective_gflops(evaluation: CandidateEvaluation) -> float:
    return evaluation.fpga_metrics.effective_gflops if evaluation.fpga_metrics else 0.0


def _parameter_count(evaluation: CandidateEvaluation) -> float:
    return float(evaluation.parameter_count)


def _dsp_usage(evaluation: CandidateEvaluation) -> float:
    return float(evaluation.genome.hardware.grid.dsp_blocks_used)


register_objective("accuracy", _accuracy)
register_objective("fpga_throughput", _fpga_throughput)
register_objective("gpu_throughput", _gpu_throughput)
register_objective("fpga_latency", _fpga_latency, maximize_by_default=False)
register_objective("fpga_efficiency", _fpga_efficiency)
register_objective("fpga_effective_gflops", _fpga_effective_gflops)
register_objective("parameter_count", _parameter_count, maximize_by_default=False)
register_objective("dsp_usage", _dsp_usage, maximize_by_default=False)


# ---------------------------------------------------------------------------
# Objective configuration and evaluator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FitnessObjective:
    """One named objective with an optimization direction and a weight.

    Attributes
    ----------
    name:
        Registered objective name.
    maximize:
        True to maximize, False to minimize (e.g. latency, parameter count).
    weight:
        Relative weight in the scalarized selection fitness.
    scale:
        Optional fixed normalization scale.  When > 0, the raw value is
        divided by this scale instead of being min-max normalized against the
        current population — useful when the expected magnitude is known
        (e.g. accuracy is already in [0, 1]).
    """

    name: str
    maximize: bool = True
    weight: float = 1.0
    scale: float = 0.0

    def __post_init__(self) -> None:
        get_objective(self.name)  # validate eagerly
        if self.weight <= 0:
            raise ConfigurationError(f"objective weight must be positive, got {self.weight}")
        if self.scale < 0:
            raise ConfigurationError(f"objective scale must be >= 0, got {self.scale}")

    def raw_value(self, evaluation: CandidateEvaluation) -> float:
        """The raw objective value for one candidate."""
        return float(get_objective(self.name)(evaluation))

    @classmethod
    def accuracy(cls, weight: float = 1.0) -> "FitnessObjective":
        """Convenience constructor: maximize accuracy (already in [0, 1])."""
        return cls(name="accuracy", maximize=True, weight=weight, scale=1.0)

    @classmethod
    def fpga_throughput(cls, weight: float = 1.0) -> "FitnessObjective":
        """Convenience constructor: maximize FPGA outputs/s."""
        return cls(name="fpga_throughput", maximize=True, weight=weight)

    @classmethod
    def gpu_throughput(cls, weight: float = 1.0) -> "FitnessObjective":
        """Convenience constructor: maximize GPU outputs/s."""
        return cls(name="gpu_throughput", maximize=True, weight=weight)

    @classmethod
    def fpga_latency(cls, weight: float = 1.0) -> "FitnessObjective":
        """Convenience constructor: minimize FPGA latency."""
        return cls(name="fpga_latency", maximize=False, weight=weight)


@dataclass(frozen=True)
class FitnessResult:
    """Scalar fitness plus the raw objective values it was derived from."""

    fitness: float
    objectives: dict[str, float] = field(default_factory=dict)

    def objective(self, name: str) -> float:
        """Raw value of one objective by name."""
        key = str(name).strip().lower()
        if key not in self.objectives:
            raise KeyError(f"objective {name!r} was not part of this evaluation")
        return self.objectives[key]


class FitnessEvaluator:
    """Scalarizes multiple objectives for steady-state selection.

    The scalar fitness of a candidate is the weighted sum of its normalized
    objective values.  Objectives with a fixed ``scale`` are divided by that
    scale; others are min-max normalized against the *reference population*
    supplied to :meth:`score_population`, which keeps very differently scaled
    objectives (accuracy in [0,1], throughput in the millions) comparable.
    Minimized objectives contribute ``1 - normalized`` so that larger fitness
    is always better.  Failed evaluations always receive ``-inf``.
    """

    def __init__(self, objectives: list[FitnessObjective]) -> None:
        if not objectives:
            raise ConfigurationError("at least one fitness objective is required")
        names = [obj.name for obj in objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate objective names in {names}")
        self.objectives = list(objectives)

    @property
    def objective_names(self) -> list[str]:
        """Names of the configured objectives, in order."""
        return [obj.name for obj in self.objectives]

    # -------------------------------------------------------------- scoring
    def raw_objectives(self, evaluation: CandidateEvaluation) -> dict[str, float]:
        """Raw objective values of one candidate."""
        if evaluation.failed:
            return {obj.name: float("nan") for obj in self.objectives}
        return {obj.name: obj.raw_value(evaluation) for obj in self.objectives}

    def score_population(self, evaluations: list[CandidateEvaluation]) -> list[FitnessResult]:
        """Score every candidate against the population's own value ranges."""
        if not evaluations:
            return []
        raw_matrix = [self.raw_objectives(evaluation) for evaluation in evaluations]
        results: list[FitnessResult] = []
        normalizers = self._normalizers(raw_matrix)
        for evaluation, raw in zip(evaluations, raw_matrix):
            if evaluation.failed:
                results.append(FitnessResult(fitness=float("-inf"), objectives=raw))
                continue
            fitness = 0.0
            for objective in self.objectives:
                value = raw[objective.name]
                normalized = normalizers[objective.name](value)
                contribution = normalized if objective.maximize else 1.0 - normalized
                fitness += objective.weight * contribution
            results.append(FitnessResult(fitness=fitness, objectives=raw))
        return results

    def score(self, evaluation: CandidateEvaluation, reference: list[CandidateEvaluation]) -> FitnessResult:
        """Score one candidate against a reference population (itself included)."""
        population = list(reference)
        if evaluation not in population:
            population.append(evaluation)
        results = self.score_population(population)
        return results[population.index(evaluation)]

    # --------------------------------------------------------------- helpers
    def _normalizers(self, raw_matrix: list[dict[str, float]]) -> dict[str, Callable[[float], float]]:
        normalizers: dict[str, Callable[[float], float]] = {}
        for objective in self.objectives:
            if objective.scale > 0:
                scale = objective.scale
                normalizers[objective.name] = lambda value, s=scale: _clip01(value / s)
                continue
            values = [
                row[objective.name]
                for row in raw_matrix
                if np.isfinite(row[objective.name])
            ]
            if not values:
                normalizers[objective.name] = lambda value: 0.0
                continue
            low, high = min(values), max(values)
            if high - low < 1e-12:
                normalizers[objective.name] = lambda value: 0.5
            else:
                normalizers[objective.name] = (
                    lambda value, lo=low, hi=high: _clip01((value - lo) / (hi - lo))
                )
        return normalizers


def _clip01(value: float) -> float:
    if not np.isfinite(value):
        return 0.0
    return float(min(1.0, max(0.0, value)))
