"""Fitness functions and multi-objective evaluation.

Section III-A: *"Each candidate in the population is evaluated according to
configurable and potentially multiple criteria, for example accuracy alone or
accuracy vs throughput.  Result evaluation is done using user defined fitness
functions ... Simple evaluation functions can be specified in the
configuration file and more complex ones are written in code and added by
registering them with the framework."*

The typed objective model (registry, :class:`ObjectiveSpec`,
:class:`~repro.core.objectives.ObjectiveVector`, constraints) lives in
:mod:`repro.core.objectives` and is re-exported here for compatibility.
This module provides the evaluators built on top of it:

* :class:`FitnessEvaluator` — scalarizes several objectives into a weighted
  sum of min-max-normalized values (the paper's selection fitness) while
  natively producing each candidate's :class:`ObjectiveVector` for Pareto
  analysis, and
* :class:`ParetoRankingEvaluator` — NSGA-II scoring: fast non-dominated
  sorting plus crowding distance, encoded as a scalar so the steady-state
  population machinery (selection, replacement) needs no changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from .candidate import CandidateEvaluation
from .errors import ConfigurationError
from .objectives import (
    OBJECTIVES,
    Constraint,
    ObjectiveFunction,
    ObjectiveSpec,
    ObjectiveVector,
    available_objectives,
    build_objective_vector,
    get_objective,
    objective_default_maximize,
    parse_constraint,
    register_objective,
    resolve_constraints,
)
from .pareto import crowding_distances, fast_non_dominated_sort

__all__ = [
    "OBJECTIVES",
    "ObjectiveFunction",
    "register_objective",
    "available_objectives",
    "get_objective",
    "objective_default_maximize",
    "ObjectiveSpec",
    "ObjectiveVector",
    "Constraint",
    "parse_constraint",
    "FitnessObjective",
    "FitnessResult",
    "FitnessEvaluator",
    "ParetoRankingEvaluator",
]

#: Historical name: a fitness objective is an objective spec.
FitnessObjective = ObjectiveSpec


@dataclass(frozen=True)
class FitnessResult:
    """Scalar fitness plus the raw objective values it was derived from.

    ``vector`` carries the typed, direction-aware objective values (with
    feasibility) whenever the result was produced by an evaluator; Pareto
    machinery (NSGA-II selection, the frontier archive) consumes it.
    """

    fitness: float
    objectives: dict[str, float] = field(default_factory=dict)
    vector: ObjectiveVector | None = None

    def objective(self, name: str) -> float:
        """Raw value of one objective by name."""
        key = str(name).strip().lower()
        if key not in self.objectives:
            raise KeyError(f"objective {name!r} was not part of this evaluation")
        return self.objectives[key]

    @property
    def feasible(self) -> bool:
        """Whether the candidate satisfies every configured constraint."""
        return self.vector.feasible if self.vector is not None else np.isfinite(self.fitness)


class FitnessEvaluator:
    """Scalarizes multiple objectives for steady-state selection.

    The scalar fitness of a candidate is the weighted sum of its normalized
    objective values.  Objectives with a fixed ``scale`` are divided by that
    scale; others are min-max normalized against the *reference population*
    supplied to :meth:`score_population`, which keeps very differently scaled
    objectives (accuracy in [0,1], throughput in the millions) comparable.
    Minimized objectives contribute ``1 - normalized`` so that larger fitness
    is always better.  Failed evaluations always receive ``-inf``, as do
    candidates violating any feasibility ``constraint``.
    """

    #: Whether scalar scores are only comparable within one scored set.
    #: The engine scores newcomers against the current *population* (not the
    #: full history) for evaluators that set this, so admission decisions in
    #: ``Population.add`` compare like with like.
    population_relative = False

    def __init__(
        self,
        objectives: list[ObjectiveSpec],
        constraints: Sequence[Constraint | str] = (),
    ) -> None:
        if not objectives:
            raise ConfigurationError("at least one fitness objective is required")
        names = [obj.name for obj in objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate objective names in {names}")
        self.objectives = list(objectives)
        self.constraints = resolve_constraints(constraints)

    @property
    def objective_names(self) -> list[str]:
        """Names of the configured objectives, in order."""
        return [obj.name for obj in self.objectives]

    # -------------------------------------------------------------- scoring
    def raw_objectives(self, evaluation: CandidateEvaluation) -> dict[str, float]:
        """Raw objective values of one candidate."""
        if evaluation.failed:
            return {obj.name: float("nan") for obj in self.objectives}
        return {obj.name: obj.raw_value(evaluation) for obj in self.objectives}

    def objective_vector(self, evaluation: CandidateEvaluation) -> ObjectiveVector:
        """The typed objective vector of one candidate (constraint-aware)."""
        return self._vector_from_raw(evaluation, self.raw_objectives(evaluation))

    def _vector_from_raw(
        self, evaluation: CandidateEvaluation, raw: dict[str, float]
    ) -> ObjectiveVector:
        """Build the vector from already-computed raw values (no re-evaluation)."""
        raw_values = None
        if not evaluation.failed:
            raw_values = [raw[obj.name] for obj in self.objectives]
        return build_objective_vector(
            evaluation, self.objectives, self.constraints, raw_values=raw_values
        )

    def score_population(self, evaluations: list[CandidateEvaluation]) -> list[FitnessResult]:
        """Score every candidate against the population's own value ranges."""
        if not evaluations:
            return []
        raw_matrix = [self.raw_objectives(evaluation) for evaluation in evaluations]
        results: list[FitnessResult] = []
        normalizers = self._normalizers(raw_matrix)
        for evaluation, raw in zip(evaluations, raw_matrix):
            vector = self._vector_from_raw(evaluation, raw)
            if evaluation.failed or not vector.feasible:
                results.append(
                    FitnessResult(fitness=float("-inf"), objectives=raw, vector=vector)
                )
                continue
            fitness = 0.0
            for objective in self.objectives:
                value = raw[objective.name]
                normalized = normalizers[objective.name](value)
                contribution = normalized if objective.maximize else 1.0 - normalized
                fitness += objective.weight * contribution
            results.append(FitnessResult(fitness=fitness, objectives=raw, vector=vector))
        return results

    def score(self, evaluation: CandidateEvaluation, reference: list[CandidateEvaluation]) -> FitnessResult:
        """Score one candidate against a reference population (itself included)."""
        population = list(reference)
        if evaluation not in population:
            population.append(evaluation)
        results = self.score_population(population)
        return results[population.index(evaluation)]

    # --------------------------------------------------------------- helpers
    def _normalizers(self, raw_matrix: list[dict[str, float]]) -> dict[str, Callable[[float], float]]:
        normalizers: dict[str, Callable[[float], float]] = {}
        for objective in self.objectives:
            if objective.scale > 0:
                scale = objective.scale
                normalizers[objective.name] = lambda value, s=scale: _clip01(value / s)
                continue
            values = [
                row[objective.name]
                for row in raw_matrix
                if np.isfinite(row[objective.name])
            ]
            if not values:
                normalizers[objective.name] = lambda value: 0.0
                continue
            low, high = min(values), max(values)
            if high - low < 1e-12:
                normalizers[objective.name] = lambda value: 0.5
            else:
                normalizers[objective.name] = (
                    lambda value, lo=low, hi=high: _clip01((value - lo) / (hi - lo))
                )
        return normalizers


class ParetoRankingEvaluator(FitnessEvaluator):
    """NSGA-II scoring: non-dominated rank plus crowding-distance tiebreak.

    Instead of a weighted sum, the scalar fitness encodes the candidate's
    Pareto layer within the reference population: members of front ``r``
    score in ``(-r, -r + CROWDING_SPAN]``, ordered within the front by
    descending crowding distance.  Sorting by this scalar therefore exactly
    reproduces NSGA-II's ``(rank, crowding)`` comparison, so the unchanged
    steady-state population machinery performs NSGA-II replacement, and any
    selection scheme reading ``fitness_value`` performs NSGA-II selection.
    Infeasible candidates are ranked after every feasible front (constrained
    dominance); failed evaluations keep ``-inf``.
    """

    #: Width of the in-front crowding band; < 1 keeps ranks separated.
    CROWDING_SPAN = 0.9

    #: Rank-encoded scores depend on the scored set: a front index within the
    #: full history is meaningless next to one within the 16-member
    #: population, so the engine must score newcomers population-relative.
    population_relative = True

    def score_population(self, evaluations: list[CandidateEvaluation]) -> list[FitnessResult]:
        base = super().score_population(evaluations)
        scoreable = [i for i, e in enumerate(evaluations) if not e.failed]
        if not scoreable:
            return base
        vectors = [base[i].vector for i in scoreable]
        fronts = fast_non_dominated_sort(vectors, dominates_fn=ObjectiveVector.dominates)
        results = list(base)
        for rank, front in enumerate(fronts):
            distances = crowding_distances([vectors[j].canonical for j in front])
            order = sorted(range(len(front)), key=lambda j: -distances[j])
            for position, j in enumerate(order):
                index = scoreable[front[j]]
                fitness = -float(rank) + self.CROWDING_SPAN * (1.0 - position / len(front))
                results[index] = FitnessResult(
                    fitness=fitness,
                    objectives=base[index].objectives,
                    vector=base[index].vector,
                )
        return results


def _clip01(value: float) -> float:
    if not np.isfinite(value):
        return 0.0
    return float(min(1.0, max(0.0, value)))
