"""Mutation operators over co-design genomes.

A steady-state evolutionary algorithm spends most of its time applying small
perturbations to good candidates.  Each operator here changes one aspect of
the genome — a layer width, an activation, the grid geometry, the batch size —
and the composite :class:`CoDesignMutator` picks operators according to
configurable probabilities, mirroring the parameter list in sections III-A and
III-C of the paper.

All operators are pure: they take a genome and an RNG and return a *new*
genome, never modifying their input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hardware.device import FPGADevice
from ..hardware.systolic import GridConfig
from .genome import CoDesignGenome, CoDesignSearchSpace, HardwareGenome, MLPGenome

__all__ = [
    "MutationConfig",
    "mutate_layer_size",
    "mutate_activation",
    "mutate_add_layer",
    "mutate_remove_layer",
    "mutate_bias",
    "mutate_grid_dimension",
    "mutate_interleave",
    "mutate_vector_width",
    "mutate_fpga_batch",
    "mutate_gpu_batch",
    "CoDesignMutator",
]


@dataclass(frozen=True)
class MutationConfig:
    """Relative probabilities of each mutation operator.

    The values are weights, not probabilities — they are normalized by the
    mutator.  Setting a weight to 0 disables the operator (for example, an
    accuracy-only search may disable all hardware mutations).
    """

    layer_size: float = 3.0
    activation: float = 2.0
    add_layer: float = 1.0
    remove_layer: float = 1.0
    bias: float = 0.5
    grid_dimension: float = 2.0
    interleave: float = 1.5
    vector_width: float = 1.0
    fpga_batch: float = 1.0
    gpu_batch: float = 0.5

    def __post_init__(self) -> None:
        weights = self.as_dict()
        if any(value < 0 for value in weights.values()):
            raise ValueError(f"mutation weights must be >= 0, got {weights}")
        if sum(weights.values()) <= 0:
            raise ValueError("at least one mutation weight must be positive")

    def as_dict(self) -> dict[str, float]:
        """Weights keyed by operator name."""
        return {
            "layer_size": self.layer_size,
            "activation": self.activation,
            "add_layer": self.add_layer,
            "remove_layer": self.remove_layer,
            "bias": self.bias,
            "grid_dimension": self.grid_dimension,
            "interleave": self.interleave,
            "vector_width": self.vector_width,
            "fpga_batch": self.fpga_batch,
            "gpu_batch": self.gpu_batch,
        }

    @classmethod
    def accuracy_only(cls) -> "MutationConfig":
        """Weights for an accuracy-only search (hardware genes frozen)."""
        return cls(grid_dimension=0.0, interleave=0.0, vector_width=0.0, fpga_batch=0.0, gpu_batch=0.0)

    @classmethod
    def hardware_only(cls) -> "MutationConfig":
        """Weights for a hardware-only search (network genes frozen)."""
        return cls(layer_size=0.0, activation=0.0, add_layer=0.0, remove_layer=0.0, bias=0.0)


def _choice_different(rng: np.random.Generator, options: tuple, current) -> object:
    """Pick a random option different from ``current`` when possible."""
    alternatives = [value for value in options if value != current]
    if not alternatives:
        return current
    return alternatives[int(rng.integers(0, len(alternatives)))]


# ------------------------------------------------------------------ network


def mutate_layer_size(genome: MLPGenome, space: CoDesignSearchSpace, rng: np.random.Generator) -> MLPGenome:
    """Change the width of one randomly chosen hidden layer."""
    if not genome.hidden_layers:
        return genome
    index = int(rng.integers(0, len(genome.hidden_layers)))
    new_size = _choice_different(rng, space.mlp_space.layer_sizes, genome.hidden_layers[index])
    hidden = list(genome.hidden_layers)
    hidden[index] = int(new_size)
    return MLPGenome(hidden_layers=tuple(hidden), activations=genome.activations, use_bias=genome.use_bias)


def mutate_activation(genome: MLPGenome, space: CoDesignSearchSpace, rng: np.random.Generator) -> MLPGenome:
    """Change the activation of one randomly chosen hidden layer."""
    if not genome.activations:
        return genome
    index = int(rng.integers(0, len(genome.activations)))
    new_activation = _choice_different(rng, space.mlp_space.activations, genome.activations[index])
    activations = list(genome.activations)
    activations[index] = str(new_activation)
    return MLPGenome(hidden_layers=genome.hidden_layers, activations=tuple(activations), use_bias=genome.use_bias)


def mutate_add_layer(genome: MLPGenome, space: CoDesignSearchSpace, rng: np.random.Generator) -> MLPGenome:
    """Insert a new hidden layer at a random position (bounded by max_layers)."""
    if genome.num_hidden_layers >= space.mlp_space.max_layers:
        return genome
    position = int(rng.integers(0, genome.num_hidden_layers + 1))
    size = int(rng.choice(space.mlp_space.layer_sizes))
    activation = str(rng.choice(space.mlp_space.activations))
    hidden = list(genome.hidden_layers)
    activations = list(genome.activations)
    hidden.insert(position, size)
    activations.insert(position, activation)
    return MLPGenome(hidden_layers=tuple(hidden), activations=tuple(activations), use_bias=genome.use_bias)


def mutate_remove_layer(genome: MLPGenome, space: CoDesignSearchSpace, rng: np.random.Generator) -> MLPGenome:
    """Remove one hidden layer (bounded below by min_layers, never below 1)."""
    floor = max(1, space.mlp_space.min_layers)
    if genome.num_hidden_layers <= floor:
        return genome
    index = int(rng.integers(0, genome.num_hidden_layers))
    hidden = list(genome.hidden_layers)
    activations = list(genome.activations)
    del hidden[index]
    del activations[index]
    return MLPGenome(hidden_layers=tuple(hidden), activations=tuple(activations), use_bias=genome.use_bias)


def mutate_bias(genome: MLPGenome, space: CoDesignSearchSpace, rng: np.random.Generator) -> MLPGenome:
    """Flip the use_bias switch (when the space allows it)."""
    if not space.mlp_space.allow_bias_toggle:
        return genome
    return MLPGenome(
        hidden_layers=genome.hidden_layers,
        activations=genome.activations,
        use_bias=not genome.use_bias,
    )


# ----------------------------------------------------------------- hardware


def _replace_grid(genome: HardwareGenome, **changes) -> HardwareGenome:
    grid = genome.grid
    values = grid.to_dict()
    values.update(changes)
    return HardwareGenome(grid=GridConfig.from_dict(values), batch_size=genome.batch_size)


def mutate_grid_dimension(
    genome: HardwareGenome, space: CoDesignSearchSpace, rng: np.random.Generator
) -> HardwareGenome:
    """Change either the row or the column count of the PE grid."""
    grid_space = space.hardware_space.grid_space
    if rng.random() < 0.5:
        new_rows = _choice_different(rng, grid_space.rows, genome.grid.rows)
        return _replace_grid(genome, rows=int(new_rows))
    new_columns = _choice_different(rng, grid_space.columns, genome.grid.columns)
    return _replace_grid(genome, columns=int(new_columns))


def mutate_interleave(
    genome: HardwareGenome, space: CoDesignSearchSpace, rng: np.random.Generator
) -> HardwareGenome:
    """Change the interleave (double-buffer depth) in one dimension."""
    grid_space = space.hardware_space.grid_space
    if rng.random() < 0.5:
        new_value = _choice_different(rng, grid_space.interleave_rows, genome.grid.interleave_rows)
        return _replace_grid(genome, interleave_rows=int(new_value))
    new_value = _choice_different(rng, grid_space.interleave_columns, genome.grid.interleave_columns)
    return _replace_grid(genome, interleave_columns=int(new_value))


def mutate_vector_width(
    genome: HardwareGenome, space: CoDesignSearchSpace, rng: np.random.Generator
) -> HardwareGenome:
    """Change the per-PE vector width."""
    grid_space = space.hardware_space.grid_space
    new_value = _choice_different(rng, grid_space.vector_width, genome.grid.vector_width)
    return _replace_grid(genome, vector_width=int(new_value))


def mutate_fpga_batch(
    genome: HardwareGenome, space: CoDesignSearchSpace, rng: np.random.Generator
) -> HardwareGenome:
    """Change the FPGA inference batch size."""
    new_batch = _choice_different(rng, space.hardware_space.batch_sizes, genome.batch_size)
    return HardwareGenome(grid=genome.grid, batch_size=int(new_batch))


# ---------------------------------------------------------------- composite


@dataclass
class CoDesignMutator:
    """Applies one weighted-random mutation to a co-design genome.

    Parameters
    ----------
    space:
        The search space defining legal values.
    config:
        Relative operator weights.
    device:
        Optional FPGA device; when given, hardware mutations that produce a
        grid exceeding the device's resources are retried (up to
        ``max_attempts``) and finally rejected in favour of the original
        genome, keeping the population feasible by construction.
    """

    space: CoDesignSearchSpace
    config: MutationConfig = field(default_factory=MutationConfig)
    device: FPGADevice | None = None
    max_attempts: int = 8

    def __post_init__(self) -> None:
        weights = self.config.as_dict()
        self._operator_names = [name for name, weight in weights.items() if weight > 0]
        total = sum(weights[name] for name in self._operator_names)
        self._probabilities = np.asarray(
            [weights[name] / total for name in self._operator_names], dtype=float
        )

    def mutate(self, genome: CoDesignGenome, rng: np.random.Generator) -> CoDesignGenome:
        """Return a mutated copy of ``genome`` (always at least attempts a change)."""
        for _ in range(self.max_attempts):
            operator = str(rng.choice(self._operator_names, p=self._probabilities))
            candidate = self._apply(operator, genome, rng)
            if candidate == genome:
                continue
            if self.device is not None and not candidate.hardware.fits(self.device):
                continue
            return candidate
        return genome

    def _apply(self, operator: str, genome: CoDesignGenome, rng: np.random.Generator) -> CoDesignGenome:
        if operator == "layer_size":
            return genome.with_mlp(mutate_layer_size(genome.mlp, self.space, rng))
        if operator == "activation":
            return genome.with_mlp(mutate_activation(genome.mlp, self.space, rng))
        if operator == "add_layer":
            return genome.with_mlp(mutate_add_layer(genome.mlp, self.space, rng))
        if operator == "remove_layer":
            return genome.with_mlp(mutate_remove_layer(genome.mlp, self.space, rng))
        if operator == "bias":
            return genome.with_mlp(mutate_bias(genome.mlp, self.space, rng))
        if operator == "grid_dimension":
            return genome.with_hardware(mutate_grid_dimension(genome.hardware, self.space, rng))
        if operator == "interleave":
            return genome.with_hardware(mutate_interleave(genome.hardware, self.space, rng))
        if operator == "vector_width":
            return genome.with_hardware(mutate_vector_width(genome.hardware, self.space, rng))
        if operator == "fpga_batch":
            return genome.with_hardware(mutate_fpga_batch(genome.hardware, self.space, rng))
        if operator == "gpu_batch":
            return mutate_gpu_batch(genome, self.space, rng)
        raise ValueError(f"unknown mutation operator {operator!r}")


def mutate_gpu_batch(
    genome: CoDesignGenome, space: CoDesignSearchSpace, rng: np.random.Generator
) -> CoDesignGenome:
    """Change the GPU baseline batch size."""
    new_batch = _choice_different(rng, space.gpu_batch_sizes, genome.gpu_batch_size)
    return CoDesignGenome(mlp=genome.mlp, hardware=genome.hardware, gpu_batch_size=int(new_batch))
