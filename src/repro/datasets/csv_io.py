"""CSV import/export — the tabular interchange format of the ECAD flow.

The paper's flow begins with "a dataset exported into a Comma Separated Value
(CSV) tabular data format".  This module writes datasets into that format and
reads them back, so the CLI can be pointed at an arbitrary user-provided CSV
just like the original system.

Format: one header row; every column except the last is a numeric feature, the
last column (named ``label`` on export) is the integer class label.  A second
CSV with the same layout may carry a pre-split test partition.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .base import Dataset

__all__ = ["save_dataset_csv", "load_dataset_csv"]


def save_dataset_csv(dataset: Dataset, path: str | Path, test_path: str | Path | None = None) -> None:
    """Write ``dataset`` to ``path`` (and its test split to ``test_path`` if given).

    Raises
    ------
    ValueError
        If a test partition exists but no ``test_path`` was provided, which
        would silently drop data.
    """
    path = Path(path)
    if dataset.has_test_split and test_path is None:
        raise ValueError(
            "dataset has a test split; pass test_path to avoid silently dropping it"
        )
    _write_partition(path, dataset.features, dataset.labels)
    if test_path is not None and dataset.has_test_split:
        _write_partition(Path(test_path), dataset.test_features, dataset.test_labels)


def _write_partition(path: Path, features: np.ndarray, labels: np.ndarray) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    num_features = features.shape[1]
    header = [f"feature_{i}" for i in range(num_features)] + ["label"]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row, label in zip(features, labels):
            writer.writerow([f"{value:.8g}" for value in row] + [int(label)])


def load_dataset_csv(
    path: str | Path,
    test_path: str | Path | None = None,
    name: str | None = None,
    label_column: str | int | None = None,
) -> Dataset:
    """Load a dataset from a CSV file (plus an optional test-partition CSV).

    Parameters
    ----------
    path:
        Training (or full) partition CSV.
    test_path:
        Optional pre-split test partition with identical columns.
    name:
        Dataset name; defaults to the file stem.
    label_column:
        Column carrying the class label, given as a header name or integer
        index.  Defaults to the last column.
    """
    path = Path(path)
    features, labels = _read_partition(path, label_column)
    test_features = test_labels = None
    if test_path is not None:
        test_features, test_labels = _read_partition(Path(test_path), label_column)
    return Dataset(
        name=name or path.stem,
        features=features,
        labels=labels,
        test_features=test_features,
        test_labels=test_labels,
        metadata={"source_csv": str(path)},
    )


def _read_partition(path: Path, label_column: str | int | None) -> tuple[np.ndarray, np.ndarray]:
    if not path.exists():
        raise FileNotFoundError(f"dataset CSV not found: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"CSV file {path} is empty") from None
        rows = [row for row in reader if row]

    if not rows:
        raise ValueError(f"CSV file {path} has a header but no data rows")

    label_index = _resolve_label_column(header, label_column, path)
    feature_indices = [i for i in range(len(header)) if i != label_index]

    features = np.empty((len(rows), len(feature_indices)), dtype=float)
    labels = np.empty(len(rows), dtype=int)
    for row_number, row in enumerate(rows):
        if len(row) != len(header):
            raise ValueError(
                f"row {row_number + 2} of {path} has {len(row)} columns, expected {len(header)}"
            )
        try:
            features[row_number] = [float(row[i]) for i in feature_indices]
            labels[row_number] = int(float(row[label_index]))
        except ValueError as exc:
            raise ValueError(f"non-numeric value in row {row_number + 2} of {path}: {exc}") from exc

    # Remap labels onto a dense 0..C-1 range in case the CSV used e.g. {1, 2}.
    unique = np.unique(labels)
    remap = {int(value): index for index, value in enumerate(unique)}
    labels = np.asarray([remap[int(value)] for value in labels], dtype=int)
    return features, labels


def _resolve_label_column(header: list[str], label_column: str | int | None, path: Path) -> int:
    if label_column is None:
        return len(header) - 1
    if isinstance(label_column, int):
        if not -len(header) <= label_column < len(header):
            raise ValueError(f"label column index {label_column} out of range for {path}")
        return label_column % len(header)
    try:
        return header.index(str(label_column))
    except ValueError:
        raise ValueError(
            f"label column {label_column!r} not found in {path}; columns are {header}"
        ) from None
