"""Per-process cache of preprocessing work shared across candidate evaluations.

Every candidate evaluation used to redo the same dataset-wide preprocessing:
coerce arrays, fit a :class:`~repro.nn.preprocessing.StandardScaler` on the
training split, one-hot encode labels, and (for the k-fold protocol) derive
fold index partitions.  None of that depends on the candidate — only on the
dataset content and the protocol parameters — so a population of hundreds of
candidates repeats identical work hundreds of times.

:class:`PreparedDataset` computes each artifact once and memoizes it.
:func:`prepare_dataset` keeps one ``PreparedDataset`` per live :class:`Dataset`
object in the current process, so the threads backend (and repeated requests
inside one worker process) share a single preprocessing pass.  The processes
backend gets the same effect because each worker process materializes the
dataset once from shared memory (see :mod:`repro.datasets.shared`) and then
hits this per-process memo on every subsequent request.

Bit-compatibility note: the cached artifacts are produced by exactly the same
code the per-candidate path runs (``StandardScaler``, ``one_hot``,
``kfold_indices``), so evaluations built on a ``PreparedDataset`` are
bit-identical to evaluations that re-preprocess from scratch.
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING

import numpy as np

from .base import Dataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..nn.preprocessing import StandardScaler

__all__ = ["PreparedDataset", "prepare_dataset", "clear_prepared_cache"]


class PreparedDataset:
    """Candidate-independent preprocessing artifacts for one dataset.

    All artifacts are lazy: nothing is computed until a worker first asks for
    it, and each is computed at most once per process.  Accessors hand out the
    cached arrays directly — callers must treat them as read-only.
    """

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self._lock = threading.Lock()
        self._fingerprint: str | None = None
        self._scaler: "StandardScaler | None" = None
        self._standardized_features: np.ndarray | None = None
        self._standardized_test_features: np.ndarray | None = None
        self._one_hot_labels: np.ndarray | None = None
        self._fold_cache: dict[tuple[int, int | None], list[tuple[np.ndarray, np.ndarray]]] = {}

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the underlying dataset (memoized)."""
        if self._fingerprint is None:
            from ..store.digest import dataset_fingerprint

            self._fingerprint = dataset_fingerprint(self.dataset)
        return self._fingerprint

    # ------------------------------------------------------------------
    # scaler artifacts (pre-split single-fold protocol)
    # ------------------------------------------------------------------
    @property
    def scaler(self) -> "StandardScaler":
        """``StandardScaler`` fitted once on the full training split."""
        with self._lock:
            if self._scaler is None:
                from ..nn.preprocessing import StandardScaler

                self._scaler = StandardScaler().fit(self.dataset.features)
            return self._scaler

    @property
    def standardized_features(self) -> np.ndarray:
        """Training features transformed by :attr:`scaler` (computed once)."""
        scaler = self.scaler
        with self._lock:
            if self._standardized_features is None:
                self._standardized_features = scaler.transform(self.dataset.features)
            return self._standardized_features

    @property
    def standardized_test_features(self) -> np.ndarray:
        """Pre-split test features transformed by the *training* scaler."""
        if self.dataset.test_features is None:
            raise ValueError(f"dataset '{self.dataset.name}' has no pre-split test partition")
        scaler = self.scaler
        with self._lock:
            if self._standardized_test_features is None:
                self._standardized_test_features = scaler.transform(self.dataset.test_features)
            return self._standardized_test_features

    # ------------------------------------------------------------------
    # label artifacts
    # ------------------------------------------------------------------
    @property
    def one_hot_labels(self) -> np.ndarray:
        """One-hot encoding of the full training labels.

        Row ``i`` equals ``one_hot(labels, k)[i]`` exactly, so slicing this
        matrix by fold/shuffle indices reproduces what per-candidate encoding
        of the sliced labels would have produced.
        """
        with self._lock:
            if self._one_hot_labels is None:
                from ..nn.preprocessing import one_hot

                self._one_hot_labels = one_hot(self.dataset.labels, self.dataset.num_classes)
            return self._one_hot_labels

    # ------------------------------------------------------------------
    # fold splits
    # ------------------------------------------------------------------
    def fold_indices(
        self, num_folds: int, seed: int | None
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Memoized ``kfold_indices`` partitions for this dataset's size."""
        key = (int(num_folds), seed)
        with self._lock:
            cached = self._fold_cache.get(key)
        if cached is not None:
            return cached
        from ..nn.evaluation import kfold_indices

        folds = kfold_indices(self.dataset.num_samples, num_folds, seed=seed)
        with self._lock:
            return self._fold_cache.setdefault(key, folds)


# One PreparedDataset per live Dataset object in this process.  Keyed by
# ``id()`` with a ``weakref.finalize`` guard so entries vanish when the
# dataset is garbage collected (ids are recycled, so an unguarded id-keyed
# dict could silently serve stale artifacts for a *different* dataset).
_PREPARED: dict[int, PreparedDataset] = {}
_PREPARED_LOCK = threading.Lock()


def _evict(dataset_id: int) -> None:
    with _PREPARED_LOCK:
        _PREPARED.pop(dataset_id, None)


def prepare_dataset(dataset: Dataset) -> PreparedDataset:
    """Return the process-wide :class:`PreparedDataset` for ``dataset``."""
    key = id(dataset)
    with _PREPARED_LOCK:
        displaced = _PREPARED.get(key)
        if displaced is not None and displaced.dataset is dataset:
            return displaced
        prepared = PreparedDataset(dataset)
        _PREPARED[key] = prepared
        weakref.finalize(dataset, _evict, key)
    # ``displaced`` (a stale entry from a recycled id) is released only after
    # the lock is dropped: losing the last reference to its dataset fires the
    # _evict finalizer synchronously, which needs _PREPARED_LOCK itself.
    del displaced
    return prepared


def clear_prepared_cache() -> None:
    """Drop every cached :class:`PreparedDataset` (test isolation hook)."""
    with _PREPARED_LOCK:
        entries = list(_PREPARED.values())
        _PREPARED.clear()
    # Release entry references outside the lock — dropping the last reference
    # to a dataset runs its _evict finalizer, which acquires _PREPARED_LOCK.
    del entries
