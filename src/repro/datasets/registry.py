"""Registry mapping paper dataset names to their synthetic generators.

The benchmarks and the CLI refer to datasets by the names used in the paper
("mnist", "credit-g", ...); this registry resolves those names (plus the
explicit ``*_like`` aliases) to generator functions and records which
evaluation protocol each one uses (10-fold CV vs pre-split single fold),
matching Tables I and II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..registry import Registry
from .base import Dataset
from .synthetic import (
    PAPER_DATASET_SPECS,
    make_bioresponse_like,
    make_credit_g_like,
    make_fashion_mnist_like,
    make_har_like,
    make_mnist_like,
    make_phishing_like,
)

__all__ = [
    "DATASETS",
    "DatasetEntry",
    "available_datasets",
    "load_dataset",
    "dataset_entry",
    "dataset_entries",
    "register_dataset",
]


@dataclass(frozen=True)
class DatasetEntry:
    """One registered dataset: its generator plus paper-protocol metadata.

    Attributes
    ----------
    name:
        Canonical registry key.
    factory:
        Callable ``(seed, scale) -> Dataset``.
    evaluation_protocol:
        Either ``"10-fold"`` (OpenML datasets, Table I) or ``"1-fold"``
        (pre-split Keras datasets, Table II).
    paper_top_accuracy_any:
        Best accuracy reported in the paper by *any* method, for reference in
        EXPERIMENTS.md comparisons.
    paper_top_accuracy_mlp:
        Best previously-published MLP accuracy from the paper's tables.
    paper_ecad_accuracy:
        The accuracy the paper's ECAD search achieved.
    """

    name: str
    factory: Callable[..., Dataset]
    evaluation_protocol: str
    paper_top_accuracy_any: float
    paper_top_accuracy_mlp: float
    paper_ecad_accuracy: float

    def load(self, seed: int | None = 0, scale: float = 1.0) -> Dataset:
        """Instantiate the dataset with the given seed and size scale."""
        return self.factory(seed=seed, scale=scale)


#: The shared dataset registry; plugins may register additional entries.
#: ``allow_rebind`` keeps the historical behaviour of letting the same
#: canonical entry be re-registered (e.g. on module reload).
DATASETS: Registry[DatasetEntry] = Registry("dataset", allow_rebind=True)


def register_dataset(
    entry: DatasetEntry, aliases: tuple[str, ...] = (), overwrite: bool = False
) -> None:
    """Add a dataset entry (and optional aliases) to the registry."""
    DATASETS.register(entry.name, entry, aliases=aliases, overwrite=overwrite)


def available_datasets() -> list[str]:
    """Canonical names of all registered datasets (aliases excluded)."""
    return DATASETS.available()


def dataset_entries() -> list[DatasetEntry]:
    """All registered entries in canonical-name order (aliases deduplicated)."""
    return list(DATASETS.entries().values())


def dataset_entry(name: str) -> DatasetEntry:
    """Look up a dataset entry by name or alias."""
    return DATASETS.resolve(name)


def load_dataset(name: str, seed: int | None = 0, scale: float = 1.0) -> Dataset:
    """Instantiate a registered dataset by name."""
    return dataset_entry(name).load(seed=seed, scale=scale)


# --------------------------------------------------------------------------
# Register the six paper datasets.  Reference accuracies come from Tables I
# and II of the paper and are used in EXPERIMENTS.md comparisons only.
# --------------------------------------------------------------------------

register_dataset(
    DatasetEntry(
        name="mnist_like",
        factory=make_mnist_like,
        evaluation_protocol="1-fold",
        paper_top_accuracy_any=0.9979,
        paper_top_accuracy_mlp=0.9840,
        paper_ecad_accuracy=0.9852,
    ),
    aliases=("mnist",),
)
register_dataset(
    DatasetEntry(
        name="fashion_mnist_like",
        factory=make_fashion_mnist_like,
        evaluation_protocol="1-fold",
        paper_top_accuracy_any=0.8970,
        paper_top_accuracy_mlp=0.8770,
        paper_ecad_accuracy=0.8923,
    ),
    aliases=("fashion_mnist", "fashion-mnist"),
)
register_dataset(
    DatasetEntry(
        name="credit_g_like",
        factory=make_credit_g_like,
        evaluation_protocol="10-fold",
        paper_top_accuracy_any=0.7860,
        paper_top_accuracy_mlp=0.7470,
        paper_ecad_accuracy=0.7880,
    ),
    aliases=("credit_g", "credit-g", "creditg"),
)
register_dataset(
    DatasetEntry(
        name="har_like",
        factory=make_har_like,
        evaluation_protocol="10-fold",
        paper_top_accuracy_any=0.9957,
        paper_top_accuracy_mlp=0.1888,
        paper_ecad_accuracy=0.9909,
    ),
    aliases=("har",),
)
register_dataset(
    DatasetEntry(
        name="phishing_like",
        factory=make_phishing_like,
        evaluation_protocol="10-fold",
        paper_top_accuracy_any=0.9753,
        paper_top_accuracy_mlp=0.9733,
        paper_ecad_accuracy=0.9756,
    ),
    aliases=("phishing",),
)
register_dataset(
    DatasetEntry(
        name="bioresponse_like",
        factory=make_bioresponse_like,
        evaluation_protocol="10-fold",
        paper_top_accuracy_any=0.8160,
        paper_top_accuracy_mlp=0.5423,
        paper_ecad_accuracy=0.8038,
    ),
    aliases=("bioresponse",),
)

#: Convenience view of the registered paper specs, keyed by canonical name.
PAPER_SPECS = dict(PAPER_DATASET_SPECS)
