"""Ship datasets to process-pool workers once, via POSIX shared memory.

With the ``processes`` backend every :class:`~repro.workers.base.EvaluationRequest`
used to pickle the full dataset arrays into the IPC pipe — for an MNIST-sized
problem that is tens of megabytes serialized, copied, and deserialized *per
request per worker*.  This module replaces that with the classic
``multiprocessing.shared_memory`` handshake:

* The master (creator side) copies each array into a named shared-memory
  segment exactly once — :class:`SharedDataset` — and puts only a tiny
  picklable :class:`SharedDatasetHandle` (segment names + shapes + dtypes) on
  the request.
* Workers (consumer side) call :func:`attach_shared_dataset`, which maps the
  segments zero-copy into a regular :class:`~repro.datasets.base.Dataset` and
  memoizes it per process, so every later request for the same handle is a
  dictionary lookup.  The attached dataset then feeds the per-process
  preprocessing memo in :mod:`repro.datasets.prepared`.

Lifecycle rules (pinned by ``tests/test_shared_datasets.py``):

* The *creator* owns the segments: :meth:`SharedDataset.close` unlinks them
  and is idempotent; ``Master.shutdown`` calls it even when workers crashed,
  so segments never outlive the run.
* Consumers never unlink.  Python's ``resource_tracker`` would otherwise
  "helpfully" destroy the segments when the first worker exits (and warn
  about leaks); each attach therefore unregisters the segment from the
  tracker, leaving ownership with the creator.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from .base import Dataset

__all__ = [
    "SharedArraySpec",
    "SharedDatasetHandle",
    "SharedDataset",
    "attach_shared_dataset",
    "clear_attached_cache",
]


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything needed to rebuild one ndarray from a shared segment."""

    segment: str
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedDatasetHandle:
    """Picklable reference to a dataset exported into shared memory.

    The handle is a few hundred bytes regardless of dataset size; it is what
    travels on an :class:`~repro.workers.base.EvaluationRequest` in place of
    the arrays themselves.  ``token`` identifies the export (consumer-side
    memo key); two handles with the same token map the same segments.
    """

    token: str
    name: str
    features: SharedArraySpec
    labels: SharedArraySpec
    test_features: SharedArraySpec | None = None
    test_labels: SharedArraySpec | None = None
    metadata: dict = field(default_factory=dict)


class SharedDataset:
    """Creator-side export of one dataset into shared-memory segments.

    Owns the segments until :meth:`close` (close + unlink, idempotent).  A
    ``weakref.finalize`` backstop releases the segments if the owner forgets,
    so an abandoned export cannot leak ``/dev/shm`` space past process exit.
    """

    def __init__(self, dataset: Dataset) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        try:
            features = self._export(dataset.features)
            labels = self._export(dataset.labels)
            test_features = (
                self._export(dataset.test_features) if dataset.test_features is not None else None
            )
            test_labels = (
                self._export(dataset.test_labels) if dataset.test_labels is not None else None
            )
        except Exception:
            self.close()
            raise
        self.handle = SharedDatasetHandle(
            token=features.segment,
            name=dataset.name,
            features=features,
            labels=labels,
            test_features=test_features,
            test_labels=test_labels,
            metadata=dict(dataset.metadata),
        )
        self._finalizer = weakref.finalize(self, _release_segments, list(self._segments))

    def _export(self, array: np.ndarray) -> SharedArraySpec:
        contiguous = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True, size=max(1, contiguous.nbytes))
        self._segments.append(segment)
        view = np.ndarray(contiguous.shape, dtype=contiguous.dtype, buffer=segment.buf)
        view[...] = contiguous
        return SharedArraySpec(
            segment=segment.name, shape=contiguous.shape, dtype=str(contiguous.dtype)
        )

    @property
    def segment_names(self) -> list[str]:
        """Names of the owned segments (inspection/testing)."""
        return [segment.name for segment in self._segments]

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close and unlink every owned segment.  Safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        finalizer = getattr(self, "_finalizer", None)
        if finalizer is not None:
            finalizer.detach()
        _release_segments(self._segments)

    def __enter__(self) -> "SharedDataset":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _release_segments(segments: list[shared_memory.SharedMemory]) -> None:
    for segment in segments:
        try:
            segment.close()
        except OSError:
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        except OSError:
            pass


_ATTACH_GUARD = threading.Lock()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    # Attaching registers the segment with the resource tracker, which would
    # unlink it when *this* process exits even though the creator still owns
    # it — and because the tracker's cache is a set shared across the process
    # tree, register/unregister pairs from sibling workers collide.  Python
    # 3.13 has ``track=False`` for exactly this; older versions need the
    # registration suppressed by hand (bpo-39959).
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    with _ATTACH_GUARD:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


# Consumer-side memo: one attached Dataset per handle token per process.
_ATTACHED: dict[str, Dataset] = {}
_ATTACHED_LOCK = threading.Lock()


def attach_shared_dataset(handle: SharedDatasetHandle) -> Dataset:
    """Materialize ``handle`` as a :class:`Dataset`, memoized per process.

    The feature matrix is a zero-copy view over the shared segment (the
    attached ``SharedMemory`` objects are pinned in ``dataset.metadata`` to
    keep the mapping alive); label arrays are tiny and get copied by the
    ``Dataset`` constructor's dtype coercion.
    """
    with _ATTACHED_LOCK:
        cached = _ATTACHED.get(handle.token)
        if cached is not None:
            return cached

    segments: list[shared_memory.SharedMemory] = []

    def load(spec: SharedArraySpec | None) -> np.ndarray | None:
        if spec is None:
            return None
        segment = _attach_segment(spec.segment)
        segments.append(segment)
        return np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)

    dataset = Dataset(
        name=handle.name,
        features=load(handle.features),
        labels=load(handle.labels),
        test_features=load(handle.test_features),
        test_labels=load(handle.test_labels),
        metadata={**handle.metadata, "shared_memory_segments": segments},
    )
    with _ATTACHED_LOCK:
        return _ATTACHED.setdefault(handle.token, dataset)


def clear_attached_cache() -> None:
    """Drop consumer-side attachments (test isolation hook).

    Closes the local mappings; the segments themselves stay alive until the
    creator unlinks them.
    """
    with _ATTACHED_LOCK:
        datasets = list(_ATTACHED.values())
        _ATTACHED.clear()
    for dataset in datasets:
        for segment in dataset.metadata.get("shared_memory_segments", []):
            try:
                segment.close()
            except OSError:
                pass
