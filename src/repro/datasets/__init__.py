"""Dataset substrate: containers, synthetic generators, CSV I/O and registry.

The six benchmark datasets from the paper (MNIST, Fashion-MNIST, Credit-g,
HAR, Phishing, Bioresponse) are represented by synthetic generators with the
same structural footprint; see :mod:`repro.datasets.synthetic` for the
substitution rationale.
"""

from .base import Dataset, DatasetInfo
from .csv_io import load_dataset_csv, save_dataset_csv
from .prepared import PreparedDataset, clear_prepared_cache, prepare_dataset
from .registry import DatasetEntry, available_datasets, dataset_entry, load_dataset, register_dataset
from .shared import (
    SharedArraySpec,
    SharedDataset,
    SharedDatasetHandle,
    attach_shared_dataset,
    clear_attached_cache,
)
from .synthetic import (
    PAPER_DATASET_SPECS,
    SyntheticSpec,
    make_bioresponse_like,
    make_classification,
    make_credit_g_like,
    make_fashion_mnist_like,
    make_har_like,
    make_mnist_like,
    make_phishing_like,
)

__all__ = [
    "Dataset",
    "DatasetInfo",
    "load_dataset_csv",
    "save_dataset_csv",
    "PreparedDataset",
    "clear_prepared_cache",
    "prepare_dataset",
    "SharedArraySpec",
    "SharedDataset",
    "SharedDatasetHandle",
    "attach_shared_dataset",
    "clear_attached_cache",
    "DatasetEntry",
    "available_datasets",
    "dataset_entry",
    "load_dataset",
    "register_dataset",
    "PAPER_DATASET_SPECS",
    "SyntheticSpec",
    "make_bioresponse_like",
    "make_classification",
    "make_credit_g_like",
    "make_fashion_mnist_like",
    "make_har_like",
    "make_mnist_like",
    "make_phishing_like",
]
