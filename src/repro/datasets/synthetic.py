"""Synthetic stand-ins for the six datasets evaluated in the paper.

The original experiments use MNIST, Fashion-MNIST (Keras), and Credit-g, HAR,
Phishing, Bioresponse (OpenML/UCI).  Those files are not available offline, so
this module generates synthetic classification problems with the *same
structural footprint* — input dimensionality, class count, and (scaled) sample
count — and a tunable difficulty so that classification accuracy is a
meaningful, architecture-dependent signal for the evolutionary search.

The generator is a Gaussian class-prototype mixture with three knobs that make
the problem genuinely non-linear:

* each class owns a small number of prototype centroids (so a linear model
  underfits and wider/deeper MLPs gain accuracy),
* a fraction of the features are pure noise (so the network must learn to
  ignore them), and
* class separation controls the Bayes error (so accuracy saturates below 1.0
  for the "hard" datasets, mirroring e.g. Credit-g's ~0.79 ceiling).

What matters for the reproduction is preserved exactly: the GEMM dimensions
each dataset induces (first-layer ``k`` = number of features, last-layer ``n``
= number of classes) and the relative dataset sizes that drive the run-time
statistics of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Dataset

__all__ = [
    "SyntheticSpec",
    "make_classification",
    "make_mnist_like",
    "make_fashion_mnist_like",
    "make_credit_g_like",
    "make_har_like",
    "make_phishing_like",
    "make_bioresponse_like",
    "PAPER_DATASET_SPECS",
]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic classification problem.

    Attributes
    ----------
    name:
        Dataset identifier, e.g. ``"mnist_like"``.
    num_features:
        Input dimensionality (matches the real dataset).
    num_classes:
        Number of target classes (matches the real dataset).
    num_samples:
        Number of training samples generated at ``scale=1.0``.
    num_test_samples:
        Size of the pre-split test partition (0 means no pre-split; the
        dataset is then evaluated with k-fold CV like the OpenML datasets).
    class_separation:
        Distance between class prototype centroids in units of the noise
        standard deviation.  Larger values make the problem easier.
    prototypes_per_class:
        Number of Gaussian modes per class; > 1 makes the decision boundary
        non-linear so that network capacity matters.
    noise_feature_fraction:
        Fraction of features that carry no class information.
    label_noise:
        Probability that a sample's label is flipped to a random other class;
        sets an explicit accuracy ceiling.
    """

    name: str
    num_features: int
    num_classes: int
    num_samples: int
    num_test_samples: int = 0
    class_separation: float = 2.0
    prototypes_per_class: int = 2
    noise_feature_fraction: float = 0.3
    label_noise: float = 0.0

    def __post_init__(self) -> None:
        if self.num_features <= 0:
            raise ValueError(f"num_features must be positive, got {self.num_features}")
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        if self.num_samples < self.num_classes:
            raise ValueError("need at least one sample per class")
        if self.num_test_samples < 0:
            raise ValueError(f"num_test_samples must be >= 0, got {self.num_test_samples}")
        if self.class_separation <= 0:
            raise ValueError(f"class_separation must be positive, got {self.class_separation}")
        if self.prototypes_per_class < 1:
            raise ValueError(
                f"prototypes_per_class must be >= 1, got {self.prototypes_per_class}"
            )
        if not 0.0 <= self.noise_feature_fraction < 1.0:
            raise ValueError(
                f"noise_feature_fraction must be in [0, 1), got {self.noise_feature_fraction}"
            )
        if not 0.0 <= self.label_noise < 0.5:
            raise ValueError(f"label_noise must be in [0, 0.5), got {self.label_noise}")


def _generate_partition(
    spec: SyntheticSpec,
    num_samples: int,
    prototypes: np.ndarray,
    informative_mask: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw one partition (train or test) from the shared prototype geometry."""
    labels = rng.integers(0, spec.num_classes, size=num_samples)
    prototype_choice = rng.integers(0, spec.prototypes_per_class, size=num_samples)
    num_informative = int(informative_mask.sum())

    features = rng.normal(0.0, 1.0, size=(num_samples, spec.num_features))
    centroids = prototypes[labels, prototype_choice, :]
    features[:, informative_mask] += centroids[:, :num_informative]

    if spec.label_noise > 0.0:
        flip = rng.random(num_samples) < spec.label_noise
        random_offsets = rng.integers(1, spec.num_classes, size=num_samples)
        labels = np.where(flip, (labels + random_offsets) % spec.num_classes, labels)

    return features, labels.astype(int)


def make_classification(spec: SyntheticSpec, seed: int | None = None, scale: float = 1.0) -> Dataset:
    """Generate a synthetic dataset from a :class:`SyntheticSpec`.

    Parameters
    ----------
    spec:
        Structural and difficulty parameters.
    seed:
        RNG seed; the same (spec, seed, scale) triple always produces the same
        dataset, which the evaluation cache and the tests rely on.
    scale:
        Multiplier on the number of samples (features and classes are never
        scaled).  Benchmarks use small scales to keep run time bounded.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    rng = np.random.default_rng(seed)

    num_informative = max(1, int(round(spec.num_features * (1.0 - spec.noise_feature_fraction))))
    informative_mask = np.zeros(spec.num_features, dtype=bool)
    informative_indices = rng.choice(spec.num_features, size=num_informative, replace=False)
    informative_mask[informative_indices] = True

    # Prototype centroids live only in the informative subspace.  Scaling by
    # 1/sqrt(num_informative) keeps the per-sample separation comparable
    # across datasets of very different dimensionality.
    prototype_scale = spec.class_separation / np.sqrt(num_informative)
    prototypes = rng.normal(
        0.0,
        1.0,
        size=(spec.num_classes, spec.prototypes_per_class, num_informative),
    )
    prototypes *= prototype_scale * np.sqrt(num_informative)

    num_train = max(spec.num_classes, int(round(spec.num_samples * scale)))
    features, labels = _generate_partition(spec, num_train, prototypes, informative_mask, rng)

    test_features = test_labels = None
    if spec.num_test_samples > 0:
        num_test = max(spec.num_classes, int(round(spec.num_test_samples * scale)))
        test_features, test_labels = _generate_partition(
            spec, num_test, prototypes, informative_mask, rng
        )

    return Dataset(
        name=spec.name,
        features=features,
        labels=labels,
        test_features=test_features,
        test_labels=test_labels,
        metadata={
            "synthetic": True,
            "seed": seed,
            "scale": scale,
            "class_separation": spec.class_separation,
            "prototypes_per_class": spec.prototypes_per_class,
            "noise_feature_fraction": spec.noise_feature_fraction,
            "label_noise": spec.label_noise,
        },
    )


# ---------------------------------------------------------------------------
# Per-dataset specifications.  Feature/class counts match the real datasets;
# sample counts match at scale=1.0 and are reduced by the ``scale`` argument
# for fast experiments.  Difficulty knobs are set so the achievable accuracy
# band resembles the paper's (e.g. Credit-g around 0.75-0.80, MNIST > 0.97).
# ---------------------------------------------------------------------------

PAPER_DATASET_SPECS: dict[str, SyntheticSpec] = {
    "mnist_like": SyntheticSpec(
        name="mnist_like",
        num_features=784,
        num_classes=10,
        num_samples=60_000,
        num_test_samples=10_000,
        class_separation=3.5,
        prototypes_per_class=3,
        noise_feature_fraction=0.4,
        label_noise=0.005,
    ),
    "fashion_mnist_like": SyntheticSpec(
        name="fashion_mnist_like",
        num_features=784,
        num_classes=10,
        num_samples=60_000,
        num_test_samples=10_000,
        class_separation=2.2,
        prototypes_per_class=3,
        noise_feature_fraction=0.4,
        label_noise=0.05,
    ),
    "credit_g_like": SyntheticSpec(
        name="credit_g_like",
        num_features=20,
        num_classes=2,
        num_samples=1_000,
        num_test_samples=0,
        class_separation=1.2,
        prototypes_per_class=2,
        noise_feature_fraction=0.35,
        label_noise=0.15,
    ),
    "har_like": SyntheticSpec(
        name="har_like",
        num_features=561,
        num_classes=6,
        num_samples=10_299,
        num_test_samples=0,
        class_separation=3.0,
        prototypes_per_class=2,
        noise_feature_fraction=0.3,
        label_noise=0.003,
    ),
    "phishing_like": SyntheticSpec(
        name="phishing_like",
        num_features=30,
        num_classes=2,
        num_samples=11_055,
        num_test_samples=0,
        class_separation=2.5,
        prototypes_per_class=2,
        noise_feature_fraction=0.2,
        label_noise=0.02,
    ),
    "bioresponse_like": SyntheticSpec(
        name="bioresponse_like",
        num_features=1_776,
        num_classes=2,
        num_samples=3_751,
        num_test_samples=0,
        class_separation=1.6,
        prototypes_per_class=3,
        noise_feature_fraction=0.6,
        label_noise=0.12,
    ),
}


def _make_named(name: str, seed: int | None, scale: float) -> Dataset:
    return make_classification(PAPER_DATASET_SPECS[name], seed=seed, scale=scale)


def make_mnist_like(seed: int | None = 0, scale: float = 1.0) -> Dataset:
    """Synthetic analogue of MNIST: 784 features, 10 classes, pre-split test set."""
    return _make_named("mnist_like", seed, scale)


def make_fashion_mnist_like(seed: int | None = 0, scale: float = 1.0) -> Dataset:
    """Synthetic analogue of Fashion-MNIST: 784 features, 10 classes, harder than MNIST."""
    return _make_named("fashion_mnist_like", seed, scale)


def make_credit_g_like(seed: int | None = 0, scale: float = 1.0) -> Dataset:
    """Synthetic analogue of Credit-g: 20 features, 2 classes, 1000 samples, noisy."""
    return _make_named("credit_g_like", seed, scale)


def make_har_like(seed: int | None = 0, scale: float = 1.0) -> Dataset:
    """Synthetic analogue of HAR: 561 features, 6 classes, ~10.3k samples."""
    return _make_named("har_like", seed, scale)


def make_phishing_like(seed: int | None = 0, scale: float = 1.0) -> Dataset:
    """Synthetic analogue of Phishing Websites: 30 features, 2 classes, ~11k samples."""
    return _make_named("phishing_like", seed, scale)


def make_bioresponse_like(seed: int | None = 0, scale: float = 1.0) -> Dataset:
    """Synthetic analogue of Bioresponse: 1776 features, 2 classes, ~3.7k samples."""
    return _make_named("bioresponse_like", seed, scale)
