"""Dataset containers used throughout the ECAD flow.

The paper's flow starts from "a dataset exported into CSV tabular format" with
well-defined inputs and outputs.  A :class:`Dataset` is the in-memory form of
that export: a dense feature matrix, integer class labels, and the metadata
(name, class count, pre-split test partition) the rest of the system needs to
build configuration files, train candidates, and size hardware workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset", "DatasetInfo"]


@dataclass(frozen=True)
class DatasetInfo:
    """Lightweight structural summary of a dataset.

    Workers and hardware models frequently need only the shape of the problem
    (how wide is the input, how many classes, how many samples) without the
    data itself; this record carries exactly that and nothing else.
    """

    name: str
    num_features: int
    num_classes: int
    num_samples: int
    num_test_samples: int = 0

    def __post_init__(self) -> None:
        if self.num_features <= 0:
            raise ValueError(f"num_features must be positive, got {self.num_features}")
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        if self.num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {self.num_samples}")
        if self.num_test_samples < 0:
            raise ValueError(f"num_test_samples must be >= 0, got {self.num_test_samples}")

    @property
    def has_test_split(self) -> bool:
        """Whether a dedicated test partition exists (MNIST-style datasets)."""
        return self.num_test_samples > 0


@dataclass
class Dataset:
    """A labelled tabular dataset, optionally carrying a pre-defined test split.

    Attributes
    ----------
    name:
        Human-readable dataset identifier, e.g. ``"mnist_like"``.
    features:
        2-D float matrix of shape ``(num_samples, num_features)``.
    labels:
        1-D integer class labels aligned with ``features``.
    test_features / test_labels:
        Optional pre-split test partition.  MNIST and Fashion-MNIST in the
        paper are "standalone pre-split (1-fold) datasets"; the OpenML
        datasets are not pre-split and are evaluated with 10-fold CV instead.
    metadata:
        Free-form provenance (generator parameters, CSV path, etc.).
    """

    name: str
    features: np.ndarray
    labels: np.ndarray
    test_features: np.ndarray | None = None
    test_labels: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=float)
        self.labels = np.asarray(self.labels).reshape(-1).astype(int)
        if self.features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {self.features.shape}")
        if self.features.shape[0] != self.labels.shape[0]:
            raise ValueError(
                f"features ({self.features.shape[0]} rows) and labels "
                f"({self.labels.shape[0]}) disagree in length"
            )
        if self.features.shape[0] == 0:
            raise ValueError("dataset cannot be empty")
        if self.labels.min() < 0:
            raise ValueError("labels must be non-negative integers")
        has_test_features = self.test_features is not None
        has_test_labels = self.test_labels is not None
        if has_test_features != has_test_labels:
            raise ValueError("test_features and test_labels must be provided together")
        if has_test_features:
            self.test_features = np.asarray(self.test_features, dtype=float)
            self.test_labels = np.asarray(self.test_labels).reshape(-1).astype(int)
            if self.test_features.ndim != 2:
                raise ValueError(
                    f"test_features must be 2-D, got shape {self.test_features.shape}"
                )
            if self.test_features.shape[1] != self.features.shape[1]:
                raise ValueError(
                    "train and test partitions disagree on the number of features "
                    f"({self.features.shape[1]} vs {self.test_features.shape[1]})"
                )
            if self.test_features.shape[0] != self.test_labels.shape[0]:
                raise ValueError("test_features and test_labels disagree in length")

    # -------------------------------------------------------------- structure
    @property
    def num_samples(self) -> int:
        """Number of training samples."""
        return int(self.features.shape[0])

    @property
    def num_features(self) -> int:
        """Input dimensionality (the first GEMM ``k`` dimension)."""
        return int(self.features.shape[1])

    @property
    def num_classes(self) -> int:
        """Number of distinct classes across train and test labels."""
        max_label = int(self.labels.max())
        if self.test_labels is not None and self.test_labels.size:
            max_label = max(max_label, int(self.test_labels.max()))
        return max_label + 1

    @property
    def has_test_split(self) -> bool:
        """Whether a dedicated test partition exists."""
        return self.test_features is not None

    @property
    def num_test_samples(self) -> int:
        """Number of samples in the test partition (0 when absent)."""
        if self.test_labels is None:
            return 0
        return int(self.test_labels.shape[0])

    def info(self) -> DatasetInfo:
        """Return the structural summary of this dataset."""
        return DatasetInfo(
            name=self.name,
            num_features=self.num_features,
            num_classes=self.num_classes,
            num_samples=self.num_samples,
            num_test_samples=self.num_test_samples,
        )

    # ------------------------------------------------------------- utilities
    def class_distribution(self) -> np.ndarray:
        """Per-class sample counts over the training partition."""
        return np.bincount(self.labels, minlength=self.num_classes)

    def subsample(self, max_samples: int, seed: int | None = None) -> "Dataset":
        """Return a stratified subsample with at most ``max_samples`` training rows.

        The test partition (if any) is carried over unchanged.  Used to keep
        benchmark runs fast while preserving class balance.
        """
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        if max_samples >= self.num_samples:
            return self
        rng = np.random.default_rng(seed)
        per_class_fraction = max_samples / self.num_samples
        keep: list[int] = []
        for class_label in range(self.num_classes):
            class_indices = np.flatnonzero(self.labels == class_label)
            if class_indices.size == 0:
                continue
            rng.shuffle(class_indices)
            take = max(1, int(round(per_class_fraction * class_indices.size)))
            keep.extend(class_indices[:take].tolist())
        keep_array = np.asarray(sorted(keep), dtype=int)
        return Dataset(
            name=self.name,
            features=self.features[keep_array],
            labels=self.labels[keep_array],
            test_features=self.test_features,
            test_labels=self.test_labels,
            metadata={**self.metadata, "subsampled_to": int(keep_array.size)},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        test = f", test={self.num_test_samples}" if self.has_test_split else ""
        return (
            f"Dataset({self.name!r}, samples={self.num_samples}, "
            f"features={self.num_features}, classes={self.num_classes}{test})"
        )
