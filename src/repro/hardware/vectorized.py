"""Array-valued sweeps over the FPGA model's grid design space.

`FPGAPerformanceModel.best_grid_for` used to call :meth:`evaluate` once per
candidate configuration — thousands of Python-level blocked-GEMM
decompositions per topology.  This module computes the same quantities as
NumPy arrays over *all* configurations (or over a batch of workloads) at
once.

Bit-exactness contract: every formula here mirrors the scalar model
operation-for-operation — ceiling divisions on integers, the same
left-to-right float expression order, and a *sequential* accumulation over
layers (``total = total + layer`` exactly like ``sum()`` over the timing
list).  The equivalence suite in ``tests/test_hardware_vectorized.py``
asserts ``==`` against the scalar path across the whole default grid space,
so the vectorized sweep can drive selection decisions without perturbing
search trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.layers import GemmShape
from .results import HardwareMetrics
from .systolic import _M20K_BYTES, GridConfig

__all__ = ["GridSweep", "sweep_grid_configs", "evaluate_workloads", "SWEEP_OBJECTIVES"]

#: Metric names a sweep can rank configurations by (HardwareMetrics attributes).
SWEEP_OBJECTIVES = (
    "outputs_per_second",
    "total_time_seconds",
    "latency_seconds",
    "efficiency",
    "effective_gflops",
    "potential_gflops",
    "power_watts",
    "dram_bytes",
)


@dataclass
class GridSweep:
    """Metrics of one workload across many grid configurations.

    Array index ``i`` corresponds to ``configs[i]``; every array matches the
    scalar model's :class:`~repro.hardware.results.HardwareMetrics` field of
    the same name bit-for-bit.
    """

    configs: list[GridConfig]
    fits: np.ndarray
    potential_gflops: np.ndarray
    effective_gflops: np.ndarray
    total_time_seconds: np.ndarray
    outputs_per_second: np.ndarray
    latency_seconds: np.ndarray
    efficiency: np.ndarray
    dram_bytes: np.ndarray
    power_watts: np.ndarray
    compute_bound: np.ndarray

    def objective(self, name: str) -> np.ndarray:
        if name not in SWEEP_OBJECTIVES:
            raise ValueError(f"unsupported sweep objective {name!r}; use one of {SWEEP_OBJECTIVES}")
        return getattr(self, name)


def _config_arrays(configs: list[GridConfig]) -> dict[str, np.ndarray]:
    return {
        "rows": np.asarray([c.rows for c in configs], dtype=np.int64),
        "columns": np.asarray([c.columns for c in configs], dtype=np.int64),
        "interleave_rows": np.asarray([c.interleave_rows for c in configs], dtype=np.int64),
        "interleave_columns": np.asarray([c.interleave_columns for c in configs], dtype=np.int64),
        "vector_width": np.asarray([c.vector_width for c in configs], dtype=np.int64),
    }


def _ceil_div(numerator, denominator):
    return -(-numerator // denominator)


def fits_mask(configs: list[GridConfig], device, k_depth: int = 512) -> np.ndarray:
    """Vectorized ``GridConfig.fits`` over many configurations."""
    arrays = _config_arrays(configs)
    block_m = arrays["rows"] * arrays["interleave_rows"]
    block_n = arrays["columns"] * arrays["interleave_columns"]
    dsp_used = arrays["rows"] * arrays["columns"] * arrays["vector_width"]
    double_buffer_bytes = 2 * 4 * ((block_m + block_n) * k_depth)
    m20k_required = _ceil_div(double_buffer_bytes, _M20K_BYTES)
    return (dsp_used <= device.dsp_count) & (m20k_required <= 0.75 * device.m20k_count)


def _sweep_core(
    model,
    layer_shapes: list[tuple[np.ndarray | int, np.ndarray | int, np.ndarray | int]],
    arrays: dict[str, np.ndarray],
    batch_size: np.ndarray | int,
) -> dict[str, np.ndarray]:
    """The scalar model's evaluate_shapes, over an array of (config, shape) lanes.

    ``layer_shapes`` is the ordered per-layer list of ``(m, k, n)`` — each
    entry a scalar (grid sweep: one workload, many configs) or an array (pair
    batch: one lane per workload).  Operation order deliberately mirrors
    ``FPGAPerformanceModel.layer_timing``/``evaluate_shapes``; see the module
    docstring.
    """
    from .fpga_model import _KERNEL_ENQUEUE_CYCLES, _PIPELINE_FILL_CYCLES

    device = model.device
    memory = model.memory
    power_model = model.power_model
    clock_hz = device.clock_hz
    bandwidth = memory.effective_bandwidth_bytes_per_second
    access_latency_ns = memory.spec.access_latency_ns

    rows = arrays["rows"]
    interleave_rows = arrays["interleave_rows"]
    interleave_columns = arrays["interleave_columns"]
    columns = arrays["columns"]
    vector_width = arrays["vector_width"]
    block_m = rows * interleave_rows
    block_n = columns * interleave_columns
    block_k = vector_width
    dsp_used = rows * columns * vector_width

    overhead_seconds = _KERNEL_ENQUEUE_CYCLES / clock_hz
    lanes = np.broadcast(rows, np.asarray(batch_size)).shape

    total_time = np.zeros(lanes)
    latency = np.zeros(lanes)
    dram_total = np.zeros(lanes, dtype=np.int64)
    useful_flops = np.zeros(lanes, dtype=np.int64)
    compute_bound = np.ones(lanes, dtype=bool)
    num_layers = len(layer_shapes)

    for index, (m, k, n) in enumerate(layer_shapes):
        m = np.asarray(m, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        n = np.asarray(n, dtype=np.int64)
        tiles_m = _ceil_div(m, block_m)
        tiles_n = _ceil_div(n, block_n)
        k_steps = _ceil_div(k, block_k)
        total_tiles = tiles_m * tiles_n
        cycles_per_tile = interleave_rows * interleave_columns * k_steps
        compute_cycles = total_tiles * cycles_per_tile
        padded_k = k_steps * block_k
        tile_a = 4 * block_m * padded_k
        tile_b = 4 * padded_k * block_n
        tile_c = 4 * block_m * block_n
        dram_bytes = tiles_m * tile_a + total_tiles * tile_b + total_tiles * tile_c

        compute_seconds = (compute_cycles + tiles_n * _PIPELINE_FILL_CYCLES) / clock_hz
        memory_seconds = (total_tiles * access_latency_ns) * 1e-9 + dram_bytes / bandwidth
        layer_seconds = np.maximum(compute_seconds, memory_seconds) + overhead_seconds

        total_time = total_time + layer_seconds
        dram_total = dram_total + dram_bytes
        useful_flops = useful_flops + 2 * m * k * n
        compute_bound &= ~(memory_seconds > compute_seconds)

        if index < num_layers - 1:
            latency = latency + layer_seconds
        else:
            first_tile_compute = (cycles_per_tile + _PIPELINE_FILL_CYCLES) / clock_hz
            first_tile_memory = (1 * access_latency_ns) * 1e-9 + (tile_a + tile_b + tile_c) / bandwidth
            first_result = np.maximum(first_tile_compute, first_tile_memory) + overhead_seconds
            latency = latency + first_result

    # Configuration roofline (potential_gflops), bandwidth-derated.
    compute_gflops = (2 * dsp_used) * device.clock_mhz / 1e3
    reference_k = np.maximum(block_k, 512)
    roofline_k_steps = _ceil_div(reference_k, block_k)
    roofline_cycles = interleave_rows * interleave_columns * roofline_k_steps
    roofline_bytes = 4 * (block_k * roofline_k_steps * block_n + block_m * block_n)
    required_bytes_per_second = roofline_bytes / roofline_cycles * clock_hz
    ratio = bandwidth / required_bytes_per_second
    potential = np.where(ratio >= 1.0, compute_gflops, compute_gflops * ratio)

    effective = useful_flops / total_time / 1e9
    with np.errstate(divide="ignore", invalid="ignore"):
        efficiency = np.where(potential > 0, np.minimum(1.0, effective / potential), 0.0)
    outputs_per_second = batch_size / total_time

    active_fraction = np.minimum(1.0, dsp_used / device.dsp_count)
    clock_scale = device.clock_mhz / power_model.clock_reference_mhz
    power = power_model.static_watts + power_model.dynamic_range_watts * active_fraction * clock_scale

    return {
        "potential_gflops": potential,
        "effective_gflops": effective,
        "total_time_seconds": total_time,
        "outputs_per_second": outputs_per_second,
        "latency_seconds": latency,
        "efficiency": efficiency,
        "dram_bytes": dram_total.astype(float),
        "power_watts": power + np.zeros(lanes),
        "compute_bound": compute_bound,
    }


def sweep_grid_configs(
    model,
    shapes: list[GemmShape],
    configs: list[GridConfig],
    batch_size: int,
) -> GridSweep:
    """Score one GEMM workload on every configuration in one vectorized pass.

    Infeasible configurations (``fits`` False) still get metric values — they
    are plain arithmetic — but selection helpers must mask them out with
    :attr:`GridSweep.fits`, matching the scalar loop's skip.
    """
    if not shapes:
        raise ValueError("cannot evaluate an empty GEMM workload")
    if not configs:
        raise ValueError("candidates must not be empty")
    arrays = _config_arrays(configs)
    metrics = _sweep_core(
        model,
        [(shape.m, shape.k, shape.n) for shape in shapes],
        arrays,
        batch_size,
    )
    return GridSweep(
        configs=list(configs),
        fits=fits_mask(configs, model.device),
        **metrics,
    )


def evaluate_workloads(
    model,
    workloads: list[tuple[list[GemmShape], GridConfig, int]],
) -> list[HardwareMetrics]:
    """Evaluate a batch of ``(shapes, config, batch_size)`` workloads at once.

    Returns one :class:`HardwareMetrics` per workload, equal (``==``) to what
    ``model.evaluate_shapes(shapes, config, batch_size)`` returns.  Workloads
    are grouped by layer count internally; each group is one vectorized pass.
    Raises exactly like the scalar path on empty or infeasible workloads.
    """
    for shapes, config, _batch in workloads:
        if not shapes:
            raise ValueError("cannot evaluate an empty GEMM workload")
        config.validate_for(model.device)

    results: list[HardwareMetrics | None] = [None] * len(workloads)
    groups: dict[int, list[int]] = {}
    for position, (shapes, _config, _batch) in enumerate(workloads):
        groups.setdefault(len(shapes), []).append(position)

    for num_layers, positions in groups.items():
        configs = [workloads[p][1] for p in positions]
        arrays = _config_arrays(configs)
        batch_sizes = np.asarray([workloads[p][2] for p in positions], dtype=np.int64)
        layer_shapes = []
        for layer in range(num_layers):
            layer_shapes.append(
                (
                    np.asarray([workloads[p][0][layer].m for p in positions], dtype=np.int64),
                    np.asarray([workloads[p][0][layer].k for p in positions], dtype=np.int64),
                    np.asarray([workloads[p][0][layer].n for p in positions], dtype=np.int64),
                )
            )
        metrics = _sweep_core(model, layer_shapes, arrays, batch_sizes)
        per_layer = _per_layer_diagnostics(model, layer_shapes, arrays)
        for lane, position in enumerate(positions):
            config = workloads[position][1]
            results[position] = HardwareMetrics(
                device_name=model.device.name,
                batch_size=int(batch_sizes[lane]),
                potential_gflops=float(metrics["potential_gflops"][lane]),
                effective_gflops=float(metrics["effective_gflops"][lane]),
                total_time_seconds=float(metrics["total_time_seconds"][lane]),
                outputs_per_second=float(metrics["outputs_per_second"][lane]),
                latency_seconds=float(metrics["latency_seconds"][lane]),
                efficiency=float(metrics["efficiency"][lane]),
                dram_bytes=float(metrics["dram_bytes"][lane]),
                power_watts=float(metrics["power_watts"][lane]),
                compute_bound=bool(metrics["compute_bound"][lane]),
                extras={
                    "layer_seconds": [float(seconds[lane]) for seconds in per_layer["layer_seconds"]],
                    "layer_memory_bound": [bool(bound[lane]) for bound in per_layer["memory_bound"]],
                    "padding_efficiency": [float(eff[lane]) for eff in per_layer["padding_efficiency"]],
                    "dsp_blocks_used": config.dsp_blocks_used,
                    "device_peak_gflops": model.device_peak_gflops(),
                },
            )
    return [result for result in results if result is not None]


def _per_layer_diagnostics(
    model,
    layer_shapes: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    arrays: dict[str, np.ndarray],
) -> dict[str, list[np.ndarray]]:
    """Per-layer extras (layer_seconds, memory_bound, padding_efficiency)."""
    from .fpga_model import _KERNEL_ENQUEUE_CYCLES, _PIPELINE_FILL_CYCLES

    clock_hz = model.device.clock_hz
    bandwidth = model.memory.effective_bandwidth_bytes_per_second
    access_latency_ns = model.memory.spec.access_latency_ns
    block_m = arrays["rows"] * arrays["interleave_rows"]
    block_n = arrays["columns"] * arrays["interleave_columns"]
    block_k = arrays["vector_width"]
    overhead_seconds = _KERNEL_ENQUEUE_CYCLES / clock_hz

    diagnostics: dict[str, list[np.ndarray]] = {
        "layer_seconds": [],
        "memory_bound": [],
        "padding_efficiency": [],
    }
    for m, k, n in layer_shapes:
        tiles_m = _ceil_div(m, block_m)
        tiles_n = _ceil_div(n, block_n)
        k_steps = _ceil_div(k, block_k)
        total_tiles = tiles_m * tiles_n
        cycles_per_tile = arrays["interleave_rows"] * arrays["interleave_columns"] * k_steps
        padded_k = k_steps * block_k
        tile_a = 4 * block_m * padded_k
        tile_b = 4 * padded_k * block_n
        tile_c = 4 * block_m * block_n
        dram_bytes = tiles_m * tile_a + total_tiles * tile_b + total_tiles * tile_c
        compute_seconds = (total_tiles * cycles_per_tile + tiles_n * _PIPELINE_FILL_CYCLES) / clock_hz
        memory_seconds = (total_tiles * access_latency_ns) * 1e-9 + dram_bytes / bandwidth
        diagnostics["layer_seconds"].append(
            np.maximum(compute_seconds, memory_seconds) + overhead_seconds
        )
        diagnostics["memory_bound"].append(memory_seconds > compute_seconds)
        padded_flops = 2 * (tiles_m * block_m) * padded_k * (tiles_n * block_n)
        diagnostics["padding_efficiency"].append((2 * m * k * n) / padded_flops)
    return diagnostics
