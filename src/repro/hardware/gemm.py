"""GEMM workload extraction and blocked decomposition.

Section III-D of the paper describes how an MLP maps onto hardware: every
layer is one GEMM ``C[m, n] = A[m, k] @ B[k, n]`` where ``m`` is the batch,
``k`` the layer input width and ``n`` the neuron count.  The hardware database
worker "breaks the ANN up into a series of blocked matrix multiplications"
using the grid configuration.  This module implements both steps:

* :func:`mlp_gemm_workload` turns an MLP specification + batch size into the
  ordered list of layer GEMMs, and
* :func:`block_gemm` decomposes one GEMM into the tile grid a
  :class:`~repro.hardware.systolic.GridConfig` would execute, including the
  padding waste when a dimension does not divide evenly into tiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.layers import GemmShape
from ..nn.mlp import MLPSpec
from .systolic import GridConfig

__all__ = ["BlockedGemm", "block_gemm", "mlp_gemm_workload", "workload_flops", "workload_weight_bytes"]


@dataclass(frozen=True)
class BlockedGemm:
    """The tiling of one GEMM onto a systolic grid.

    Attributes
    ----------
    shape:
        The original (unpadded) GEMM shape.
    config:
        The grid configuration performing the GEMM.
    tiles_m / tiles_n:
        Number of output tiles along each dimension (ceiling division).
    k_steps:
        Number of ``vector_width`` chunks needed to accumulate the full ``k``
        dimension (ceiling division).
    """

    shape: GemmShape
    config: GridConfig
    tiles_m: int
    tiles_n: int
    k_steps: int

    # ------------------------------------------------------------ geometry
    @property
    def total_tiles(self) -> int:
        """Number of output tiles the grid must produce."""
        return self.tiles_m * self.tiles_n

    @property
    def padded_m(self) -> int:
        """Batch dimension after padding up to a whole number of tiles."""
        return self.tiles_m * self.config.block_m

    @property
    def padded_n(self) -> int:
        """Neuron dimension after padding up to a whole number of tiles."""
        return self.tiles_n * self.config.block_n

    @property
    def padded_k(self) -> int:
        """Accumulation dimension after padding to a whole number of vector chunks."""
        return self.k_steps * self.config.block_k

    # -------------------------------------------------------------- compute
    @property
    def cycles_per_tile(self) -> int:
        """Clock cycles to compute one output tile.

        The grid retires ``rows * columns * vector_width`` MACs per cycle; a
        tile holds ``block_m * block_n`` outputs each needing ``padded_k``
        MACs, so the tile takes ``interleave_rows * interleave_columns *
        k_steps`` cycles.  This matches the paper's "cycles per block of
        data" quantity.
        """
        return self.config.interleave_rows * self.config.interleave_columns * self.k_steps

    @property
    def compute_cycles(self) -> int:
        """Total cycles for the whole GEMM, ignoring memory stalls and fill."""
        return self.total_tiles * self.cycles_per_tile

    @property
    def useful_flops(self) -> int:
        """FLOPs of the original (unpadded) problem."""
        return self.shape.flops

    @property
    def padded_flops(self) -> int:
        """FLOPs including the padding waste (what the hardware actually executes)."""
        return 2 * self.padded_m * self.padded_k * self.padded_n

    @property
    def padding_efficiency(self) -> float:
        """Fraction of executed work that is useful (``useful / padded``)."""
        return self.useful_flops / self.padded_flops

    # --------------------------------------------------------------- traffic
    @property
    def tile_a_bytes(self) -> int:
        """DRAM bytes of the A (activation) operand tile streamed per output tile."""
        return 4 * self.config.block_m * self.padded_k

    @property
    def tile_b_bytes(self) -> int:
        """DRAM bytes of the B (weight) operand tile streamed per output tile."""
        return 4 * self.padded_k * self.config.block_n

    @property
    def tile_c_bytes(self) -> int:
        """DRAM bytes of the C (result) tile written back per output tile."""
        return 4 * self.config.block_m * self.config.block_n

    @property
    def dram_bytes(self) -> int:
        """Total DRAM traffic for the GEMM under tile-level reuse.

        The A tile is loaded once per tile row and reused across the ``n``
        tiles in that row (it stays in the interleave double buffer); the B
        tile must be streamed for every output tile; every C tile is written
        once.  This is the traffic pattern of the Intel SGEMM overlay the
        paper builds on.
        """
        a_traffic = self.tiles_m * self.tile_a_bytes
        b_traffic = self.total_tiles * self.tile_b_bytes
        c_traffic = self.total_tiles * self.tile_c_bytes
        return a_traffic + b_traffic + c_traffic

    @property
    def bytes_per_cycle_required(self) -> float:
        """Average DRAM bytes per clock the grid needs to avoid stalling."""
        if self.compute_cycles == 0:
            return 0.0
        return self.dram_bytes / self.compute_cycles


def _ceil_div(numerator: int, denominator: int) -> int:
    return -(-numerator // denominator)


def block_gemm(shape: GemmShape, config: GridConfig) -> BlockedGemm:
    """Decompose one GEMM onto a grid configuration."""
    tiles_m = _ceil_div(shape.m, config.block_m)
    tiles_n = _ceil_div(shape.n, config.block_n)
    k_steps = _ceil_div(shape.k, config.block_k)
    return BlockedGemm(shape=shape, config=config, tiles_m=tiles_m, tiles_n=tiles_n, k_steps=k_steps)


def mlp_gemm_workload(spec: MLPSpec, batch_size: int) -> list[GemmShape]:
    """The ordered per-layer GEMM shapes for one inference batch.

    ``m`` is the batch size for every layer; ``k`` of layer *i+1* equals ``n``
    of layer *i* (the paper: "N dimension is the number of neurons that also
    defines a subsequent layer k; the size of the dataset defines the first
    layer k").
    """
    return spec.gemm_shapes(batch_size)


def workload_flops(shapes: list[GemmShape]) -> int:
    """Total useful FLOPs of a GEMM workload."""
    return sum(shape.flops for shape in shapes)


def workload_weight_bytes(shapes: list[GemmShape]) -> int:
    """Total bytes of weight matrices (the B operands) at FP32."""
    return sum(4 * shape.k * shape.n for shape in shapes)
