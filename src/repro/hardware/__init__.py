"""Hardware modeling substrate: devices, memory, the FPGA overlay model,
the GPU execution model, synthesis estimation, power, and efficiency metrics.

These modules implement the models consumed by the paper's hardware-database
worker (FPGA overlay), simulation worker (GPU) and physical worker
(synthesis-level metrics).
"""

from .device import (
    ARRIA10_GX1150,
    QUADRO_M5000,
    RADEON_VII,
    STRATIX10_2800,
    TITAN_X,
    FPGADevice,
    GPUDevice,
    available_fpga_devices,
    available_gpu_devices,
    fpga_device,
    gpu_device,
)
from .efficiency import EfficiencyComparison, compare_efficiency, device_efficiency, hardware_efficiency
from .fpga_model import FPGALayerTiming, FPGAPerformanceModel
from .gemm import BlockedGemm, block_gemm, mlp_gemm_workload, workload_flops, workload_weight_bytes
from .gpu_model import GPULayerTiming, GPUPerformanceModel
from .memory import DDR4_BANK, HBM2_STACK, MemorySpec, MemorySystem
from .power import FPGAPowerModel, GPUPowerModel
from .results import HardwareMetrics
from .synthesis import SynthesisModel, SynthesisReport
from .systolic import GridConfig, GridSearchSpace
from .vectorized import SWEEP_OBJECTIVES, GridSweep, evaluate_workloads, sweep_grid_configs

__all__ = [
    "ARRIA10_GX1150",
    "QUADRO_M5000",
    "RADEON_VII",
    "STRATIX10_2800",
    "TITAN_X",
    "FPGADevice",
    "GPUDevice",
    "available_fpga_devices",
    "available_gpu_devices",
    "fpga_device",
    "gpu_device",
    "EfficiencyComparison",
    "compare_efficiency",
    "device_efficiency",
    "hardware_efficiency",
    "FPGALayerTiming",
    "FPGAPerformanceModel",
    "BlockedGemm",
    "block_gemm",
    "mlp_gemm_workload",
    "workload_flops",
    "workload_weight_bytes",
    "GPULayerTiming",
    "GPUPerformanceModel",
    "DDR4_BANK",
    "HBM2_STACK",
    "MemorySpec",
    "MemorySystem",
    "FPGAPowerModel",
    "GPUPowerModel",
    "HardwareMetrics",
    "SynthesisModel",
    "SynthesisReport",
    "GridConfig",
    "GridSearchSpace",
    "SWEEP_OBJECTIVES",
    "GridSweep",
    "evaluate_workloads",
    "sweep_grid_configs",
]
