"""2D systolic-array ("grid") overlay configuration.

Section III-C of the paper: *"the design we used is based on a 2D systolic
array architecture that includes additional functionality to support
activation functions and vector additions for bias operations.  This 'grid'
architecture has various design space variables that we allow mutations to
take place on.  The variables are the number of rows and columns, double
buffer cache sizes for each dimension, called interleaving, and the vector
width of each processing element (PE)."*

:class:`GridConfig` captures exactly those variables.  The number of DSP
blocks consumed is ``rows * columns * vector_width`` (each PE performs
``vector_width`` FP32 MACs per cycle); the interleave factors set the tile of
the output matrix the grid computes per pass and the M20K storage of the
double buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from .device import FPGADevice

__all__ = ["GridConfig", "GridSearchSpace"]

#: Bytes held by a single M20K block (20 kbit).
_M20K_BYTES = 2_560


@dataclass(frozen=True)
class GridConfig:
    """One systolic-array overlay instantiation.

    Attributes
    ----------
    rows / columns:
        Dimensions of the PE grid; rows stream the output ``m`` dimension
        (batch), columns the output ``n`` dimension (neurons).
    interleave_rows / interleave_columns:
        Double-buffer depth per grid dimension.  A single pass of the array
        computes an output tile of ``(rows * interleave_rows)`` x
        ``(columns * interleave_columns)`` elements.
    vector_width:
        Number of FP32 MACs each PE performs per cycle (the dot-product
        unrolling along the ``k`` dimension).
    """

    rows: int
    columns: int
    interleave_rows: int = 8
    interleave_columns: int = 8
    vector_width: int = 8

    def __post_init__(self) -> None:
        for field_name in ("rows", "columns", "interleave_rows", "interleave_columns", "vector_width"):
            value = getattr(self, field_name)
            if int(value) <= 0:
                raise ValueError(f"GridConfig.{field_name} must be positive, got {value}")

    # ------------------------------------------------------------- resources
    @property
    def pe_count(self) -> int:
        """Number of processing elements in the grid."""
        return self.rows * self.columns

    @property
    def dsp_blocks_used(self) -> int:
        """Hardened FP32 DSP blocks consumed (one MAC per block per cycle)."""
        return self.rows * self.columns * self.vector_width

    @property
    def macs_per_cycle(self) -> int:
        """Multiply-accumulate operations the grid retires per clock cycle."""
        return self.dsp_blocks_used

    @property
    def flops_per_cycle(self) -> int:
        """Floating-point operations per cycle (2 per MAC)."""
        return 2 * self.macs_per_cycle

    # ------------------------------------------------------------------ tiles
    @property
    def block_m(self) -> int:
        """Output-tile extent along the batch (``m``) dimension."""
        return self.rows * self.interleave_rows

    @property
    def block_n(self) -> int:
        """Output-tile extent along the neuron (``n``) dimension."""
        return self.columns * self.interleave_columns

    @property
    def block_k(self) -> int:
        """Dot-product chunk consumed per cycle along the ``k`` dimension."""
        return self.vector_width

    def double_buffer_bytes(self, k_depth: int) -> int:
        """On-chip bytes required to double-buffer A and B tiles for depth ``k_depth``.

        The A buffer holds ``block_m x k_depth`` words, the B buffer
        ``k_depth x block_n`` words, both double-buffered (factor 2) at FP32.
        """
        if k_depth <= 0:
            raise ValueError(f"k_depth must be positive, got {k_depth}")
        words = (self.block_m + self.block_n) * k_depth
        return 2 * 4 * words

    def m20k_blocks_required(self, k_depth: int = 512) -> int:
        """M20K blocks needed for the interleave double buffers at depth ``k_depth``."""
        required_bytes = self.double_buffer_bytes(k_depth)
        return -(-required_bytes // _M20K_BYTES)  # ceiling division

    # -------------------------------------------------------------- validity
    def fits(self, device: FPGADevice, k_depth: int = 512) -> bool:
        """Whether this configuration fits the device's DSP and M20K budget."""
        if self.dsp_blocks_used > device.dsp_count:
            return False
        # Leave 25% of M20Ks for the rest of the overlay (control, FIFOs).
        if self.m20k_blocks_required(k_depth) > 0.75 * device.m20k_count:
            return False
        return True

    def validate_for(self, device: FPGADevice, k_depth: int = 512) -> None:
        """Raise ``ValueError`` if the configuration exceeds the device budget."""
        if self.dsp_blocks_used > device.dsp_count:
            raise ValueError(
                f"grid {self} needs {self.dsp_blocks_used} DSP blocks but "
                f"{device.name} has only {device.dsp_count}"
            )
        required = self.m20k_blocks_required(k_depth)
        budget = int(0.75 * device.m20k_count)
        if required > budget:
            raise ValueError(
                f"grid {self} needs {required} M20K blocks for interleave buffers but "
                f"only {budget} are available on {device.name}"
            )

    def peak_gflops(self, device: FPGADevice) -> float:
        """Compute roofline of this grid on ``device`` in GFLOP/s."""
        return self.flops_per_cycle * device.clock_mhz / 1e3

    def to_dict(self) -> dict:
        """JSON-serializable representation (used in genomes and caches)."""
        return {
            "rows": self.rows,
            "columns": self.columns,
            "interleave_rows": self.interleave_rows,
            "interleave_columns": self.interleave_columns,
            "vector_width": self.vector_width,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GridConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            rows=int(data["rows"]),
            columns=int(data["columns"]),
            interleave_rows=int(data.get("interleave_rows", 8)),
            interleave_columns=int(data.get("interleave_columns", 8)),
            vector_width=int(data.get("vector_width", 8)),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.rows}x{self.columns} grid, interleave {self.interleave_rows}x"
            f"{self.interleave_columns}, vector {self.vector_width}"
        )


@dataclass(frozen=True)
class GridSearchSpace:
    """The discrete design space the evolutionary engine mutates over.

    Each attribute is the tuple of allowed values for the corresponding
    :class:`GridConfig` field.  The defaults cover the powers of two the
    Intel SGEMM overlay generator supports, bounded so the largest
    configuration still fits an Arria 10.
    """

    rows: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    columns: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    interleave_rows: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    interleave_columns: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    vector_width: tuple[int, ...] = (1, 2, 4, 8, 16)

    def __post_init__(self) -> None:
        for field_name in ("rows", "columns", "interleave_rows", "interleave_columns", "vector_width"):
            values = getattr(self, field_name)
            if not values:
                raise ValueError(f"GridSearchSpace.{field_name} must not be empty")
            if any(int(v) <= 0 for v in values):
                raise ValueError(f"GridSearchSpace.{field_name} must contain positive values")
            object.__setattr__(self, field_name, tuple(sorted(int(v) for v in values)))

    @property
    def size(self) -> int:
        """Total number of grid configurations in the space."""
        return (
            len(self.rows)
            * len(self.columns)
            * len(self.interleave_rows)
            * len(self.interleave_columns)
            * len(self.vector_width)
        )

    def all_configs(self) -> list[GridConfig]:
        """Materialize every configuration in the space (used by exhaustive sweeps)."""
        return [
            GridConfig(r, c, ir, ic, v)
            for r, c, ir, ic, v in product(
                self.rows,
                self.columns,
                self.interleave_rows,
                self.interleave_columns,
                self.vector_width,
            )
        ]

    def feasible_configs(self, device: FPGADevice) -> list[GridConfig]:
        """All configurations that fit the given device."""
        return [config for config in self.all_configs() if config.fits(device)]

    def random_config(self, rng, device: FPGADevice | None = None, max_attempts: int = 100) -> GridConfig:
        """Draw a random configuration, optionally rejecting ones that do not fit.

        Parameters
        ----------
        rng:
            ``numpy.random.Generator`` used for the draw.
        device:
            When given, re-draw until the configuration fits (up to
            ``max_attempts`` tries, then fall back to the smallest config).
        """
        for _ in range(max_attempts):
            config = GridConfig(
                rows=int(rng.choice(self.rows)),
                columns=int(rng.choice(self.columns)),
                interleave_rows=int(rng.choice(self.interleave_rows)),
                interleave_columns=int(rng.choice(self.interleave_columns)),
                vector_width=int(rng.choice(self.vector_width)),
            )
            if device is None or config.fits(device):
                return config
        return GridConfig(
            rows=self.rows[0],
            columns=self.columns[0],
            interleave_rows=self.interleave_rows[0],
            interleave_columns=self.interleave_columns[0],
            vector_width=self.vector_width[0],
        )
