"""Power estimation models for the FPGA overlay and the GPU baselines.

Section IV of the paper: across the many Arria 10 designs compiled, chip power
ranged from 22.5 W (minimum) to 31.89 W (maximum) with an average of 27 W,
estimated with the Quartus Power Analyzer; the GPUs averaged about 50 W of
board power (out of a 150 W budget) measured with ``nvidia-smi``.  The paper
explicitly leaves power out of its conclusions because chip power and board
power are not comparable, but the workers still report it — so we model it.

Both models are simple affine functions of resource activity, calibrated so
their outputs fall inside the ranges the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import FPGADevice, GPUDevice
from .systolic import GridConfig

__all__ = ["FPGAPowerModel", "GPUPowerModel"]


@dataclass(frozen=True)
class FPGAPowerModel:
    """Chip-power estimate for an overlay configuration on an FPGA.

    ``power = static + dsp_active_fraction * dynamic_range`` — the smallest
    grids land near the paper's 22.5 W minimum and a full-device grid near the
    31.89 W maximum (on the Arria 10 reference device).

    Attributes
    ----------
    static_watts:
        Idle/static power of the configured device.
    dynamic_range_watts:
        Additional power when every DSP on the device is active.
    clock_reference_mhz:
        Clock at which the calibration holds; dynamic power scales linearly
        with clock frequency relative to this reference.
    """

    static_watts: float = 22.5
    dynamic_range_watts: float = 9.4
    clock_reference_mhz: float = 250.0

    def __post_init__(self) -> None:
        if self.static_watts <= 0:
            raise ValueError(f"static_watts must be positive, got {self.static_watts}")
        if self.dynamic_range_watts < 0:
            raise ValueError(f"dynamic_range_watts must be >= 0, got {self.dynamic_range_watts}")
        if self.clock_reference_mhz <= 0:
            raise ValueError(f"clock_reference_mhz must be positive, got {self.clock_reference_mhz}")

    def estimate(self, device: FPGADevice, config: GridConfig) -> float:
        """Estimated chip power (watts) for ``config`` running on ``device``."""
        active_fraction = min(1.0, config.dsp_blocks_used / device.dsp_count)
        clock_scale = device.clock_mhz / self.clock_reference_mhz
        return self.static_watts + self.dynamic_range_watts * active_fraction * clock_scale


@dataclass(frozen=True)
class GPUPowerModel:
    """Board-power estimate for a GPU running a (mostly idle) MLP workload.

    The paper observes that GPU power management keeps draw low when effective
    utilization is low — roughly 50 W on a 150 W part.  We model board power
    as ``idle + utilization * (board_max - idle)``.

    Attributes
    ----------
    idle_fraction:
        Idle power as a fraction of the board maximum.
    """

    idle_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.idle_fraction < 1.0:
            raise ValueError(f"idle_fraction must be in [0, 1), got {self.idle_fraction}")

    def estimate(self, device: GPUDevice, utilization: float) -> float:
        """Estimated board power (watts) at the given compute utilization."""
        utilization = min(1.0, max(0.0, float(utilization)))
        idle = self.idle_fraction * device.board_power_watts
        return idle + utilization * (device.board_power_watts - idle)
