"""External-memory (DRAM) system model for the FPGA overlay.

Most of the designs the evolutionary search returned on the Arria 10
development kit were *bandwidth constrained* — the board has a single bank of
DDR4 providing 19.2 GB/s (section IV).  This module models that constraint:
a :class:`MemorySystem` exposes achievable bandwidth given the bank count and
an efficiency factor (real DDR controllers do not sustain their peak), and
computes transfer times for the blocked GEMM traffic the overlay generates.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemorySpec", "MemorySystem", "DDR4_BANK", "HBM2_STACK"]


@dataclass(frozen=True)
class MemorySpec:
    """One memory channel/bank technology description.

    Attributes
    ----------
    name:
        Technology name, e.g. ``"DDR4-2400 x64"``.
    peak_bandwidth_gbps:
        Theoretical peak bandwidth of one bank in GB/s.
    efficiency:
        Fraction of peak sustainable for streaming access patterns
        (command/refresh overhead, row misses).  Applied to all transfers.
    access_latency_ns:
        First-word latency of a new burst, added once per request stream.
    """

    name: str
    peak_bandwidth_gbps: float
    efficiency: float = 0.85
    access_latency_ns: float = 120.0

    def __post_init__(self) -> None:
        if self.peak_bandwidth_gbps <= 0:
            raise ValueError(
                f"peak_bandwidth_gbps must be positive, got {self.peak_bandwidth_gbps}"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.access_latency_ns < 0:
            raise ValueError(f"access_latency_ns must be >= 0, got {self.access_latency_ns}")


#: DDR4 bank as populated on the Arria 10 development kit (19.2 GB/s peak).
DDR4_BANK = MemorySpec(name="DDR4-2400 x64", peak_bandwidth_gbps=19.2, efficiency=0.85)

#: One HBM2 stack (for completeness; Stratix 10 MX-style configurations).
HBM2_STACK = MemorySpec(name="HBM2 stack", peak_bandwidth_gbps=256.0, efficiency=0.80)


class MemorySystem:
    """A set of identical memory banks feeding the accelerator.

    The overlay interleaves traffic across banks, so aggregate bandwidth
    scales linearly with the bank count — which is exactly the behaviour the
    paper observes ("mostly a linear scaling going from 1 to 4" banks,
    section IV-C).
    """

    def __init__(self, spec: MemorySpec = DDR4_BANK, banks: int = 1) -> None:
        if banks <= 0:
            raise ValueError(f"banks must be positive, got {banks}")
        self.spec = spec
        self.banks = int(banks)

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate theoretical peak bandwidth in GB/s."""
        return self.spec.peak_bandwidth_gbps * self.banks

    @property
    def effective_bandwidth_gbps(self) -> float:
        """Aggregate sustainable bandwidth in GB/s (peak x efficiency)."""
        return self.peak_bandwidth_gbps * self.spec.efficiency

    @property
    def effective_bandwidth_bytes_per_second(self) -> float:
        """Aggregate sustainable bandwidth in bytes/s."""
        return self.effective_bandwidth_gbps * 1e9

    def transfer_seconds(self, num_bytes: float, streams: int = 1) -> float:
        """Time to move ``num_bytes`` of streaming traffic.

        Parameters
        ----------
        num_bytes:
            Total bytes transferred (reads plus writes).
        streams:
            Number of distinct burst streams; each pays the first-word access
            latency once.
        """
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        if streams < 1:
            raise ValueError(f"streams must be >= 1, got {streams}")
        if num_bytes == 0:
            return 0.0
        latency = streams * self.spec.access_latency_ns * 1e-9
        return latency + num_bytes / self.effective_bandwidth_bytes_per_second

    def bandwidth_ratio(self, required_bytes_per_second: float) -> float:
        """Ratio of available to required bandwidth (``>= 1`` means not bound).

        This is the "ratio of how much bandwidth is available to how much we
        need" the paper uses to derate the potential performance of a
        configuration (section III-C).
        """
        if required_bytes_per_second < 0:
            raise ValueError(
                f"required_bytes_per_second must be >= 0, got {required_bytes_per_second}"
            )
        if required_bytes_per_second == 0:
            return float("inf")
        return self.effective_bandwidth_bytes_per_second / required_bytes_per_second

    def with_banks(self, banks: int) -> "MemorySystem":
        """Return a copy of this memory system with a different bank count."""
        return MemorySystem(self.spec, banks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemorySystem({self.spec.name!r} x {self.banks}, "
            f"{self.effective_bandwidth_gbps:.1f} GB/s effective)"
        )
