"""Common result record returned by the hardware performance models.

Section III-C: *"Our model returns values we deemed fundamental, including
potential and effective performance, total time, outputs per second, and
latency."*  :class:`HardwareMetrics` carries exactly those values (plus the
supporting quantities the analysis layer needs), regardless of whether they
came from the FPGA overlay model, the GPU model, or a physical measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HardwareMetrics"]


@dataclass(frozen=True)
class HardwareMetrics:
    """Performance metrics of one (network, hardware configuration) pair.

    Attributes
    ----------
    device_name:
        The device the metrics refer to.
    batch_size:
        Batch (GEMM ``m`` dimension) used for the run.
    potential_gflops:
        Roofline of the *configuration* — what the allocated compute could
        sustain given the available memory bandwidth, before mapping the
        actual network ("the marketed performance that defines the roofline
        of the configuration").
    effective_gflops:
        Useful FLOPs divided by total run time — "the actual or real
        performance of the configuration under a workload".
    total_time_seconds:
        One full run: all layers of the network over one batch, including
        DRAM traffic for the FPGA model (the paper's FPGA timing includes
        DRAM because "memory buffering is an active component in the design").
    outputs_per_second:
        ``batch_size / total_time_seconds`` — the generalized "images per
        second" metric.
    latency_seconds:
        Time from the start of a run until the first result is stored to
        DRAM.
    efficiency:
        ``effective / potential`` — the hardware-efficiency metric of
        Figure 4.
    dram_bytes:
        Total external-memory traffic for one run (0 for models that do not
        account for DRAM, e.g. the GPU timing path).
    power_watts:
        Estimated power draw during the run.
    compute_bound:
        True when the run time is dominated by compute rather than memory.
    extras:
        Model-specific diagnostics (per-layer times, stall fractions, ...).
    """

    device_name: str
    batch_size: int
    potential_gflops: float
    effective_gflops: float
    total_time_seconds: float
    outputs_per_second: float
    latency_seconds: float
    efficiency: float
    dram_bytes: float = 0.0
    power_watts: float = 0.0
    compute_bound: bool = True
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.potential_gflops < 0:
            raise ValueError(f"potential_gflops must be >= 0, got {self.potential_gflops}")
        if self.effective_gflops < 0:
            raise ValueError(f"effective_gflops must be >= 0, got {self.effective_gflops}")
        if self.total_time_seconds <= 0:
            raise ValueError(f"total_time_seconds must be positive, got {self.total_time_seconds}")
        if self.outputs_per_second < 0:
            raise ValueError(f"outputs_per_second must be >= 0, got {self.outputs_per_second}")
        if self.latency_seconds < 0:
            raise ValueError(f"latency_seconds must be >= 0, got {self.latency_seconds}")
        if not 0.0 <= self.efficiency <= 1.0 + 1e-9:
            raise ValueError(f"efficiency must be in [0, 1], got {self.efficiency}")

    def to_dict(self) -> dict:
        """Flat dictionary form used by reports and CSV exports."""
        return {
            "device_name": self.device_name,
            "batch_size": self.batch_size,
            "potential_gflops": self.potential_gflops,
            "effective_gflops": self.effective_gflops,
            "total_time_seconds": self.total_time_seconds,
            "outputs_per_second": self.outputs_per_second,
            "latency_seconds": self.latency_seconds,
            "efficiency": self.efficiency,
            "dram_bytes": self.dram_bytes,
            "power_watts": self.power_watts,
            "compute_bound": self.compute_bound,
        }

    @classmethod
    def from_dict(cls, data: dict, extras: dict | None = None) -> "HardwareMetrics":
        """Inverse of :meth:`to_dict` (used by the persistent evaluation store).

        Parameters
        ----------
        data:
            A dictionary produced by :meth:`to_dict`.
        extras:
            Optional model-specific diagnostics to reattach (``to_dict``
            intentionally drops them from flat exports).

        Returns
        -------
        HardwareMetrics
            The reconstructed metrics record.
        """
        return cls(
            device_name=str(data["device_name"]),
            batch_size=int(data["batch_size"]),
            potential_gflops=float(data["potential_gflops"]),
            effective_gflops=float(data["effective_gflops"]),
            total_time_seconds=float(data["total_time_seconds"]),
            outputs_per_second=float(data["outputs_per_second"]),
            latency_seconds=float(data["latency_seconds"]),
            efficiency=float(data["efficiency"]),
            dram_bytes=float(data.get("dram_bytes", 0.0)),
            power_watts=float(data.get("power_watts", 0.0)),
            compute_bound=bool(data.get("compute_bound", True)),
            extras=dict(extras or {}),
        )
