"""Hardware-efficiency calculations (Figure 4 of the paper).

Section IV-D: *"The ratio of effective performance over potential performance
gives us hardware efficiency."*  For GPUs the paper instead computes "the
number of operations per second obtained from a run out of the total potential
operations per second of the device", because the GPU allocation is always the
whole device.  Both definitions are provided here, together with a comparison
record used by the figure-4 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from .results import HardwareMetrics

__all__ = [
    "hardware_efficiency",
    "device_efficiency",
    "EfficiencyComparison",
    "compare_efficiency",
]


def hardware_efficiency(metrics: HardwareMetrics) -> float:
    """Efficiency of an *allocated* configuration: effective / potential.

    This is the FPGA definition — the denominator is the roofline of the
    resources the evolutionary algorithm chose to allocate, not of the whole
    device.
    """
    if metrics.potential_gflops <= 0:
        return 0.0
    return min(1.0, metrics.effective_gflops / metrics.potential_gflops)


def device_efficiency(metrics: HardwareMetrics, device_peak_gflops: float) -> float:
    """Efficiency against the whole device's peak (the GPU definition)."""
    if device_peak_gflops <= 0:
        raise ValueError(f"device_peak_gflops must be positive, got {device_peak_gflops}")
    return min(1.0, metrics.effective_gflops / device_peak_gflops)


@dataclass(frozen=True)
class EfficiencyComparison:
    """Side-by-side efficiency of an FPGA and a GPU solution at similar accuracy.

    The headline example in the paper: at nearly identical throughput
    (~7.9e5 vs ~7.7e5 outputs/s on MNIST) the FPGA used 41.5% of its allocated
    logic while the GPU used 0.3% of the device.
    """

    accuracy: float
    fpga_outputs_per_second: float
    gpu_outputs_per_second: float
    fpga_efficiency: float
    gpu_efficiency: float

    @property
    def efficiency_advantage(self) -> float:
        """How many times more efficient the FPGA solution is."""
        if self.gpu_efficiency <= 0:
            return float("inf")
        return self.fpga_efficiency / self.gpu_efficiency

    @property
    def throughput_ratio(self) -> float:
        """FPGA outputs/s divided by GPU outputs/s."""
        if self.gpu_outputs_per_second <= 0:
            return float("inf")
        return self.fpga_outputs_per_second / self.gpu_outputs_per_second


def compare_efficiency(
    accuracy: float,
    fpga_metrics: HardwareMetrics,
    gpu_metrics: HardwareMetrics,
) -> EfficiencyComparison:
    """Build an :class:`EfficiencyComparison` from two metric records.

    FPGA efficiency uses the allocated-configuration definition; GPU
    efficiency uses the whole-device definition, exactly as in section IV-D.
    """
    return EfficiencyComparison(
        accuracy=accuracy,
        fpga_outputs_per_second=fpga_metrics.outputs_per_second,
        gpu_outputs_per_second=gpu_metrics.outputs_per_second,
        fpga_efficiency=hardware_efficiency(fpga_metrics),
        gpu_efficiency=device_efficiency(gpu_metrics, gpu_metrics.potential_gflops),
    )
