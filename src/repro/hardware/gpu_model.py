"""Analytical GPU execution model for the simulation worker.

The paper profiles GPU runs through TensorFlow trace files; its timing
"considers matrix multiplication, activation, and vector addition routines,
but it does not appear to take into account DRAM transfers".  Two properties
of that measurement drive the shape of the paper's GPU results and are
reproduced here:

* **Per-operation dispatch overhead.**  Every layer issues a GEMM kernel, an
  activation kernel and (with bias) a vector-add kernel through the framework;
  for the small GEMMs of MLP inference the fixed dispatch cost dominates, so
  GPU throughput is largely *independent of the network's neuron distribution*
  (section IV-B: "for GPU, there is roughly no relationship between the number
  of neurons and the throughput").
* **Low effective utilization.**  A small GEMM cannot fill the device — the
  paper measures 0.3% GPU efficiency on MNIST-sized layers at equal
  throughput to a 41.5%-efficient FPGA (section IV-D).  Utilization is modeled
  from how many thread tiles the GEMM offers relative to what the device needs
  to be saturated.

The GPU is a fixed architecture, so unlike the FPGA model there is no hardware
configuration to mutate — only the batch size is a free parameter (GPUs
"typically batch with a larger M dimension to fill up compute cores").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.layers import GemmShape
from ..nn.mlp import MLPSpec
from .device import GPUDevice
from .power import GPUPowerModel
from .results import HardwareMetrics

__all__ = ["GPULayerTiming", "GPUPerformanceModel"]

#: Output-tile footprint of one thread block in the modeled GEMM kernel.
_TILE_M = 64
_TILE_N = 64
#: Thread blocks per SM needed to hide latency (occupancy target).
_BLOCKS_PER_SM_FOR_SATURATION = 8
#: Kernels launched per MLP layer: GEMM + activation (+ bias add).
_KERNELS_PER_LAYER_WITH_BIAS = 3
_KERNELS_PER_LAYER_NO_BIAS = 2
#: Minimum wall-clock time of any kernel, regardless of size.
_MIN_KERNEL_SECONDS = 3e-6


@dataclass(frozen=True)
class GPULayerTiming:
    """Per-layer breakdown produced by the GPU model."""

    shape: GemmShape
    utilization: float
    gemm_seconds: float
    elementwise_seconds: float
    dispatch_seconds: float
    layer_seconds: float


class GPUPerformanceModel:
    """Estimates framework-level GPU execution time for MLP inference."""

    def __init__(self, device: GPUDevice, power_model: GPUPowerModel | None = None) -> None:
        self.device = device
        self.power_model = power_model or GPUPowerModel()

    # --------------------------------------------------------- utilization
    def utilization(self, shape: GemmShape) -> float:
        """Fraction of peak FLOP/s a single GEMM of this shape can extract.

        The kernel tiles the output into ``_TILE_M x _TILE_N`` blocks; the
        device needs ``SMs * _BLOCKS_PER_SM_FOR_SATURATION`` resident blocks to
        reach peak.  Small ``k`` further limits pipeline efficiency within a
        block.
        """
        tiles = max(1, -(-shape.m // _TILE_M)) * max(1, -(-shape.n // _TILE_N))
        saturation_tiles = self.device.streaming_multiprocessors * _BLOCKS_PER_SM_FOR_SATURATION
        occupancy = min(1.0, tiles / saturation_tiles)
        k_efficiency = min(1.0, shape.k / 512.0)
        return max(1e-4, occupancy * k_efficiency)

    # -------------------------------------------------------------- timing
    def layer_timing(self, shape: GemmShape, use_bias: bool = True) -> GPULayerTiming:
        """Timing of one dense layer (GEMM + activation + optional bias add)."""
        utilization = self.utilization(shape)
        achievable_flops = self.device.peak_flops * utilization
        gemm_seconds = max(_MIN_KERNEL_SECONDS, shape.flops / achievable_flops)

        # Element-wise kernels (activation, bias add) are bandwidth-bound over
        # the m x n output held in device memory / cache.
        elementwise_passes = 2 if use_bias else 1
        elementwise_bytes = elementwise_passes * 2 * shape.output_bytes  # read + write
        elementwise_seconds = max(
            _MIN_KERNEL_SECONDS,
            elementwise_bytes / self.device.memory_bandwidth_bytes_per_second,
        )

        kernels = _KERNELS_PER_LAYER_WITH_BIAS if use_bias else _KERNELS_PER_LAYER_NO_BIAS
        dispatch_seconds = kernels * self.device.kernel_launch_overhead_us * 1e-6
        layer_seconds = gemm_seconds + elementwise_seconds + dispatch_seconds
        return GPULayerTiming(
            shape=shape,
            utilization=utilization,
            gemm_seconds=gemm_seconds,
            elementwise_seconds=elementwise_seconds,
            dispatch_seconds=dispatch_seconds,
            layer_seconds=layer_seconds,
        )

    # ------------------------------------------------------------ evaluate
    def evaluate_shapes(
        self, shapes: list[GemmShape], batch_size: int, use_bias: bool = True
    ) -> HardwareMetrics:
        """Full-model evaluation of an already-extracted GEMM workload."""
        if not shapes:
            raise ValueError("cannot evaluate an empty GEMM workload")
        timings = [self.layer_timing(shape, use_bias) for shape in shapes]
        total_time = sum(t.layer_seconds for t in timings)
        useful_flops = sum(t.shape.flops for t in timings)

        potential = self.device.peak_gflops
        effective = useful_flops / total_time / 1e9
        efficiency = min(1.0, effective / potential) if potential > 0 else 0.0
        outputs_per_second = batch_size / total_time
        # Latency: the whole batch must pass through every layer before the
        # first result of the run is available at the framework level.
        latency = total_time
        mean_utilization = sum(t.utilization for t in timings) / len(timings)
        power = self.power_model.estimate(self.device, mean_utilization)

        return HardwareMetrics(
            device_name=self.device.name,
            batch_size=batch_size,
            potential_gflops=potential,
            effective_gflops=effective,
            total_time_seconds=total_time,
            outputs_per_second=outputs_per_second,
            latency_seconds=latency,
            efficiency=efficiency,
            dram_bytes=0.0,  # framework timing excludes DRAM transfers
            power_watts=power,
            compute_bound=False,
            extras={
                "layer_seconds": [t.layer_seconds for t in timings],
                "layer_utilization": [t.utilization for t in timings],
                "dispatch_seconds": [t.dispatch_seconds for t in timings],
            },
        )

    def evaluate(self, spec: MLPSpec, batch_size: int = 256) -> HardwareMetrics:
        """Evaluate an MLP specification at the given batch size.

        ``batch_size`` defaults to a larger value than the FPGA model uses:
        GPUs batch with a larger ``m`` dimension to fill their compute cores
        (section III-D).
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        shapes = spec.gemm_shapes(batch_size)
        return self.evaluate_shapes(shapes, batch_size, use_bias=spec.use_bias)

    def best_batch_size(
        self, spec: MLPSpec, candidates: tuple[int, ...] = (64, 128, 256, 512, 1024, 2048)
    ) -> tuple[int, HardwareMetrics]:
        """Pick the batch size maximizing outputs/s (the GPU's only knob)."""
        if not candidates:
            raise ValueError("candidates must not be empty")
        best_batch: int | None = None
        best_metrics: HardwareMetrics | None = None
        for batch in candidates:
            metrics = self.evaluate(spec, batch_size=int(batch))
            if best_metrics is None or metrics.outputs_per_second > best_metrics.outputs_per_second:
                best_batch, best_metrics = int(batch), metrics
        assert best_batch is not None and best_metrics is not None
        return best_batch, best_metrics
