"""Analytical performance model of the FPGA systolic-array overlay.

This is the "hardware database worker" model from sections III-B/III-C of the
paper.  Given

* an :class:`~repro.hardware.device.FPGADevice` (DSP/M20K budget, clock, DDR
  banks),
* a :class:`~repro.hardware.systolic.GridConfig` (rows, columns, interleaving,
  vector width), and
* an MLP described by its per-layer GEMM shapes,

the model follows the paper's recipe:

1. *Baseline / potential performance* — "the utilization of DSPs is the
   product of the grid dimensions and vector width"; multiplied by the clock
   and 2 FLOPs per MAC this gives the compute roofline of the configuration.
2. *Bandwidth derating* — "using the DRAM specs from the configuration, we can
   determine the ratio of how much bandwidth is available to how much we
   need.  Cycles per block of data divided into the size of a block in bytes
   are used to calculate bandwidth needs."  If the grid needs more bytes per
   cycle than the memory system provides, the potential performance is scaled
   by the available/needed ratio.
3. *Effective performance* — "the grid configuration is used to break the ANN
   up into a series of blocked matrix multiplications"; each layer's blocked
   GEMM contributes compute cycles, memory traffic and pipeline-fill latency,
   from which total time, outputs/s, latency and efficiency follow.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..nn.layers import GemmShape
from ..nn.mlp import MLPSpec
from .device import FPGADevice
from .gemm import BlockedGemm, block_gemm
from .memory import DDR4_BANK, MemorySystem
from .power import FPGAPowerModel
from .results import HardwareMetrics
from .systolic import GridConfig

__all__ = ["FPGALayerTiming", "FPGAPerformanceModel"]

#: Fixed overlay overheads, expressed in clock cycles.
_PIPELINE_FILL_CYCLES = 256       # drain/fill of the systolic array per tile column
_KERNEL_ENQUEUE_CYCLES = 2_000    # OpenCL kernel enqueue + DMA descriptor setup per layer


@dataclass(frozen=True)
class FPGALayerTiming:
    """Per-layer breakdown produced by the FPGA model.

    Attributes
    ----------
    blocked:
        The blocked decomposition of this layer's GEMM.
    compute_seconds:
        Time the systolic array spends computing (including padding waste).
    memory_seconds:
        Time required to move the layer's DRAM traffic at the available
        bandwidth.
    layer_seconds:
        The layer's contribution to total run time: the maximum of compute
        and memory time (double buffering overlaps them) plus fixed
        per-layer overheads.
    first_result_seconds:
        Time until this layer's first output tile is available, used for the
        latency metric.
    """

    blocked: BlockedGemm
    compute_seconds: float
    memory_seconds: float
    layer_seconds: float
    first_result_seconds: float

    @property
    def memory_bound(self) -> bool:
        """Whether DRAM traffic (rather than compute) limits this layer."""
        return self.memory_seconds > self.compute_seconds


class FPGAPerformanceModel:
    """Estimates overlay performance for (MLP, grid configuration) pairs."""

    #: Entries kept in the per-instance ``best_grid_for`` memo.
    BEST_GRID_CACHE_SIZE = 1024

    def __init__(
        self,
        device: FPGADevice,
        memory: MemorySystem | None = None,
        power_model: FPGAPowerModel | None = None,
    ) -> None:
        self.device = device
        if memory is None:
            memory = MemorySystem(DDR4_BANK, banks=device.ddr_banks)
        self.memory = memory
        self.power_model = power_model or FPGAPowerModel()
        # Memo for best_grid_for: repeated topologies across a run re-ask the
        # same (layer shapes, batch, objective, candidate set) question.
        self._best_grid_cache: OrderedDict[tuple, tuple[GridConfig, HardwareMetrics]] = OrderedDict()
        self._best_grid_lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks don't pickle; the memo is process-local, so workers shipped to
        # a process pool start with an empty cache and a fresh lock.
        state = self.__dict__.copy()
        state["_best_grid_cache"] = OrderedDict()
        state["_best_grid_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._best_grid_lock = threading.Lock()

    # ----------------------------------------------------------- rooflines
    def potential_gflops(self, config: GridConfig) -> float:
        """Configuration roofline after the bandwidth derating of step 2.

        The compute roofline is ``2 * rows * columns * vector_width * clock``.
        The bandwidth need of the configuration is taken from its steady-state
        blocked-GEMM traffic (bytes per block over cycles per block); when the
        memory system cannot supply it, the roofline is scaled by the
        available/required ratio.
        """
        config.validate_for(self.device)
        compute_gflops = config.peak_gflops(self.device)

        # Steady-state traffic of one output tile with a deep k dimension:
        # stream a B tile and write a C tile every `cycles_per_tile` cycles.
        reference_k = max(config.block_k, 512)
        k_steps = -(-reference_k // config.block_k)
        cycles_per_tile = config.interleave_rows * config.interleave_columns * k_steps
        bytes_per_tile = 4 * (config.block_k * k_steps * config.block_n + config.block_m * config.block_n)
        required_bytes_per_second = (
            bytes_per_tile / cycles_per_tile * self.device.clock_hz
        )
        ratio = self.memory.bandwidth_ratio(required_bytes_per_second)
        if ratio >= 1.0:
            return compute_gflops
        return compute_gflops * ratio

    def device_peak_gflops(self) -> float:
        """Device-level roofline (all DSPs at the configured clock)."""
        return self.device.peak_gflops

    # ------------------------------------------------------------- timing
    def layer_timing(self, shape: GemmShape, config: GridConfig) -> FPGALayerTiming:
        """Timing of a single layer's blocked GEMM on the overlay."""
        blocked = block_gemm(shape, config)
        clock_hz = self.device.clock_hz

        compute_cycles = blocked.compute_cycles + blocked.tiles_n * _PIPELINE_FILL_CYCLES
        compute_seconds = compute_cycles / clock_hz
        memory_seconds = self.memory.transfer_seconds(blocked.dram_bytes, streams=blocked.total_tiles)
        overhead_seconds = _KERNEL_ENQUEUE_CYCLES / clock_hz
        layer_seconds = max(compute_seconds, memory_seconds) + overhead_seconds

        # First result: one tile of work (compute or memory bound) plus fill.
        first_tile_compute = (blocked.cycles_per_tile + _PIPELINE_FILL_CYCLES) / clock_hz
        first_tile_memory = self.memory.transfer_seconds(
            blocked.tile_a_bytes + blocked.tile_b_bytes + blocked.tile_c_bytes, streams=1
        )
        first_result_seconds = max(first_tile_compute, first_tile_memory) + overhead_seconds

        return FPGALayerTiming(
            blocked=blocked,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            layer_seconds=layer_seconds,
            first_result_seconds=first_result_seconds,
        )

    # ------------------------------------------------------------ evaluate
    def evaluate_shapes(self, shapes: list[GemmShape], config: GridConfig, batch_size: int) -> HardwareMetrics:
        """Full-model evaluation of an already-extracted GEMM workload."""
        if not shapes:
            raise ValueError("cannot evaluate an empty GEMM workload")
        config.validate_for(self.device)

        timings = [self.layer_timing(shape, config) for shape in shapes]
        total_time = sum(t.layer_seconds for t in timings)
        useful_flops = sum(t.blocked.useful_flops for t in timings)
        dram_bytes = sum(t.blocked.dram_bytes for t in timings)

        # Latency: the run is layer-sequential, so the first final result
        # appears after all but the last layer finish plus the last layer's
        # first-tile time.
        latency = sum(t.layer_seconds for t in timings[:-1]) + timings[-1].first_result_seconds

        potential = self.potential_gflops(config)
        effective = useful_flops / total_time / 1e9
        efficiency = min(1.0, effective / potential) if potential > 0 else 0.0
        outputs_per_second = batch_size / total_time
        compute_bound = all(not t.memory_bound for t in timings)
        power = self.power_model.estimate(self.device, config)

        return HardwareMetrics(
            device_name=self.device.name,
            batch_size=batch_size,
            potential_gflops=potential,
            effective_gflops=effective,
            total_time_seconds=total_time,
            outputs_per_second=outputs_per_second,
            latency_seconds=latency,
            efficiency=efficiency,
            dram_bytes=float(dram_bytes),
            power_watts=power,
            compute_bound=compute_bound,
            extras={
                "layer_seconds": [t.layer_seconds for t in timings],
                "layer_memory_bound": [t.memory_bound for t in timings],
                "padding_efficiency": [t.blocked.padding_efficiency for t in timings],
                "dsp_blocks_used": config.dsp_blocks_used,
                "device_peak_gflops": self.device_peak_gflops(),
            },
        )

    def evaluate(self, spec: MLPSpec, config: GridConfig, batch_size: int = 1024) -> HardwareMetrics:
        """Evaluate an MLP specification on this device with the given grid.

        ``batch_size`` is the number of samples resident in DRAM for one run
        (the paper measures total time from kernel enqueue until the last
        result lands back in DRAM).  The overlay tiles the run into small
        ``rows x interleave_rows`` blocks internally — the paper's point that
        the FPGA "does not need to increase batching" to fill its PEs — so
        latency stays low even for large runs.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        shapes = spec.gemm_shapes(batch_size)
        return self.evaluate_shapes(shapes, config, batch_size)

    # ------------------------------------------------------------ utilities
    def best_grid_for(
        self,
        spec: MLPSpec,
        candidates: list[GridConfig],
        batch_size: int = 16,
        objective: str = "outputs_per_second",
    ) -> tuple[GridConfig, HardwareMetrics]:
        """Exhaustively pick the best grid from ``candidates`` for one MLP.

        Used by tests and the greedy baseline; the evolutionary engine instead
        mutates grid parameters as part of the genome.  The sweep is scored in
        one vectorized pass (see :mod:`repro.hardware.vectorized`) and the
        answer memoized per (layer shapes, batch size, objective, candidate
        set) — repeated topologies across a run skip the scan entirely.  Both
        the winner and its metrics are identical to the original
        candidate-by-candidate loop.
        """
        if not candidates:
            raise ValueError("candidates must not be empty")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        key = (tuple(spec.gemm_shapes(batch_size)), batch_size, objective, tuple(candidates))
        with self._best_grid_lock:
            cached = self._best_grid_cache.get(key)
            if cached is not None:
                self._best_grid_cache.move_to_end(key)
                return cached

        from .vectorized import SWEEP_OBJECTIVES, sweep_grid_configs

        if objective in SWEEP_OBJECTIVES:
            sweep = sweep_grid_configs(self, spec.gemm_shapes(batch_size), candidates, batch_size)
            feasible = np.flatnonzero(sweep.fits)
            if feasible.size == 0:
                raise ValueError("no candidate grid configuration fits the device")
            # First occurrence of the maximum — the scalar loop's strict
            # ``value > best`` keeps the earliest winner among equals.
            winner = int(feasible[np.argmax(sweep.objective(objective)[feasible])])
            best_config = candidates[winner]
            best = (best_config, self.evaluate(spec, best_config, batch_size))
        else:
            best = self._best_grid_scalar(spec, candidates, batch_size, objective)

        with self._best_grid_lock:
            self._best_grid_cache[key] = best
            self._best_grid_cache.move_to_end(key)
            while len(self._best_grid_cache) > self.BEST_GRID_CACHE_SIZE:
                self._best_grid_cache.popitem(last=False)
        return best

    def _best_grid_scalar(
        self,
        spec: MLPSpec,
        candidates: list[GridConfig],
        batch_size: int,
        objective: str,
    ) -> tuple[GridConfig, HardwareMetrics]:
        """Reference candidate-by-candidate scan (fallback + equivalence oracle)."""
        best_config: GridConfig | None = None
        best_metrics: HardwareMetrics | None = None
        for config in candidates:
            if not config.fits(self.device):
                continue
            metrics = self.evaluate(spec, config, batch_size)
            value = getattr(metrics, objective)
            if best_metrics is None or value > getattr(best_metrics, objective):
                best_config, best_metrics = config, metrics
        if best_config is None or best_metrics is None:
            raise ValueError("no candidate grid configuration fits the device")
        return best_config, best_metrics
