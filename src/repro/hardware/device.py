"""Device descriptions for the FPGA and GPU targets evaluated in the paper.

The hardware database worker receives "a hardware-specific configuration file
that defines the target accelerator ... the name of the FPGA, the relevant
primitive logic details such as DSP and SRAM count, target clock frequency,
the type of global memory (DRAM) to be used, and its speed and rate"
(section III-C).  :class:`FPGADevice` is that configuration file in dataclass
form.  :class:`GPUDevice` plays the same role for the simulation worker's GPU
targets.

Catalogue entries reproduce the devices named in section IV:

* Arria 10 GX 1150 at 250 MHz — 1518 hardened FP32 DSP blocks, peak
  759 GFLOP/s, one bank of DDR4 at 19.2 GB/s on the development kit.
* Stratix 10 2800 at 400 MHz — searched with the roofline scaled back to
  4.6 TFLOP/s, four banks of DDR4.
* NVIDIA Quadro M5000 (4.3 TFLOP/s FP32, 211 GB/s), Titan X (12 TFLOP/s),
  AMD Radeon VII (13.44 TFLOP/s, 1 TB/s HBM2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..registry import Registry

__all__ = [
    "FPGADevice",
    "GPUDevice",
    "ARRIA10_GX1150",
    "STRATIX10_2800",
    "QUADRO_M5000",
    "TITAN_X",
    "RADEON_VII",
    "FPGA_DEVICES",
    "GPU_DEVICES",
    "register_fpga_device",
    "register_gpu_device",
    "fpga_device",
    "gpu_device",
    "available_fpga_devices",
    "available_gpu_devices",
]


@dataclass(frozen=True)
class FPGADevice:
    """Reconfigurable-device resource budget and clocking assumptions.

    Attributes
    ----------
    name:
        Marketing name of the device.
    dsp_count:
        Number of hardened floating-point DSP blocks available; each block
        performs one FP32 multiply-accumulate (2 FLOPs) per cycle.
    m20k_count:
        Number of 20-kbit embedded SRAM blocks (used for interleave buffers).
    alm_count:
        Adaptive logic modules available for the overlay's control logic.
    clock_mhz:
        Target kernel clock frequency achieved by the OpenCL overlay.
    ddr_banks:
        Number of DDR banks populated on the board.
    ddr_bandwidth_gbps_per_bank:
        Peak bandwidth of one DDR bank in GB/s.
    """

    name: str
    dsp_count: int
    m20k_count: int
    alm_count: int
    clock_mhz: float
    ddr_banks: int = 1
    ddr_bandwidth_gbps_per_bank: float = 19.2

    def __post_init__(self) -> None:
        if self.dsp_count <= 0:
            raise ValueError(f"dsp_count must be positive, got {self.dsp_count}")
        if self.m20k_count <= 0:
            raise ValueError(f"m20k_count must be positive, got {self.m20k_count}")
        if self.alm_count <= 0:
            raise ValueError(f"alm_count must be positive, got {self.alm_count}")
        if self.clock_mhz <= 0:
            raise ValueError(f"clock_mhz must be positive, got {self.clock_mhz}")
        if self.ddr_banks <= 0:
            raise ValueError(f"ddr_banks must be positive, got {self.ddr_banks}")
        if self.ddr_bandwidth_gbps_per_bank <= 0:
            raise ValueError(
                f"ddr_bandwidth_gbps_per_bank must be positive, got {self.ddr_bandwidth_gbps_per_bank}"
            )

    @property
    def clock_hz(self) -> float:
        """Kernel clock in Hz."""
        return self.clock_mhz * 1e6

    @property
    def peak_gflops(self) -> float:
        """Device compute roofline in GFLOP/s (2 FLOPs per DSP per cycle)."""
        return 2.0 * self.dsp_count * self.clock_mhz / 1e3

    @property
    def total_bandwidth_gbps(self) -> float:
        """Aggregate DRAM bandwidth across all populated banks, in GB/s."""
        return self.ddr_banks * self.ddr_bandwidth_gbps_per_bank

    @property
    def total_bandwidth_bytes_per_second(self) -> float:
        """Aggregate DRAM bandwidth in bytes/s."""
        return self.total_bandwidth_gbps * 1e9

    @property
    def on_chip_memory_bytes(self) -> int:
        """Total embedded SRAM capacity in bytes (20 kbit per M20K block)."""
        return int(self.m20k_count * 20_480 / 8)

    def with_ddr_banks(self, banks: int) -> "FPGADevice":
        """Return a copy of this device populated with a different bank count.

        Section IV-C sweeps 1, 2 and 4 banks on the same Arria 10 board; this
        helper is what that sweep uses.
        """
        return replace(self, ddr_banks=int(banks))

    def with_clock(self, clock_mhz: float) -> "FPGADevice":
        """Return a copy of this device at a different kernel clock."""
        return replace(self, clock_mhz=float(clock_mhz))


@dataclass(frozen=True)
class GPUDevice:
    """Fixed-architecture GPU description used by the simulation worker.

    Attributes
    ----------
    name:
        Marketing name.
    peak_tflops:
        FP32 single-precision peak in TFLOP/s.
    memory_bandwidth_gbps:
        Peak DRAM bandwidth in GB/s.
    memory_gb:
        On-board memory capacity in GB.
    streaming_multiprocessors:
        Number of SM/CU compute clusters; drives the utilization model for
        small GEMMs.
    kernel_launch_overhead_us:
        Fixed per-operation dispatch latency observed through the framework
        (the paper profiles TensorFlow trace files, whose per-op overhead
        dominates small MLP layers).
    board_power_watts:
        Maximum board power; the paper reports the GPUs drawing roughly a
        third of this during MLP runs.
    """

    name: str
    peak_tflops: float
    memory_bandwidth_gbps: float
    memory_gb: float
    streaming_multiprocessors: int
    kernel_launch_overhead_us: float = 60.0
    board_power_watts: float = 150.0

    def __post_init__(self) -> None:
        if self.peak_tflops <= 0:
            raise ValueError(f"peak_tflops must be positive, got {self.peak_tflops}")
        if self.memory_bandwidth_gbps <= 0:
            raise ValueError(
                f"memory_bandwidth_gbps must be positive, got {self.memory_bandwidth_gbps}"
            )
        if self.memory_gb <= 0:
            raise ValueError(f"memory_gb must be positive, got {self.memory_gb}")
        if self.streaming_multiprocessors <= 0:
            raise ValueError(
                f"streaming_multiprocessors must be positive, got {self.streaming_multiprocessors}"
            )
        if self.kernel_launch_overhead_us < 0:
            raise ValueError(
                f"kernel_launch_overhead_us must be >= 0, got {self.kernel_launch_overhead_us}"
            )
        if self.board_power_watts <= 0:
            raise ValueError(f"board_power_watts must be positive, got {self.board_power_watts}")

    @property
    def peak_gflops(self) -> float:
        """FP32 peak in GFLOP/s."""
        return self.peak_tflops * 1e3

    @property
    def peak_flops(self) -> float:
        """FP32 peak in FLOP/s."""
        return self.peak_tflops * 1e12

    @property
    def memory_bandwidth_bytes_per_second(self) -> float:
        """Peak DRAM bandwidth in bytes/s."""
        return self.memory_bandwidth_gbps * 1e9


# ---------------------------------------------------------------------------
# Device catalogue (section IV of the paper).
# ---------------------------------------------------------------------------

ARRIA10_GX1150 = FPGADevice(
    name="Arria 10 GX 1150",
    dsp_count=1518,
    m20k_count=2713,
    alm_count=427_200,
    clock_mhz=250.0,
    ddr_banks=1,
    ddr_bandwidth_gbps_per_bank=19.2,
)

STRATIX10_2800 = FPGADevice(
    name="Stratix 10 GX 2800",
    dsp_count=5760,
    m20k_count=11_721,
    alm_count=933_120,
    clock_mhz=400.0,
    ddr_banks=4,
    ddr_bandwidth_gbps_per_bank=19.2,
)

QUADRO_M5000 = GPUDevice(
    name="NVIDIA Quadro M5000",
    peak_tflops=4.3,
    memory_bandwidth_gbps=211.0,
    memory_gb=8.0,
    streaming_multiprocessors=16,
    kernel_launch_overhead_us=60.0,
    board_power_watts=150.0,
)

TITAN_X = GPUDevice(
    name="NVIDIA Titan X",
    peak_tflops=12.0,
    memory_bandwidth_gbps=480.0,
    memory_gb=12.0,
    streaming_multiprocessors=28,
    kernel_launch_overhead_us=55.0,
    board_power_watts=250.0,
)

RADEON_VII = GPUDevice(
    name="AMD Radeon VII",
    peak_tflops=13.44,
    memory_bandwidth_gbps=1000.0,
    memory_gb=16.0,
    streaming_multiprocessors=60,
    kernel_launch_overhead_us=70.0,
    board_power_watts=300.0,
)

#: Open device catalogues; plugins may register their own boards by name.
FPGA_DEVICES: Registry[FPGADevice] = Registry("FPGA device")
GPU_DEVICES: Registry[GPUDevice] = Registry("GPU device")


def register_fpga_device(
    name: str, device: FPGADevice, aliases: tuple[str, ...] = (), overwrite: bool = False
) -> FPGADevice:
    """Add an FPGA device to the catalogue under ``name`` (plus aliases)."""
    return FPGA_DEVICES.register(name, device, aliases=aliases, overwrite=overwrite)


def register_gpu_device(
    name: str, device: GPUDevice, aliases: tuple[str, ...] = (), overwrite: bool = False
) -> GPUDevice:
    """Add a GPU device to the catalogue under ``name`` (plus aliases)."""
    return GPU_DEVICES.register(name, device, aliases=aliases, overwrite=overwrite)


register_fpga_device("arria10", ARRIA10_GX1150, aliases=("arria10_gx1150", "a10"))
register_fpga_device("stratix10", STRATIX10_2800, aliases=("stratix10_2800", "s10"))

register_gpu_device("quadro_m5000", QUADRO_M5000, aliases=("m5000",))
register_gpu_device("titan_x", TITAN_X, aliases=("titanx", "tx"))
register_gpu_device("radeon_vii", RADEON_VII, aliases=("radeonvii",))


def available_fpga_devices() -> list[str]:
    """Marketing names of FPGA devices in the catalogue."""
    return sorted({device.name for device in FPGA_DEVICES.entries().values()})


def available_gpu_devices() -> list[str]:
    """Marketing names of GPU devices in the catalogue."""
    return sorted({device.name for device in GPU_DEVICES.entries().values()})


def fpga_device(name: str) -> FPGADevice:
    """Look up an FPGA device by registered name or common alias."""
    return FPGA_DEVICES.resolve(name)


def gpu_device(name: str) -> GPUDevice:
    """Look up a GPU device by registered name or common alias."""
    return GPU_DEVICES.resolve(name)
