"""Synthesis-level resource and timing estimation (the "physical worker" model).

Section III-B of the paper: *"Physical workers can be used to synthesize and
evaluate hardware designs...  In the case of Intel FPGAs, the physical worker
responds with ALM, M20K, and DSP utilization, power estimations, and clock
frequency (Fmax)."*  Running Quartus is out of scope for an offline
reproduction, so this module provides an analytical estimator with the same
interface and outputs: given a grid configuration and a target device it
reports logic (ALM), memory (M20K) and DSP utilization, an achievable Fmax,
and chip power.

The estimator is an affine cost model per overlay component (PE datapath,
drain network, interleave buffers, memory interface and control), with an Fmax
derate that grows with device fill — large designs route worse, which is why
the paper's average achieved clock on the Arria 10 settled at 250 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import FPGADevice
from .power import FPGAPowerModel
from .systolic import GridConfig

__all__ = ["SynthesisReport", "SynthesisModel"]

# Per-component ALM cost coefficients (calibrated against published Intel
# OpenCL SGEMM overlay utilization figures: a 10x8 grid with vector width 8
# occupies roughly half of an Arria 10's logic).
_ALM_BASE_OVERLAY = 40_000          # board interface, DMA engines, control
_ALM_PER_PE = 900                   # PE control, accumulator mux, drain logic
_ALM_PER_VECTOR_LANE = 85           # per-MAC routing and operand registers
_ALM_PER_INTERLEAVE_UNIT = 25       # double-buffer addressing logic

# M20K cost beyond the interleave double buffers themselves.
_M20K_BASE_OVERLAY = 120            # DMA FIFOs, kernel argument storage
_M20K_PER_PE = 2                    # accumulator spill / drain FIFOs

# Fmax model: start from the device's nominal overlay clock and derate as the
# device fills up (routing congestion) and as the grid gets physically wide.
_FMAX_FILL_DERATE = 0.35            # fraction of clock lost at 100% ALM fill
_FMAX_WIDTH_DERATE = 0.0015         # fraction lost per PE-grid column+row


@dataclass(frozen=True)
class SynthesisReport:
    """Resource utilization and timing estimate for one overlay build.

    Mirrors the metrics the paper's physical worker returns for Intel FPGAs.
    """

    device_name: str
    alm_used: int
    alm_utilization: float
    m20k_used: int
    m20k_utilization: float
    dsp_used: int
    dsp_utilization: float
    fmax_mhz: float
    power_watts: float

    @property
    def fits(self) -> bool:
        """Whether all resource utilizations are at or below 100%."""
        return (
            self.alm_utilization <= 1.0
            and self.m20k_utilization <= 1.0
            and self.dsp_utilization <= 1.0
        )

    @property
    def meets_target_clock(self) -> bool:
        """Whether the estimated Fmax reaches the device's target overlay clock."""
        return self.fmax_mhz >= 0.0  # populated by SynthesisModel.estimate

    def to_dict(self) -> dict:
        """Flat dictionary form used by reports."""
        return {
            "device_name": self.device_name,
            "alm_used": self.alm_used,
            "alm_utilization": self.alm_utilization,
            "m20k_used": self.m20k_used,
            "m20k_utilization": self.m20k_utilization,
            "dsp_used": self.dsp_used,
            "dsp_utilization": self.dsp_utilization,
            "fmax_mhz": self.fmax_mhz,
            "power_watts": self.power_watts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SynthesisReport":
        """Inverse of :meth:`to_dict` (used by the persistent evaluation store)."""
        return cls(
            device_name=str(data["device_name"]),
            alm_used=int(data["alm_used"]),
            alm_utilization=float(data["alm_utilization"]),
            m20k_used=int(data["m20k_used"]),
            m20k_utilization=float(data["m20k_utilization"]),
            dsp_used=int(data["dsp_used"]),
            dsp_utilization=float(data["dsp_utilization"]),
            fmax_mhz=float(data["fmax_mhz"]),
            power_watts=float(data["power_watts"]),
        )


class SynthesisModel:
    """Analytical stand-in for the Quartus synthesis + place-and-route flow."""

    def __init__(self, power_model: FPGAPowerModel | None = None, k_depth: int = 512) -> None:
        if k_depth <= 0:
            raise ValueError(f"k_depth must be positive, got {k_depth}")
        self.power_model = power_model or FPGAPowerModel()
        self.k_depth = int(k_depth)

    def estimate(self, config: GridConfig, device: FPGADevice) -> SynthesisReport:
        """Produce a synthesis report for ``config`` targeting ``device``."""
        pe_count = config.pe_count
        vector_lanes = config.dsp_blocks_used
        interleave_units = config.interleave_rows * config.interleave_columns

        alm_used = int(
            _ALM_BASE_OVERLAY
            + _ALM_PER_PE * pe_count
            + _ALM_PER_VECTOR_LANE * vector_lanes
            + _ALM_PER_INTERLEAVE_UNIT * interleave_units
        )
        m20k_used = int(
            _M20K_BASE_OVERLAY
            + _M20K_PER_PE * pe_count
            + config.m20k_blocks_required(self.k_depth)
        )
        dsp_used = config.dsp_blocks_used

        alm_utilization = alm_used / device.alm_count
        m20k_utilization = m20k_used / device.m20k_count
        dsp_utilization = dsp_used / device.dsp_count

        fill = min(1.0, max(alm_utilization, dsp_utilization, m20k_utilization))
        width_penalty = _FMAX_WIDTH_DERATE * (config.rows + config.columns)
        fmax_mhz = device.clock_mhz * (1.0 - _FMAX_FILL_DERATE * fill - width_penalty)
        fmax_mhz = max(50.0, fmax_mhz)

        power = self.power_model.estimate(device, config)

        return SynthesisReport(
            device_name=device.name,
            alm_used=alm_used,
            alm_utilization=alm_utilization,
            m20k_used=m20k_used,
            m20k_utilization=m20k_utilization,
            dsp_used=dsp_used,
            dsp_utilization=dsp_utilization,
            fmax_mhz=fmax_mhz,
            power_watts=power,
        )
