"""The co-design service: HTTP API wired onto the queue and the runtime.

:class:`CoDesignService` composes the three service layers — the durable
:class:`~repro.service.jobs.JobQueue`, the warm
:class:`~repro.service.runtime.ServiceRuntime`, and the
:class:`~repro.service.http.ServiceHTTPServer` — and registers the JSON API:

======  ==============================  =============================================
Method  Path                            Meaning
======  ==============================  =============================================
POST    ``/jobs``                       Submit a job (``{"spec": ...}`` or ``{"run": ...}``)
GET     ``/jobs``                       List jobs (``?state=``, ``?limit=``)
GET     ``/jobs/{id}``                  One job's status and per-stage progress
GET     ``/jobs/{id}/result``           Final result (202 while the job still runs)
GET     ``/jobs/{id}/frontier``         Long-poll frontier events (``?since=N``)
DELETE  ``/jobs/{id}``                  Cancel (queued: immediate; running: next checkpoint)
GET     ``/healthz``                    Liveness + version
GET     ``/metrics``                    Queue depth, evals/s, store hit rate
======  ==============================  =============================================
"""

from __future__ import annotations

from .. import __version__
from ..core.config import ServiceConfig
from ..core.errors import ServiceError
from .http import ApiError, Request, Router, ServiceHTTPServer
from .jobs import JobQueue, JobRecord
from .runtime import ServiceRuntime, normalize_job_spec

__all__ = ["CoDesignService"]


class CoDesignService:
    """One running ``ecad serve`` instance.

    Parameters
    ----------
    config:
        Service settings (bind address, queue path, concurrency, store).
    printer:
        Optional progress callable (e.g. ``print``); ``None`` keeps the
        service silent — tests run it quietly, the CLI passes ``print``.

    The constructor only builds state; call :meth:`start` to recover
    interrupted jobs, spin up the scheduler, and bind the HTTP socket.
    ``serve_forever`` / ``stop`` drive the blocking CLI path, while tests use
    ``start()`` + ``stop()`` around an ephemeral port.
    """

    def __init__(self, config: ServiceConfig, printer=None) -> None:
        self.config = config
        self._printer = printer
        self.queue = JobQueue(config.resolved_queue_path)
        self.runtime = ServiceRuntime(config, self.queue, printer=printer)
        self.router = Router()
        self._register_routes()
        self.server: ServiceHTTPServer | None = None
        self._serve_thread = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> tuple[str, int]:
        """Bind the socket, start the scheduler; returns ``(host, port)``.

        Binding port 0 picks a free ephemeral port (tests); the resolved
        port is returned either way.
        """
        self.server = ServiceHTTPServer(
            (self.config.host, self.config.port), self.router, printer=self._printer
        )
        self.runtime.start()
        host, port = self.server.server_address[:2]
        self._log(
            f"ecad service v{__version__} on http://{host}:{port} "
            f"(queue: {self.config.resolved_queue_path}, "
            f"backend: {self.config.backend} x{self.config.eval_workers}, "
            f"jobs: {self.config.max_concurrent_jobs} concurrent, "
            f"store: {self.config.store_path or 'off'})"
        )
        self._serve_thread = self.server.serve_in_thread()
        return host, port

    def serve_forever(self) -> None:
        """Blocking variant for the CLI: start, then wait until stopped."""
        if self.server is None:
            self.start()
        while self._serve_thread.is_alive():
            # Short-interval joins keep the main thread responsive to Ctrl-C.
            self._serve_thread.join(timeout=0.5)

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, re-queue running jobs, close."""
        if self.server is not None:
            self.server.stop()
            self.server = None
        self.runtime.stop()
        self.queue.close()
        self._log("ecad service stopped")

    # --------------------------------------------------------------- routes
    def _register_routes(self) -> None:
        add = self.router.add
        add("GET", "/healthz", self._healthz)
        add("GET", "/metrics", self._metrics)
        add("POST", "/jobs", self._submit_job)
        add("GET", "/jobs", self._list_jobs)
        add("GET", "/jobs/{job_id}", self._get_job)
        add("GET", "/jobs/{job_id}/result", self._get_result)
        add("GET", "/jobs/{job_id}/frontier", self._get_frontier)
        add("DELETE", "/jobs/{job_id}", self._cancel_job)

    def _job(self, job_id: str) -> JobRecord:
        try:
            return self.queue.get(job_id)
        except ServiceError as exc:
            raise ApiError(404, str(exc)) from exc

    def _healthz(self, request: Request) -> dict:
        counts = self.queue.counts()
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": self.runtime.metrics()["uptime_seconds"],
            "jobs": counts,
            "stopping": self.runtime.stopping,
        }

    def _metrics(self, request: Request) -> dict:
        return self.runtime.metrics()

    def _submit_job(self, request: Request) -> tuple[int, dict]:
        if self.runtime.stopping:
            raise ApiError(503, "service is shutting down")
        try:
            spec_data, name = normalize_job_spec(request.body)
        except ServiceError as exc:
            raise ApiError(400, str(exc)) from exc
        job = self.queue.submit(spec_data, name=name)
        return 201, job.to_dict()

    def _list_jobs(self, request: Request) -> dict:
        state = request.query.get("state")
        limit = request.query_int("limit", 200)
        try:
            jobs = self.queue.list(state=state, limit=limit)
        except ServiceError as exc:
            raise ApiError(400, str(exc)) from exc
        return {"jobs": [job.to_dict() for job in jobs]}

    def _get_job(self, request: Request) -> dict:
        return self._job(request.params["job_id"]).to_dict()

    def _get_result(self, request: Request) -> tuple[int, dict]:
        job = self._job(request.params["job_id"])
        payload = job.to_dict(include_result=True)
        # 202 tells pollers "accepted, still working" without a body schema
        # change; terminal states answer 200 with the stored result attached.
        return (200 if job.terminal else 202), payload

    def _get_frontier(self, request: Request) -> dict:
        job_id = request.params["job_id"]
        self._job(job_id)  # 404 before blocking on an unknown id
        since = request.query_int("since", 0)
        timeout = request.query_float("timeout", self.config.long_poll_timeout)
        timeout = min(max(timeout, 0.0), self.config.long_poll_timeout)
        events, job = self.queue.wait_for_events(job_id, since=since, timeout=timeout)
        return {
            "job_id": job_id,
            "state": job.state,
            "terminal": job.terminal,
            "since": since,
            "next_since": events[-1].seq if events else since,
            "events": [event.to_dict() for event in events],
        }

    def _cancel_job(self, request: Request) -> dict:
        job = self._job(request.params["job_id"])
        if job.terminal:
            return job.to_dict()
        return self.queue.request_cancel(job.job_id).to_dict()

    def _log(self, message: str) -> None:
        if self._printer is not None:
            self._printer(message)
