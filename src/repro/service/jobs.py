"""Crash-safe SQLite-backed job queue for the co-design service.

A *job* is one experiment grid (an :class:`~repro.experiment.spec.ExperimentSpec`,
possibly the single-cell spec a ``run`` request normalizes into) owned by the
long-lived ``ecad serve`` process.  The queue is the service's durable spine:

* **States** — ``queued → running → done / failed / cancelled``.  Every
  transition is one SQLite transaction, so the on-disk state is consistent at
  any kill point.
* **Crash safety** — a job found ``running`` on startup belonged to a server
  that died mid-flight; :meth:`recover_interrupted` re-queues it.  Because the
  actual per-stage checkpoints are the experiment layer's
  :class:`~repro.experiment.artifacts.RunArtifact` files (keyed on stable run
  ids and cell digests), the re-run resumes from the last completed cell and
  the final result is bit-identical to an uninterrupted run.
* **Frontier event log** — every change of a job's streaming
  :class:`~repro.core.frontier.FrontierArchive` is appended as a monotonically
  numbered event row; ``GET /jobs/{id}/frontier?since=N`` long-polls this log.
  :meth:`wait_for_events` blocks on a condition variable that every write
  notifies, so pollers wake the moment the frontier grows or the job reaches a
  terminal state.

The queue is safe for concurrent use by the HTTP handler threads and the
scheduler's job workers (one connection, one lock, WAL journaling for the
benefit of external readers).
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import ServiceError

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "QUEUE_SCHEMA_VERSION",
    "JobRecord",
    "FrontierEvent",
    "JobQueue",
    "deterministic_result_digest",
]

#: All job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Bump when the queue table layout changes incompatibly.
QUEUE_SCHEMA_VERSION = 1

_CREATE_META = """
CREATE TABLE IF NOT EXISTS queue_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
)
"""

_CREATE_JOBS = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id           TEXT PRIMARY KEY,
    name             TEXT NOT NULL,
    state            TEXT NOT NULL,
    spec             TEXT NOT NULL,
    output_dir       TEXT NOT NULL DEFAULT '',
    submitted_at     REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    attempts         INTEGER NOT NULL DEFAULT 0,
    total_cells      INTEGER NOT NULL DEFAULT 0,
    completed_cells  INTEGER NOT NULL DEFAULT 0,
    stages           TEXT NOT NULL DEFAULT '{}',
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    error            TEXT NOT NULL DEFAULT '',
    result           TEXT
)
"""

_CREATE_EVENTS = """
CREATE TABLE IF NOT EXISTS frontier_events (
    job_id     TEXT NOT NULL,
    seq        INTEGER NOT NULL,
    run_id     TEXT NOT NULL,
    created_at REAL NOT NULL,
    payload    TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
)
"""

_DROP_SECONDS_KEYS = frozenset(
    {
        "wall_clock_seconds",
        "evaluation_seconds",
        "train_seconds",
        "total_evaluation_seconds",
        "average_evaluation_seconds",
        "evaluations_per_second",
        "statistics",
        "from_cache",
    }
)


def _strip_timing(node):
    """Copy of ``node`` with timing/statistics keys removed recursively.

    Wall-clock measurements (the statistics block built from them, and the
    cache provenance flag, which depends on what a shared store has already
    seen) are the only honest nondeterminism in a seeded run; everything else
    must be bit-identical across an interrupted-and-resumed run and an
    uninterrupted one.
    """
    if isinstance(node, dict):
        return {
            key: _strip_timing(value)
            for key, value in node.items()
            if key not in _DROP_SECONDS_KEYS
        }
    if isinstance(node, list):
        return [_strip_timing(item) for item in node]
    return node


def deterministic_result_digest(report_data: dict) -> str:
    """Digest of an experiment report covering only its deterministic content.

    Parameters
    ----------
    report_data:
        ``ExperimentReport.to_dict()`` output (or any nested dict/list tree).

    Returns
    -------
    str
        Hex SHA-256 over the canonical JSON of the tree with every timing
        field stripped.  Two runs of the same spec — one interrupted and
        resumed, one not — must produce the same digest; this is the
        bit-identity check the crash-recovery tests (and clients) rely on.
    """
    canonical = json.dumps(_strip_timing(report_data), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class JobRecord:
    """One row of the jobs table, in object form."""

    job_id: str
    name: str
    state: str
    spec: dict
    output_dir: str = ""
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    attempts: int = 0
    total_cells: int = 0
    completed_cells: int = 0
    stages: dict = field(default_factory=dict)
    cancel_requested: bool = False
    error: str = ""
    result: dict | None = None

    @property
    def terminal(self) -> bool:
        """Whether the job has reached a final state."""
        return self.state in TERMINAL_STATES

    def to_dict(self, include_result: bool = False) -> dict:
        """JSON payload of one job (the ``GET /jobs/{id}`` body)."""
        data = {
            "job_id": self.job_id,
            "name": self.name,
            "state": self.state,
            "spec": self.spec,
            "output_dir": self.output_dir,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "total_cells": self.total_cells,
            "completed_cells": self.completed_cells,
            "stages": self.stages,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
        }
        if include_result:
            data["result"] = self.result
        return data


@dataclass(frozen=True)
class FrontierEvent:
    """One frontier-log entry: a change of a job's Pareto frontier."""

    job_id: str
    seq: int
    run_id: str
    created_at: float
    payload: dict

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "run_id": self.run_id,
            "created_at": self.created_at,
            **self.payload,
        }


class JobQueue:
    """The durable job queue behind ``ecad serve``.

    Parameters
    ----------
    path:
        SQLite database location (``":memory:"`` for tests).  Parent
        directories are created on demand.
    timeout_seconds:
        SQLite busy timeout for concurrent external readers.
    """

    def __init__(self, path: str | Path, timeout_seconds: float = 30.0) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        #: Notified on every job-state change and frontier-event append;
        #: long-pollers and the scheduler wait on it.
        self.changed = threading.Condition(self._lock)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        try:
            self._connection = sqlite3.connect(
                self.path, timeout=timeout_seconds, check_same_thread=False
            )
            self._connection.execute(f"PRAGMA busy_timeout = {int(timeout_seconds * 1000)}")
            if self.path != ":memory:":
                self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.execute("PRAGMA synchronous=NORMAL")
            self._initialize_schema()
        except sqlite3.DatabaseError as exc:
            raise ServiceError(
                f"cannot open job queue {self.path}: {exc}"
            ) from exc

    # --------------------------------------------------------------- schema
    def _initialize_schema(self) -> None:
        row = None
        tables = {
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            )
        }
        if "queue_meta" in tables:
            row = self._connection.execute(
                "SELECT value FROM queue_meta WHERE key='schema_version'"
            ).fetchone()
        elif tables:
            raise ServiceError(
                f"{self.path} is an SQLite file but not a job queue "
                f"(tables: {', '.join(sorted(tables))})"
            )
        if row is None:
            with self._connection:
                self._connection.execute(_CREATE_META)
                self._connection.execute(_CREATE_JOBS)
                self._connection.execute(_CREATE_EVENTS)
                self._connection.execute(
                    "INSERT OR REPLACE INTO queue_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(QUEUE_SCHEMA_VERSION)),
                )
        elif int(row[0]) != QUEUE_SCHEMA_VERSION:
            raise ServiceError(
                f"job queue {self.path} has schema version {row[0]}, "
                f"this build expects {QUEUE_SCHEMA_VERSION}"
            )

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------ row codec
    _COLUMNS = (
        "job_id, name, state, spec, output_dir, submitted_at, started_at, "
        "finished_at, attempts, total_cells, completed_cells, stages, "
        "cancel_requested, error, result"
    )

    @staticmethod
    def _record(row) -> JobRecord:
        return JobRecord(
            job_id=row[0],
            name=row[1],
            state=row[2],
            spec=json.loads(row[3]),
            output_dir=row[4],
            submitted_at=row[5],
            started_at=row[6],
            finished_at=row[7],
            attempts=row[8],
            total_cells=row[9],
            completed_cells=row[10],
            stages=json.loads(row[11]),
            cancel_requested=bool(row[12]),
            error=row[13],
            result=json.loads(row[14]) if row[14] else None,
        )

    # ------------------------------------------------------------ lifecycle
    def submit(self, spec_data: dict, name: str = "", output_dir: str = "") -> JobRecord:
        """Enqueue one job; returns the queued record (state ``queued``)."""
        job_id = uuid.uuid4().hex[:12]
        name = name or str(spec_data.get("name", "")) or job_id
        with self.changed:
            self._connection.execute(
                "INSERT INTO jobs (job_id, name, state, spec, output_dir, submitted_at)"
                " VALUES (?, ?, 'queued', ?, ?, ?)",
                (job_id, name, json.dumps(spec_data), str(output_dir), time.time()),
            )
            self._connection.commit()
            self.changed.notify_all()
        return self.get(job_id)

    def get(self, job_id: str) -> JobRecord:
        """Load one job; raises :class:`ServiceError` for unknown ids."""
        with self._lock:
            row = self._connection.execute(
                f"SELECT {self._COLUMNS} FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return self._record(row)

    def list(self, state: str | None = None, limit: int = 200) -> list[JobRecord]:
        """Jobs newest-first, optionally filtered by state."""
        query = f"SELECT {self._COLUMNS} FROM jobs"
        params: tuple = ()
        if state is not None:
            if state not in JOB_STATES:
                raise ServiceError(
                    f"unknown job state {state!r}; expected one of {', '.join(JOB_STATES)}"
                )
            query += " WHERE state = ?"
            params = (state,)
        query += " ORDER BY submitted_at DESC, job_id DESC LIMIT ?"
        with self._lock:
            rows = self._connection.execute(query, params + (int(limit),)).fetchall()
        return [self._record(row) for row in rows]

    def counts(self) -> dict[str, int]:
        """Jobs per state (zero-filled), plus the total."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        counts.update({state: count for state, count in rows})
        counts["total"] = sum(counts[state] for state in JOB_STATES)
        return counts

    def claim_next(self) -> JobRecord | None:
        """Atomically move the oldest queued job to ``running`` and return it.

        Returns ``None`` when nothing is queued.  The claim is a single
        transaction, so concurrent scheduler workers never claim the same
        job twice.
        """
        with self.changed:
            row = self._connection.execute(
                "SELECT job_id FROM jobs WHERE state = 'queued' "
                "ORDER BY submitted_at ASC, job_id ASC LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            job_id = row[0]
            self._connection.execute(
                "UPDATE jobs SET state = 'running', started_at = ?, "
                "attempts = attempts + 1 WHERE job_id = ?",
                (time.time(), job_id),
            )
            self._connection.commit()
            self.changed.notify_all()
        return self.get(job_id)

    def _transition(self, job_id: str, state: str, **extra) -> JobRecord:
        sets = ["state = ?"]
        params: list = [state]
        for column, value in extra.items():
            sets.append(f"{column} = ?")
            params.append(value)
        params.append(job_id)
        with self.changed:
            cursor = self._connection.execute(
                f"UPDATE jobs SET {', '.join(sets)} WHERE job_id = ?", params
            )
            if cursor.rowcount == 0:
                raise ServiceError(f"unknown job {job_id!r}")
            self._connection.commit()
            self.changed.notify_all()
        return self.get(job_id)

    def mark_done(self, job_id: str, result: dict) -> JobRecord:
        """Terminal success transition; stores the result payload."""
        return self._transition(
            job_id, "done", finished_at=time.time(), result=json.dumps(result), error=""
        )

    def mark_failed(self, job_id: str, error: str, result: dict | None = None) -> JobRecord:
        """Terminal failure transition; keeps any partial result payload."""
        return self._transition(
            job_id,
            "failed",
            finished_at=time.time(),
            error=str(error),
            result=json.dumps(result) if result is not None else None,
        )

    def mark_cancelled(self, job_id: str) -> JobRecord:
        """Terminal cancellation transition."""
        return self._transition(job_id, "cancelled", finished_at=time.time())

    def requeue(self, job_id: str) -> JobRecord:
        """Put a running job back in the queue (graceful shutdown mid-job)."""
        return self._transition(job_id, "queued", started_at=None)

    def request_cancel(self, job_id: str) -> JobRecord:
        """Cancel a job.

        Queued jobs are cancelled immediately; running jobs get their
        ``cancel_requested`` flag set and the job worker stops them at the
        next checkpoint (between evaluations / cells).  Terminal jobs are
        returned unchanged.
        """
        job = self.get(job_id)
        if job.terminal:
            return job
        if job.state == "queued":
            return self._transition(job_id, "cancelled", finished_at=time.time())
        return self._transition(job_id, job.state, cancel_requested=1)

    def cancel_requested(self, job_id: str) -> bool:
        """Fast poll of the cancel flag (used between evaluations)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT cancel_requested FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return bool(row and row[0])

    def recover_interrupted(self) -> list[JobRecord]:
        """Re-queue every job a dead server left ``running`` (startup pass).

        The job's artifact directory still holds the per-cell checkpoints,
        so the re-run resumes from the last completed cell.
        """
        with self.changed:
            rows = self._connection.execute(
                "SELECT job_id FROM jobs WHERE state = 'running'"
            ).fetchall()
            for (job_id,) in rows:
                self._connection.execute(
                    "UPDATE jobs SET state = 'queued', started_at = NULL WHERE job_id = ?",
                    (job_id,),
                )
            self._connection.commit()
            if rows:
                self.changed.notify_all()
        return [self.get(job_id) for (job_id,) in rows]

    # ----------------------------------------------------- stage checkpoints
    def record_progress(
        self,
        job_id: str,
        total_cells: int | None = None,
        run_id: str | None = None,
        stage: dict | None = None,
    ) -> None:
        """Record per-stage checkpoint progress for one job.

        ``total_cells`` sets the grid size (once, at job start); ``run_id`` +
        ``stage`` upsert one cell's summary and bump ``completed_cells`` to
        the number of recorded stages.
        """
        with self.changed:
            if total_cells is not None:
                self._connection.execute(
                    "UPDATE jobs SET total_cells = ? WHERE job_id = ?",
                    (int(total_cells), job_id),
                )
            if run_id is not None:
                row = self._connection.execute(
                    "SELECT stages FROM jobs WHERE job_id = ?", (job_id,)
                ).fetchone()
                if row is None:
                    raise ServiceError(f"unknown job {job_id!r}")
                stages = json.loads(row[0])
                stages[run_id] = dict(stage or {})
                self._connection.execute(
                    "UPDATE jobs SET stages = ?, completed_cells = ? WHERE job_id = ?",
                    (json.dumps(stages), len(stages), job_id),
                )
            self._connection.commit()
            self.changed.notify_all()

    # -------------------------------------------------------- frontier log
    def append_frontier_event(self, job_id: str, run_id: str, payload: dict) -> int:
        """Append one frontier-change event; returns its sequence number."""
        with self.changed:
            row = self._connection.execute(
                "SELECT COALESCE(MAX(seq), 0) FROM frontier_events WHERE job_id = ?",
                (job_id,),
            ).fetchone()
            seq = int(row[0]) + 1
            self._connection.execute(
                "INSERT INTO frontier_events (job_id, seq, run_id, created_at, payload)"
                " VALUES (?, ?, ?, ?, ?)",
                (job_id, seq, run_id, time.time(), json.dumps(payload)),
            )
            self._connection.commit()
            self.changed.notify_all()
        return seq

    def frontier_events(
        self, job_id: str, since: int = 0, limit: int = 500
    ) -> list[FrontierEvent]:
        """Events with ``seq > since``, oldest first."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT job_id, seq, run_id, created_at, payload FROM frontier_events"
                " WHERE job_id = ? AND seq > ? ORDER BY seq ASC LIMIT ?",
                (job_id, int(since), int(limit)),
            ).fetchall()
        return [
            FrontierEvent(
                job_id=row[0],
                seq=row[1],
                run_id=row[2],
                created_at=row[3],
                payload=json.loads(row[4]),
            )
            for row in rows
        ]

    def drop_frontier_events(self, job_id: str, keep_run_ids: set[str]) -> int:
        """Delete events of cells about to re-run (crash-recovery hygiene).

        A cell that was mid-flight when the server died already streamed a
        partial event trail; its re-run will stream the full trail again with
        fresh sequence numbers.  Dropping the stale partial events keeps the
        log free of duplicates while events of completed (checkpointed) cells
        survive.
        """
        with self.changed:
            if keep_run_ids:
                placeholders = ", ".join("?" for _ in keep_run_ids)
                cursor = self._connection.execute(
                    f"DELETE FROM frontier_events WHERE job_id = ? "
                    f"AND run_id NOT IN ({placeholders})",
                    (job_id, *sorted(keep_run_ids)),
                )
            else:
                cursor = self._connection.execute(
                    "DELETE FROM frontier_events WHERE job_id = ?", (job_id,)
                )
            self._connection.commit()
            if cursor.rowcount:
                self.changed.notify_all()
        return cursor.rowcount

    def wait_for_events(
        self, job_id: str, since: int = 0, timeout: float = 30.0
    ) -> tuple[list[FrontierEvent], JobRecord]:
        """Long-poll helper: block until new events, a terminal state, or timeout.

        Returns the (possibly empty) events with ``seq > since`` and the
        job's current record.  Raises for unknown jobs.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            job = self.get(job_id)
            events = self.frontier_events(job_id, since=since)
            if events or job.terminal:
                return events, job
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return [], job
            with self.changed:
                self.changed.wait(remaining)
