"""Long-lived co-design job service (``ecad serve``).

Batch runs pay process start-up, dataset preparation and worker-pool spin-up
on every invocation; the service keeps all of that warm and exposes the
co-design search over a small JSON HTTP API — standard library only
(:mod:`http.server`, :mod:`sqlite3`, :mod:`urllib`), no new dependencies.

Layers, bottom to top:

* :mod:`~repro.service.jobs` — crash-safe SQLite job queue and frontier
  event log; per-stage checkpoints ride on the experiment layer's
  :class:`~repro.experiment.artifacts.RunArtifact` files, so a killed server
  resumes in-flight jobs bit-identically.
* :mod:`~repro.service.runtime` — warm singletons (shared execution
  backend, shared evaluation store, prepared-dataset cache) and the
  bounded-concurrency job scheduler.
* :mod:`~repro.service.http` / :mod:`~repro.service.app` — stdlib JSON
  HTTP machinery and the :class:`CoDesignService` that wires the API onto
  the queue and runtime.
* :mod:`~repro.service.client` — urllib client used by the ``ecad
  submit / jobs / result / cancel`` CLI verbs.
"""

from .app import CoDesignService
from .client import ServiceClient
from .jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    FrontierEvent,
    JobQueue,
    JobRecord,
    deterministic_result_digest,
)
from .runtime import ServiceRuntime, SharedBackend, normalize_job_spec

__all__ = [
    "CoDesignService",
    "ServiceClient",
    "JobQueue",
    "JobRecord",
    "FrontierEvent",
    "JOB_STATES",
    "TERMINAL_STATES",
    "deterministic_result_digest",
    "ServiceRuntime",
    "SharedBackend",
    "normalize_job_spec",
]
