"""Minimal JSON-over-HTTP machinery on the standard library only.

The service deliberately avoids web frameworks: a :class:`Router` maps
``(method, path pattern)`` pairs to handler callables, and
:class:`JSONRequestHandler` (a :class:`~http.server.BaseHTTPRequestHandler`)
parses the request into a :class:`Request` and writes the handler's return
value back as JSON.  Path patterns use ``{name}`` placeholders
(``/jobs/{job_id}/frontier``), which become entries of ``Request.params``.

Handlers return either a payload dict (status 200) or a ``(status, payload)``
pair, and raise :class:`ApiError` for structured error responses; anything
else escaping a handler becomes a 500 with the exception text.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlsplit

__all__ = ["ApiError", "Request", "Router", "JSONRequestHandler", "ServiceHTTPServer"]


class ApiError(Exception):
    """An error with a deliberate HTTP status (404 unknown job, 400 bad spec, ...)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)


class Request:
    """One parsed HTTP request, as seen by endpoint handlers.

    Attributes
    ----------
    method / path:
        Request line parts (query string stripped from ``path``).
    params:
        Values captured by the route pattern's ``{name}`` placeholders.
    query:
        Query-string parameters, first value per key.
    body:
        Parsed JSON request body (``{}`` when absent).
    """

    def __init__(
        self,
        method: str,
        path: str,
        params: dict[str, str],
        query: dict[str, str],
        body: dict,
    ) -> None:
        self.method = method
        self.path = path
        self.params = params
        self.query = query
        self.body = body

    def query_int(self, name: str, default: int = 0) -> int:
        """Integer query parameter, with a 400 on garbage."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise ApiError(400, f"query parameter {name!r} must be an integer, got {raw!r}") from exc

    def query_float(self, name: str, default: float = 0.0) -> float:
        """Float query parameter, with a 400 on garbage."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError as exc:
            raise ApiError(400, f"query parameter {name!r} must be a number, got {raw!r}") from exc


#: Handler signature: request -> payload dict, or (status, payload) pair.
Handler = Callable[[Request], "dict | tuple[int, dict]"]


class Router:
    """Registry of routes with ``{name}`` path placeholders."""

    _PLACEHOLDER = re.compile(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}")

    def __init__(self) -> None:
        self._routes: list[tuple[str, "re.Pattern[str]", Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        """Register one route, e.g. ``add("GET", "/jobs/{job_id}", fn)``."""
        regex = self._PLACEHOLDER.sub(r"(?P<\1>[^/]+)", pattern.rstrip("/") or "/")
        self._routes.append((method.upper(), re.compile(f"^{regex}$"), handler))

    def dispatch(self, request_method: str, path: str) -> tuple[Handler, dict[str, str]]:
        """Resolve a request to (handler, path params); raises ApiError 404/405."""
        path = path.rstrip("/") or "/"
        path_matched = False
        for method, regex, handler in self._routes:
            match = regex.match(path)
            if match is None:
                continue
            path_matched = True
            if method == request_method.upper():
                return handler, match.groupdict()
        if path_matched:
            raise ApiError(405, f"method {request_method} not allowed for {path}")
        raise ApiError(404, f"no route for {path}")


class JSONRequestHandler(BaseHTTPRequestHandler):
    """Parses requests, dispatches through the server's router, writes JSON."""

    protocol_version = "HTTP/1.1"
    #: Cap on accepted request bodies (a job spec is a few KB).
    max_body_bytes = 4 * 1024 * 1024

    # Route every verb through the same dispatcher.
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler naming
        self._handle()

    def do_POST(self) -> None:  # noqa: N802
        self._handle()

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle()

    def _handle(self) -> None:
        try:
            split = urlsplit(self.path)
            handler, params = self.server.router.dispatch(self.command, split.path)
            query = {key: values[0] for key, values in parse_qs(split.query).items()}
            body = self._read_body()
            outcome = handler(
                Request(self.command, split.path, params, query, body)
            )
            status, payload = outcome if isinstance(outcome, tuple) else (200, outcome)
        except ApiError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - handlers must not kill the server
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self._write_json(status, payload)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        if length > self.max_body_bytes:
            raise ApiError(413, f"request body exceeds {self.max_body_bytes} bytes")
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ApiError(400, "request body must be a JSON object")
        return data

    def _write_json(self, status: int, payload: dict) -> None:
        try:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away mid-poll
            self.close_connection = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        """Route access logs through the server's printer (silent by default)."""
        printer = getattr(self.server, "printer", None)
        if printer is not None:
            printer(f"[http] {self.address_string()} {format % args}")


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server carrying the router and an optional printer.

    Long-polling handlers block their connection thread, so the threading
    mixin is required; ``daemon_threads`` keeps a hung client from blocking
    shutdown.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], router: Router, printer=None) -> None:
        super().__init__(address, JSONRequestHandler)
        self.router = router
        self.printer = printer
        self._serve_thread: threading.Thread | None = None

    def serve_in_thread(self) -> threading.Thread:
        """Run ``serve_forever`` on a daemon thread (tests, embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True, name="ecad-serve")
        thread.start()
        self._serve_thread = thread
        return thread

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
