"""urllib-based client for the co-design service.

:class:`ServiceClient` is the programmatic face of the HTTP API and the
engine behind the ``ecad submit / jobs / result / cancel`` CLI verbs.  It
speaks plain JSON over :mod:`urllib.request` — the same no-new-dependencies
rule as the server — and converts HTTP error responses into
:class:`~repro.core.errors.ServiceError` with the server's message attached.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request

from ..core.errors import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talks to one ``ecad serve`` instance.

    Parameters
    ----------
    base_url:
        Server root, e.g. ``http://127.0.0.1:8282`` (a bare ``host:port``
        gets ``http://`` prepended).
    timeout:
        Socket timeout for plain requests; long-poll calls extend it by the
        poll window they ask the server for.
    """

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        if "://" not in base_url:
            base_url = f"http://{base_url}"
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------ transport
    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        query: dict | None = None,
        timeout: float | None = None,
    ) -> tuple[int, dict]:
        """One JSON round-trip; returns ``(status, payload)``.

        4xx/5xx responses with a JSON body are returned like successes (the
        status tells the caller what happened); transport-level failures
        (connection refused, timeouts, non-JSON bodies) raise
        :class:`ServiceError`.
        """
        url = f"{self.base_url}{path}"
        if query:
            url += "?" + urllib.parse.urlencode(query)
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout or self.timeout) as response:
                return response.status, self._decode(response)
        except urllib.error.HTTPError as error:
            with error:
                return error.code, self._decode(error)
        except (urllib.error.URLError, TimeoutError, OSError) as exc:
            raise ServiceError(f"cannot reach {self.base_url}: {exc}") from exc

    @staticmethod
    def _decode(response) -> dict:
        raw = response.read()
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"server returned a non-JSON response: {raw[:200]!r}") from exc

    def _expect(self, statuses: tuple[int, ...], status: int, payload: dict) -> dict:
        if status not in statuses:
            raise ServiceError(payload.get("error") or f"server answered HTTP {status}")
        return payload

    # ------------------------------------------------------------ endpoints
    def health(self) -> dict:
        """``GET /healthz``."""
        return self._expect((200,), *self.request("GET", "/healthz"))

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._expect((200,), *self.request("GET", "/metrics"))

    def submit(self, body: dict) -> dict:
        """``POST /jobs`` with a ``{"spec": ...}`` or ``{"run": ...}`` payload."""
        return self._expect((201,), *self.request("POST", "/jobs", body=body))

    def jobs(self, state: str | None = None, limit: int = 200) -> list[dict]:
        """``GET /jobs``, newest first."""
        query: dict = {"limit": limit}
        if state is not None:
            query["state"] = state
        payload = self._expect((200,), *self.request("GET", "/jobs", query=query))
        return payload["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/{id}``."""
        return self._expect((200,), *self.request("GET", f"/jobs/{job_id}"))

    def result(self, job_id: str) -> tuple[bool, dict]:
        """``GET /jobs/{id}/result``: ``(finished, payload)``.

        ``finished`` is False while the job is still queued or running (the
        payload then carries the live status instead of a result).
        """
        status, payload = self.request("GET", f"/jobs/{job_id}/result")
        self._expect((200, 202), status, payload)
        return status == 200, payload

    def cancel(self, job_id: str) -> dict:
        """``DELETE /jobs/{id}``."""
        return self._expect((200,), *self.request("DELETE", f"/jobs/{job_id}"))

    def frontier(self, job_id: str, since: int = 0, timeout: float = 30.0) -> dict:
        """``GET /jobs/{id}/frontier?since=N`` — one long-poll round."""
        status, payload = self.request(
            "GET",
            f"/jobs/{job_id}/frontier",
            query={"since": since, "timeout": timeout},
            timeout=self.timeout + timeout,
        )
        return self._expect((200,), status, payload)

    # ---------------------------------------------------------- convenience
    def wait(
        self,
        job_id: str,
        poll_seconds: float = 1.0,
        timeout: float | None = None,
        on_update=None,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns the result payload.

        Parameters
        ----------
        job_id:
            The job to wait for.
        poll_seconds:
            Delay between status polls.
        timeout:
            Overall deadline in seconds (``None`` waits indefinitely).
        on_update:
            Optional ``(job_dict) -> None`` called after every poll.

        Raises :class:`ServiceError` when the deadline passes first.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        while True:
            finished, payload = self.result(job_id)
            if on_update is not None:
                on_update(payload)
            if finished:
                return payload
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {payload.get('state', '?')} after {timeout:.0f}s"
                )
            time.sleep(poll_seconds)

    def stream_frontier(self, job_id: str, since: int = 0, poll_timeout: float = 30.0):
        """Yield frontier events until the job reaches a terminal state.

        A generator over event dicts (each carries ``seq``, ``run_id`` and
        the frontier payload); resumes from ``since`` so callers can pick up
        where a previous stream stopped.
        """
        while True:
            payload = self.frontier(job_id, since=since, timeout=poll_timeout)
            for event in payload["events"]:
                since = event["seq"]
                yield event
            if payload["terminal"] and not payload["events"]:
                return
