"""Warm state and job execution for the co-design service.

A batch ``ecad run`` pays process start-up, dataset preparation and worker-pool
spin-up on every invocation and throws the warm state away.
:class:`ServiceRuntime` keeps that state alive across jobs:

* **one execution backend** — a single warm thread/process pool shared by every
  job's master (wrapped in :class:`SharedBackend` so per-search shutdowns
  cannot tear it down);
* **one evaluation store** — a process-wide
  :class:`~repro.store.EvaluationStore` read through / written behind by all
  jobs, so work done for one tenant answers another's repeated candidates;
* **the prepared-dataset cache** — :mod:`repro.datasets.prepared` memoizes
  standardization per process, so consecutive jobs on the same dataset skip
  preparation entirely;
* **a bounded scheduler** — ``max_concurrent_jobs`` worker threads drain the
  :class:`~repro.service.jobs.JobQueue`, execute each job through
  :class:`~repro.experiment.runner.ExperimentRunner` (whose per-cell
  ``RunArtifact`` files are the crash-safe checkpoints), stream frontier
  updates into the queue's event log, and honour cancellation between
  evaluations.
"""

from __future__ import annotations

import threading
import time
from dataclasses import fields
from pathlib import Path
from typing import Callable

from ..core.callbacks import Callback
from ..core.errors import ConfigurationError, ServiceError
from ..core.frontier import FrontierArchive
from ..core.objectives import build_objective_vector
from ..experiment import ExperimentRunner, ExperimentSpec, StopExperiment
from ..workers.backends import ExecutionBackend, NonOwningBackend, resolve_backend
from .jobs import JobQueue, JobRecord, deterministic_result_digest

__all__ = ["SharedBackend", "ServiceRuntime", "normalize_job_spec"]


class SharedBackend(NonOwningBackend):
    """A non-owning view of an execution backend.

    Every master shuts down the backend it was given when its search ends;
    wrapping the service's warm pool in this proxy turns those per-search
    shutdowns into no-ops so the pool survives across jobs.  The runtime
    closes the real pool exactly once, at service stop.
    """

    def __init__(self, inner: ExecutionBackend) -> None:
        super().__init__(inner)
        self.name = getattr(inner, "name", "shared")


def normalize_job_spec(body: dict) -> tuple[dict, str]:
    """Turn a ``POST /jobs`` body into a validated ExperimentSpec dict.

    Three shapes are accepted:

    * ``{"spec": {...}}`` — a full experiment grid, verbatim;
    * ``{"run": {"dataset": ..., ...}}`` — single-search shorthand, normalized
      into a one-cell spec: ``objective`` and ``seed`` scalars become the
      grid axes, spec-level keys (``backend``, ``store_path``, ...) pass
      through, and anything else (``population_size``,
      ``optimization.max_latency_us``, ...) lands in the spec's dotted-key
      configuration ``overrides``;
    * ``{"scenario": {"pack": ..., "strategies": [...], "seeds": [...]}}`` —
      one arena scenario tournament, lowered through
      :meth:`~repro.scenarios.packs.ScenarioPack.to_spec` into the grid whose
      objective axis is the strategy-prefixed form; ``store_path``,
      ``warm_start``, ``eval_parallelism`` and ``run_parallelism`` pass
      through (the warm service pool replaces the backend either way).

    Returns ``(spec_dict, name)``.  Raises :class:`ServiceError` on malformed
    payloads so the HTTP layer can answer 400.
    """
    name = str(body.get("name", "") or "")
    spec_body = body.get("spec")
    run_body = body.get("run")
    scenario_body = body.get("scenario")
    provided = [shape for shape in (spec_body, run_body, scenario_body) if shape is not None]
    if len(provided) != 1:
        raise ServiceError("job payload needs exactly one of 'spec', 'run' or 'scenario'")
    if scenario_body is not None:
        if not isinstance(scenario_body, dict):
            raise ServiceError("'scenario' must be a JSON object")
        # Imported lazily: repro.scenarios imports the experiment machinery,
        # not the service, so the dependency stays one-way.
        from ..scenarios import get_scenario

        scenario = dict(scenario_body)
        pack_name = str(scenario.pop("pack", "") or "")
        if not pack_name:
            raise ServiceError("'scenario.pack' is required")
        strategies = tuple(str(s) for s in scenario.pop("strategies", ()) or ())
        if not strategies:
            from ..core.strategy import arena_strategies

            strategies = tuple(arena_strategies())
        seeds = tuple(int(s) for s in scenario.pop("seeds", (0,)) or (0,))
        passthrough = {
            key: scenario.pop(key)
            for key in ("store_path", "warm_start", "eval_parallelism", "run_parallelism")
            if key in scenario
        }
        if scenario:
            raise ServiceError(
                f"unknown scenario job key(s): {', '.join(sorted(map(repr, scenario)))}"
            )
        try:
            pack = get_scenario(pack_name)
            spec = pack.to_spec(
                strategies,
                seeds=seeds,
                name=name or f"arena-{pack.key}",
                store_path=str(passthrough.get("store_path", "")),
                warm_start=int(passthrough.get("warm_start", 0)),
                eval_parallelism=int(passthrough.get("eval_parallelism", 1)),
                run_parallelism=int(passthrough.get("run_parallelism", 1)),
            )
        except ConfigurationError as exc:
            raise ServiceError(f"invalid scenario job: {exc}") from exc
        return spec.to_dict(), name or spec.name
    if spec_body is None:
        if not isinstance(run_body, dict):
            raise ServiceError("'run' must be a JSON object")
        run = dict(run_body)
        dataset = str(run.pop("dataset", "") or "")
        if not dataset:
            raise ServiceError("'run.dataset' is required")
        run_name = run.pop("name", "") or name or f"run-{dataset}"
        objective = str(run.pop("objective", "codesign"))
        seed = int(run.pop("seed", 0))
        spec_keys = {spec_field.name for spec_field in fields(ExperimentSpec)}
        overrides = dict(run.pop("overrides", {}) or {})
        overrides.update(
            {key: run.pop(key) for key in list(run) if key not in spec_keys}
        )
        spec_body = {
            "name": run_name,
            "datasets": [dataset],
            "objectives": [objective],
            "seeds": [seed],
            **run,
        }
        if overrides:
            spec_body["overrides"] = overrides
    if not isinstance(spec_body, dict):
        raise ServiceError("'spec' must be a JSON object")
    try:
        spec = ExperimentSpec.from_dict(spec_body)
    except ConfigurationError as exc:
        raise ServiceError(f"invalid job spec: {exc}") from exc
    return spec.to_dict(), name or spec.name


class _FrontierPublisher(Callback):
    """Engine callback that streams frontier growth into the job queue.

    Maintains its own :class:`FrontierArchive` over the cell's configured
    objectives; every evaluation that changes the frontier is appended to the
    queue's event log, which ``GET /jobs/{id}/frontier?since=N`` long-polls.
    """

    def __init__(self, queue: JobQueue, job_id: str, run_id: str, config) -> None:
        self._queue = queue
        self._job_id = job_id
        self._run_id = run_id
        self._archive = FrontierArchive(
            objectives=config.optimization.to_fitness_objectives(),
            constraints=config.optimization.to_constraints(),
        )

    def on_evaluation(self, evaluation, fitness, step) -> None:
        vector = fitness.vector if fitness is not None else None
        if vector is not None and list(vector.names) != self._archive.objective_names:
            vector = None  # scored under different objectives (e.g. NSGA-II rank)
        if vector is None and not evaluation.failed:
            vector = build_objective_vector(
                evaluation, self._archive.objectives, self._archive.constraints
            )
        if not self._archive.observe(evaluation, step=step, vector=vector):
            return
        self._queue.append_frontier_event(
            self._job_id,
            self._run_id,
            {
                "step": int(step),
                "frontier_size": len(self._archive),
                "evaluations_seen": self._archive.evaluations_seen,
                "member": {**vector.as_dict(), **evaluation.summary()},
            },
        )


class _CancellationCheck(Callback):
    """Engine callback that stops a search when its job should stop."""

    def __init__(self, should_stop: Callable[[], bool], job_id: str) -> None:
        self._should_stop = should_stop
        self._job_id = job_id

    def on_evaluation(self, evaluation, fitness, step) -> None:
        if self._should_stop():
            raise StopExperiment(f"job {self._job_id} stopped at step {step}")


class ServiceRuntime:
    """Owns the warm singletons and drains the job queue.

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.ServiceConfig` the server was started
        with.
    queue:
        The durable job queue (shared with the HTTP layer).
    printer:
        Optional progress callable; ``None`` keeps the runtime silent.
    """

    def __init__(self, config, queue: JobQueue, printer=None) -> None:
        self.config = config
        self.queue = queue
        self._printer = printer
        self.started_at = time.time()
        self._stop_event = threading.Event()
        self._threads: list[threading.Thread] = []
        # Warm singletons: one pool, one store, shared by every job.
        self._pool = resolve_backend(config.backend, max_workers=config.eval_workers)
        self.backend = SharedBackend(self._pool)
        self.store = None
        if config.store_path:
            from ..store import EvaluationStore

            self.store = EvaluationStore(
                config.store_path, shards=getattr(config, "store_shards", 1)
            )
        # Cumulative counters aggregated from completed cell artifacts.
        self._metrics_lock = threading.Lock()
        self._counters = {
            "cells_completed": 0,
            "cells_failed": 0,
            "models_generated": 0,
            "models_evaluated": 0,
            "cache_hits": 0,
            "store_hits": 0,
            "store_misses": 0,
            "total_evaluation_seconds": 0.0,
            "busy_seconds": 0.0,
            "surrogate_screened": 0,
            "real_evals_saved": 0,
            "rung_evaluations": 0,
        }

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Recover interrupted jobs and start the scheduler threads."""
        recovered = self.queue.recover_interrupted()
        for job in recovered:
            self._log(f"[{job.job_id}] re-queued after unclean shutdown (resumes from checkpoint)")
        for index in range(self.config.max_concurrent_jobs):
            thread = threading.Thread(
                target=self._worker_loop, daemon=True, name=f"ecad-job-worker-{index}"
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful stop: running jobs re-queue at their next checkpoint."""
        self._stop_event.set()
        with self.queue.changed:
            self.queue.changed.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self._pool.shutdown()
        if self.store is not None:
            self.store.close()

    @property
    def stopping(self) -> bool:
        """Whether a stop has been requested."""
        return self._stop_event.is_set()

    # ------------------------------------------------------------ scheduler
    def _worker_loop(self) -> None:
        while not self._stop_event.is_set():
            job = self.queue.claim_next()
            if job is None:
                with self.queue.changed:
                    if self._stop_event.is_set():
                        return
                    self.queue.changed.wait(timeout=0.5)
                continue
            try:
                self._execute_job(job)
            except Exception as exc:  # noqa: BLE001 - a broken job must not kill the worker
                self.queue.mark_failed(job.job_id, f"{type(exc).__name__}: {exc}")
                self._log(f"[{job.job_id}] FAILED: {exc}")

    def job_output_dir(self, job_id: str) -> Path:
        """Artifact directory of one job."""
        return Path(self.config.data_dir) / "jobs" / job_id

    def _execute_job(self, job: JobRecord) -> None:
        """Run one claimed job end to end, streaming progress into the queue."""
        spec = ExperimentSpec.from_dict(job.spec)
        output_dir = Path(job.output_dir) if job.output_dir else self.job_output_dir(job.job_id)
        job_id = job.job_id

        def should_stop() -> bool:
            return self._stop_event.is_set() or self.queue.cancel_requested(job_id)

        def callback_factory(cell, config):
            return [
                _FrontierPublisher(self.queue, job_id, cell.run_id, config),
                _CancellationCheck(should_stop, job_id),
            ]

        def on_cell_complete(cell, artifact):
            self._record_cell(job_id, cell.run_id, artifact)

        runner = ExperimentRunner(
            spec,
            output_dir=output_dir,
            printer=self._printer,
            store=self.store,
            backend=self.backend,
            callback_factory=callback_factory,
            on_cell_complete=on_cell_complete,
            stop=should_stop,
        )
        # Crash-recovery hygiene: cells without a reusable checkpoint re-run
        # and re-stream their frontier trail, so drop their stale events and
        # surface the checkpointed cells as already-completed stages.
        completed_ids: set[str] = set()
        for cell in spec.cells():
            saved = runner.saved_artifact(cell)
            if saved is not None:
                completed_ids.add(cell.run_id)
        self.queue.drop_frontier_events(job_id, keep_run_ids=completed_ids)
        self.queue.record_progress(job_id, total_cells=spec.grid_size)
        for cell in spec.cells():
            if cell.run_id in completed_ids:
                saved = runner.saved_artifact(cell)
                self.queue.record_progress(
                    job_id, run_id=cell.run_id, stage=self._stage_summary(saved)
                )
        self._log(
            f"[{job_id}] running experiment {spec.name!r} "
            f"({spec.grid_size} cells, {len(completed_ids)} checkpointed)"
        )

        try:
            report = runner.run(resume=True)
        except StopExperiment:
            if self.queue.cancel_requested(job_id):
                self.queue.mark_cancelled(job_id)
                self._log(f"[{job_id}] cancelled")
            else:
                # Server shutdown: back to the queue; checkpoints make the
                # next attempt resume where this one stopped.
                self.queue.requeue(job_id)
                self._log(f"[{job_id}] re-queued (server stopping)")
            return

        report_data = report.to_dict()
        result = {
            "name": spec.name,
            "output_dir": str(output_dir),
            "grid_size": spec.grid_size,
            "completed_cells": len(report.completed),
            "failed_cells": len(report.failed),
            "result_digest": deterministic_result_digest(report_data),
            "report": report_data,
        }
        if report.failed:
            failed_ids = ", ".join(artifact.run_id for artifact in report.failed)
            self.queue.mark_failed(job_id, f"cell(s) failed: {failed_ids}", result=result)
            self._log(f"[{job_id}] finished with {len(report.failed)} failed cell(s)")
        else:
            self.queue.mark_done(job_id, result)
            self._log(f"[{job_id}] done ({len(report.completed)} cells)")

    # -------------------------------------------------------------- metrics
    @staticmethod
    def _stage_summary(artifact) -> dict:
        stage = {
            "status": artifact.status,
            "best_accuracy": artifact.best_accuracy,
            "wall_clock_seconds": artifact.wall_clock_seconds,
            "error": artifact.error,
        }
        statistics = artifact.statistics or {}
        # Surrogate-strategy cells surface their screen counters so
        # ``ecad jobs`` can show how much real work the screen avoided.
        if statistics.get("surrogate_screened"):
            stage["surrogate_screened"] = int(statistics["surrogate_screened"])
            stage["real_evals_saved"] = int(statistics.get("real_evals_saved", 0))
        return stage

    def _record_cell(self, job_id: str, run_id: str, artifact) -> None:
        self.queue.record_progress(job_id, run_id=run_id, stage=self._stage_summary(artifact))
        statistics = artifact.statistics or {}
        with self._metrics_lock:
            counters = self._counters
            if artifact.completed:
                counters["cells_completed"] += 1
            else:
                counters["cells_failed"] += 1
            counters["models_generated"] += int(statistics.get("models_generated", 0))
            counters["models_evaluated"] += int(statistics.get("models_evaluated", 0))
            counters["cache_hits"] += int(statistics.get("cache_hits", 0))
            counters["store_hits"] += int(statistics.get("store_hits", 0))
            counters["store_misses"] += int(statistics.get("store_misses", 0))
            counters["total_evaluation_seconds"] += float(
                statistics.get("total_evaluation_seconds", 0.0)
            )
            counters["busy_seconds"] += float(artifact.wall_clock_seconds)
            counters["surrogate_screened"] += int(statistics.get("surrogate_screened", 0))
            counters["real_evals_saved"] += int(statistics.get("real_evals_saved", 0))
            counters["rung_evaluations"] += int(statistics.get("rung_evaluations", 0))

    def metrics(self) -> dict:
        """The ``GET /metrics`` payload: queue depth, throughput, store health."""
        counts = self.queue.counts()
        with self._metrics_lock:
            counters = dict(self._counters)
        busy = counters.pop("busy_seconds")
        evaluations_per_second = (
            counters["models_evaluated"] / busy if busy > 1e-9 else 0.0
        )
        store_lookups = counters["store_hits"] + counters["store_misses"]
        return {
            "uptime_seconds": time.time() - self.started_at,
            "queue_depth": counts["queued"],
            "running_jobs": counts["running"],
            "jobs": counts,
            "evaluations_per_second": evaluations_per_second,
            "store_hit_rate": (
                counters["store_hits"] / store_lookups if store_lookups else 0.0
            ),
            "store_enabled": self.store is not None,
            "backend": self.backend.name,
            "eval_workers": self.config.eval_workers,
            "max_concurrent_jobs": self.config.max_concurrent_jobs,
            **counters,
        }

    def _log(self, message: str) -> None:
        if self._printer is not None:
            self._printer(message)
