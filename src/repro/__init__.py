"""repro — reproduction of "AutoML for Multilayer Perceptron and FPGA Co-design".

The package implements the ECAD (Evolutionary Cell Aided Design) flow from
Colangelo et al. (SOCC 2020): a steady-state evolutionary search over the
joint space of MLP architectures and FPGA systolic-array overlay
configurations, evaluated by simulation / hardware-database / physical
workers, with accuracy, throughput, latency and efficiency fitness functions
and Pareto-frontier analysis.

Subpackages
-----------
``repro.core``
    The evolutionary co-design engine (genomes, operators, fitness, Pareto,
    cache, engine, configuration files, high-level search front-end).
``repro.nn``
    From-scratch numpy MLP substrate (layers, training, k-fold evaluation).
``repro.datasets``
    Synthetic analogues of the paper's six datasets plus CSV I/O.
``repro.hardware``
    FPGA overlay and GPU performance models, synthesis and power estimation.
``repro.workers``
    Simulation / hardware-database / physical workers and the master process.
``repro.analysis``
    Frontier analysis, table formatting, figure data series.
``repro.experiment``
    Declarative experiment grids (spec, runner, artifacts) and the shared
    registry primitive behind the pluggable datasets/backends/devices/
    objectives/worker types.
``repro.scenarios``
    Named scenario packs and the strategy-vs-strategy tournament arena with
    its durable leaderboard.
"""

from . import analysis, core, datasets, experiment, hardware, nn, scenarios, workers
from .core.config import ECADConfig
from .core.genome import CoDesignGenome, CoDesignSearchSpace, HardwareGenome, MLPGenome
from .core.search import CoDesignSearch, RandomSearch, SearchResult
from .datasets.registry import available_datasets, load_dataset, register_dataset
from .experiment import (
    ExperimentReport,
    ExperimentRunner,
    ExperimentSpec,
    Registry,
    RunArtifact,
    resume_experiment,
)
from .hardware.device import fpga_device, gpu_device, register_fpga_device, register_gpu_device
from .nn.mlp import MLP, MLPSpec
from .scenarios import ArenaConfig, ArenaRunner, ScenarioPack, available_scenarios, register_scenario
from .workers.backends import register_backend

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "datasets",
    "experiment",
    "hardware",
    "nn",
    "scenarios",
    "workers",
    "ECADConfig",
    "CoDesignGenome",
    "CoDesignSearchSpace",
    "HardwareGenome",
    "MLPGenome",
    "CoDesignSearch",
    "RandomSearch",
    "SearchResult",
    "available_datasets",
    "load_dataset",
    "register_dataset",
    "Registry",
    "ExperimentSpec",
    "ExperimentRunner",
    "ExperimentReport",
    "RunArtifact",
    "resume_experiment",
    "fpga_device",
    "gpu_device",
    "register_fpga_device",
    "register_gpu_device",
    "register_backend",
    "ArenaConfig",
    "ArenaRunner",
    "ScenarioPack",
    "register_scenario",
    "available_scenarios",
    "MLP",
    "MLPSpec",
    "__version__",
]
