"""repro — reproduction of "AutoML for Multilayer Perceptron and FPGA Co-design".

The package implements the ECAD (Evolutionary Cell Aided Design) flow from
Colangelo et al. (SOCC 2020): a steady-state evolutionary search over the
joint space of MLP architectures and FPGA systolic-array overlay
configurations, evaluated by simulation / hardware-database / physical
workers, with accuracy, throughput, latency and efficiency fitness functions
and Pareto-frontier analysis.

Subpackages
-----------
``repro.core``
    The evolutionary co-design engine (genomes, operators, fitness, Pareto,
    cache, engine, configuration files, high-level search front-end).
``repro.nn``
    From-scratch numpy MLP substrate (layers, training, k-fold evaluation).
``repro.datasets``
    Synthetic analogues of the paper's six datasets plus CSV I/O.
``repro.hardware``
    FPGA overlay and GPU performance models, synthesis and power estimation.
``repro.workers``
    Simulation / hardware-database / physical workers and the master process.
``repro.analysis``
    Frontier analysis, table formatting, figure data series.
"""

from . import analysis, core, datasets, hardware, nn, workers
from .core.config import ECADConfig
from .core.genome import CoDesignGenome, CoDesignSearchSpace, HardwareGenome, MLPGenome
from .core.search import CoDesignSearch, RandomSearch, SearchResult
from .datasets.registry import available_datasets, load_dataset
from .hardware.device import fpga_device, gpu_device
from .nn.mlp import MLP, MLPSpec

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "datasets",
    "hardware",
    "nn",
    "workers",
    "ECADConfig",
    "CoDesignGenome",
    "CoDesignSearchSpace",
    "HardwareGenome",
    "MLPGenome",
    "CoDesignSearch",
    "RandomSearch",
    "SearchResult",
    "available_datasets",
    "load_dataset",
    "fpga_device",
    "gpu_device",
    "MLP",
    "MLPSpec",
    "__version__",
]
