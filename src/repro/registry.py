"""Shared registry primitive used across the package.

The paper frames ECAD as an *extensible* framework: "Simple evaluation
functions can be specified in the configuration file and more complex ones
are written in code and added by registering them with the framework"
(section III-A).  The seed code grew several ad-hoc registries for that idea
— datasets, fitness objectives, device catalogues, backend aliases — each
with its own dict, normalization rules and error messages.  :class:`Registry`
is the single primitive behind all of them: a named mapping with alias
support, ``register``/``available``/``resolve`` and decorator registration,
so plugins extend any axis of the system (datasets, execution backends,
FPGA/GPU devices, objectives, worker types) without touching library code.
"""

from __future__ import annotations

import difflib
from typing import Callable, Generic, Iterable, TypeVar

__all__ = ["Registry", "normalize_key"]

T = TypeVar("T")

_MISSING = object()


def normalize_key(name: str) -> str:
    """Normalize a registry key: lower-case, ``-``/spaces become ``_``."""
    return str(name).strip().lower().replace("-", "_").replace(" ", "_")


class Registry(Generic[T]):
    """A named mapping from string keys (plus aliases) to registered objects.

    Parameters
    ----------
    kind:
        Human-readable description of what is registered ("dataset",
        "execution backend", ...); used in error messages.
    allow_rebind:
        When True, re-registering the *same* canonical name updates it in
        place (the historical dataset-registry behaviour).  When False (the
        default) any duplicate key raises ``ValueError`` unless
        ``overwrite=True``, so typos cannot silently shadow built-ins.

    Keys are normalized (case-insensitive, ``-`` and spaces fold to ``_``) so
    configuration files can spell names naturally.  Unknown keys resolve to
    ``KeyError`` listing what is available.
    """

    def __init__(self, kind: str, allow_rebind: bool = False) -> None:
        self.kind = str(kind)
        self.allow_rebind = bool(allow_rebind)
        self._objects: dict[str, T] = {}
        #: alias key -> canonical (normalized) registration name
        self._canonical: dict[str, str] = {}
        #: canonical (normalized) name -> name as originally registered
        self._display: dict[str, str] = {}

    # ---------------------------------------------------------- registration
    def register(
        self,
        name: str,
        obj: T = _MISSING,  # type: ignore[assignment]
        *,
        aliases: Iterable[str] = (),
        overwrite: bool = False,
    ):
        """Register ``obj`` under ``name`` (and ``aliases``).

        Can also be used as a decorator when ``obj`` is omitted::

            @WORKER_TYPES.register("simulation")
            class SimulationWorker(Worker): ...
        """
        if obj is _MISSING:
            def decorator(target: T) -> T:
                self.register(name, target, aliases=aliases, overwrite=overwrite)
                return target

            return decorator

        canonical = normalize_key(name)
        if not canonical:
            raise ValueError(f"{self.kind} name must not be empty")
        keys = [canonical, *(normalize_key(alias) for alias in aliases)]
        if not overwrite:
            for key in keys:
                bound = self._canonical.get(key)
                if bound is None:
                    continue
                if bound != canonical or not self.allow_rebind:
                    raise ValueError(f"{self.kind} {key!r} is already registered")
        # Re-registering an entry must update *all* keys bound to it —
        # including aliases from earlier registrations that are not repeated
        # in this call — so name and alias never resolve different objects.
        for key, bound in self._canonical.items():
            if bound == canonical:
                self._objects[key] = obj
        for key in keys:
            if not key:
                raise ValueError(f"{self.kind} alias must not be empty")
            self._objects[key] = obj
            self._canonical[key] = canonical
        self._display[canonical] = str(name)
        return obj

    # --------------------------------------------------------------- lookup
    def _unknown(self, name: str) -> KeyError:
        """Build the unknown-name error, suggesting near-miss registrations.

        The suggestion is computed over every bound key (canonical names and
        aliases alike, after normalization) so ``"nsga II"`` points at
        ``nsga2`` and ``"thread-pool"`` at ``threads``; matches are reported
        by their canonical display name, closest first.
        """
        key = normalize_key(name)
        message = f"unknown {self.kind} {name!r}; available: {', '.join(self.available())}"
        matches = difflib.get_close_matches(key, sorted(self._canonical), n=3, cutoff=0.6)
        suggestions: list[str] = []
        for match in matches:
            display = self._display[self._canonical[match]]
            if display not in suggestions:
                suggestions.append(display)
        if suggestions:
            message += f" (did you mean {', '.join(suggestions)}?)"
        return KeyError(message)

    def resolve(self, name: str) -> T:
        """Return the object registered under ``name`` (or an alias of it)."""
        key = normalize_key(name)
        if key not in self._objects:
            raise self._unknown(name)
        return self._objects[key]

    def get(self, name: str, default: T | None = None) -> T | None:
        """Like :meth:`resolve` but returns ``default`` on a miss."""
        return self._objects.get(normalize_key(name), default)

    def canonical_name(self, name: str) -> str:
        """The canonical registration name behind ``name`` (alias-resolved)."""
        key = normalize_key(name)
        if key not in self._canonical:
            raise self._unknown(name)
        return self._canonical[key]

    def available(self) -> list[str]:
        """Sorted canonical names of everything registered (aliases excluded)."""
        return sorted(self._display.values(), key=normalize_key)

    def entries(self) -> dict[str, T]:
        """Canonical name -> registered object, for iteration/reporting."""
        return {
            self._display[canonical]: self._objects[canonical]
            for canonical in sorted(self._display)
        }

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and normalize_key(name) in self._objects

    def __len__(self) -> int:
        return len(self._display)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry(kind={self.kind!r}, entries={self.available()})"


#: Factory signature used by registries whose entries are built on demand.
Factory = Callable[..., T]
