"""Analysis and reporting utilities over search histories and results."""

from .figures import (
    BandwidthSweepPoint,
    ScatterSeries,
    accuracy_throughput_series,
    ascii_scatter,
    efficiency_series,
)
from .frontier import (
    AccuracyBand,
    accuracy_band_summary,
    accuracy_throughput_frontier,
    frontier_rows,
    throughput_neuron_correlation,
)
from .reporting import format_scientific, format_table, rows_to_csv, save_rows_csv

__all__ = [
    "BandwidthSweepPoint",
    "ScatterSeries",
    "accuracy_throughput_series",
    "ascii_scatter",
    "efficiency_series",
    "AccuracyBand",
    "accuracy_band_summary",
    "accuracy_throughput_frontier",
    "frontier_rows",
    "throughput_neuron_correlation",
    "format_scientific",
    "format_table",
    "rows_to_csv",
    "save_rows_csv",
]
