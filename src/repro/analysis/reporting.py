"""Text-table reporting of search results (the paper's tables in ASCII).

The benchmarks regenerate the paper's tables as lists of dictionaries; these
helpers format such rows into aligned plain-text tables so the harness output
is readable directly in a terminal or a log file, and export them as CSV for
further processing.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = [
    "format_table",
    "rows_to_csv",
    "save_rows_csv",
    "stream_rows_csv",
    "rows_to_json",
    "save_rows_json",
    "format_scientific",
]


def format_scientific(value: float, digits: int = 2) -> str:
    """Format a throughput-style number the way the paper does (e.g. ``2.45E6``)."""
    if value == 0:
        return "0"
    formatted = f"{value:.{digits}E}"
    mantissa, exponent = formatted.split("E")
    exponent_value = int(exponent)
    return f"{mantissa}E{exponent_value}"


def _stringify(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e4 or (0 < abs(value) < 1e-3):
            return format_scientific(value)
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render rows (dicts) as an aligned plain-text table.

    Parameters
    ----------
    rows:
        The table body; each row is a mapping from column name to value.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional title printed above the table.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(column) for column in columns]
    body = [[_stringify(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(header))
    ]
    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    lines.append(separator)
    for line in body:
        lines.append(" | ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Serialize rows to a CSV string."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({column: row.get(column, "") for column in columns})
    return buffer.getvalue()


def save_rows_csv(rows: Sequence[Mapping[str, object]], path: str | Path, columns: Sequence[str] | None = None) -> None:
    """Write rows to a CSV file, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rows_to_csv(rows, columns))


def rows_to_json(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Serialize rows to a JSON array string (column-filtered like the CSV).

    When ``columns`` is given each row is restricted to those keys in that
    order, so the JSON and CSV exports of the same table agree on shape.
    """
    if columns is not None:
        rows = [{column: row.get(column, "") for column in columns} for row in rows]
    else:
        rows = [dict(row) for row in rows]
    return json.dumps(rows, indent=2, sort_keys=False)


def save_rows_json(
    rows: Sequence[Mapping[str, object]], path: str | Path, columns: Sequence[str] | None = None
) -> None:
    """Write rows to a JSON file, creating parent directories as needed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(rows_to_json(rows, columns))


def stream_rows_csv(
    rows: Iterable[Mapping[str, object]],
    path: str | Path,
    columns: Sequence[str] | None = None,
) -> int:
    """Write an *iterable* of rows to CSV without materializing it.

    Column order defaults to the first row's keys (like
    :func:`rows_to_csv`).  Returns the number of rows written; an empty
    iterable writes nothing and returns 0.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    iterator = iter(rows)
    try:
        first = next(iterator)
    except StopIteration:
        return 0
    if columns is None:
        columns = list(first.keys())
    written = 0
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        writer.writerow({column: first.get(column, "") for column in columns})
        written = 1
        for row in iterator:
            writer.writerow({column: row.get(column, "") for column in columns})
            written += 1
    return written
