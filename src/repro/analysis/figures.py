"""Data-series generation for the paper's figures.

No plotting library is available offline, so "figures" are produced as
structured data series (lists of points / rows) plus an ASCII scatter renderer
for quick terminal inspection.  Every figure in the paper's evaluation section
has a corresponding builder here:

* Figure 2a/2b — accuracy vs outputs/s scatter for FPGA and GPU,
* Figure 3    — throughput and hardware efficiency vs DDR bank count,
* Figure 4    — hardware efficiency scatter for Stratix 10 vs Titan X.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.candidate import CandidateEvaluation

__all__ = [
    "ScatterSeries",
    "accuracy_throughput_series",
    "efficiency_series",
    "BandwidthSweepPoint",
    "ascii_scatter",
]


@dataclass
class ScatterSeries:
    """One named scatter series (x, y pairs)."""

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.name!r}: x has {len(self.x)} points but y has {len(self.y)}"
            )

    def __len__(self) -> int:
        return len(self.x)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.x.append(float(x))
        self.y.append(float(y))

    def y_range(self) -> tuple[float, float]:
        """(min, max) of the y values (nan, nan when empty)."""
        if not self.y:
            return float("nan"), float("nan")
        return min(self.y), max(self.y)


def accuracy_throughput_series(
    evaluations: list[CandidateEvaluation], device: str = "fpga", name: str | None = None
) -> ScatterSeries:
    """Figure 2 series: accuracy on x, outputs/s on y, one point per candidate."""
    if device not in ("fpga", "gpu"):
        raise ValueError(f"device must be 'fpga' or 'gpu', got {device!r}")
    series = ScatterSeries(name=name or f"{device}_accuracy_vs_throughput")
    for evaluation in evaluations:
        if evaluation.failed:
            continue
        throughput = (
            evaluation.fpga_outputs_per_second
            if device == "fpga"
            else evaluation.gpu_outputs_per_second
        )
        series.add(evaluation.accuracy, throughput)
    return series


def efficiency_series(
    evaluations: list[CandidateEvaluation], device: str = "fpga", name: str | None = None
) -> ScatterSeries:
    """Figure 4 series: accuracy on x, hardware efficiency on y."""
    if device not in ("fpga", "gpu"):
        raise ValueError(f"device must be 'fpga' or 'gpu', got {device!r}")
    series = ScatterSeries(name=name or f"{device}_efficiency")
    for evaluation in evaluations:
        if evaluation.failed:
            continue
        metrics = evaluation.fpga_metrics if device == "fpga" else evaluation.gpu_metrics
        if metrics is None:
            continue
        series.add(evaluation.accuracy, metrics.efficiency)
    return series


@dataclass(frozen=True)
class BandwidthSweepPoint:
    """One point of the Figure 3 sweep: a bank count with its results."""

    ddr_banks: int
    outputs_per_second: float
    efficiency: float
    effective_gflops: float

    def to_dict(self) -> dict:
        """Flat dictionary for table formatting."""
        return {
            "ddr_banks": self.ddr_banks,
            "outputs_per_second": self.outputs_per_second,
            "efficiency": self.efficiency,
            "effective_gflops": self.effective_gflops,
        }


def ascii_scatter(
    series: ScatterSeries,
    width: int = 60,
    height: int = 18,
    log_y: bool = False,
    marker: str = "*",
) -> str:
    """Render a scatter series as ASCII art (for terminal / log inspection)."""
    if len(series) == 0:
        return f"{series.name}: (no points)"
    if width < 10 or height < 5:
        raise ValueError("ascii_scatter needs width >= 10 and height >= 5")
    xs = np.asarray(series.x, dtype=float)
    ys = np.asarray(series.y, dtype=float)
    if log_y:
        positive = ys > 0
        if not positive.any():
            return f"{series.name}: (no positive y values for log scale)"
        xs, ys = xs[positive], np.log10(ys[positive])
    x_low, x_high = float(xs.min()), float(xs.max())
    y_low, y_high = float(ys.min()), float(ys.max())
    x_span = x_high - x_low or 1.0
    y_span = y_high - y_low or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = int((x - x_low) / x_span * (width - 1))
        row = height - 1 - int((y - y_low) / y_span * (height - 1))
        grid[row][column] = marker
    lines = [f"{series.name} (y {'log10 ' if log_y else ''}range [{y_low:.3g}, {y_high:.3g}])"]
    lines.extend("".join(row) for row in grid)
    lines.append(f"x range [{x_low:.4g}, {x_high:.4g}]")
    return "\n".join(lines)
