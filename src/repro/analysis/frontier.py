"""Frontier and trade-off analysis over search histories.

These helpers turn a :class:`~repro.core.callbacks.SearchHistory` (every
candidate the search evaluated) into the paper's evaluation artifacts:

* the accuracy-vs-throughput Pareto frontier and its representative rows
  (Table IV),
* the accuracy-band throughput statistics behind the Figure 2 discussion
  ("moving down accuracy just 0.1% results in a giant leap" for the FPGA,
  "hardly changes" for the GPU), and
* neuron-count vs throughput correlation, which the paper uses to argue that
  GPU throughput is insensitive to the neuron distribution while FPGA
  throughput is strongly shaped by it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.callbacks import SearchHistory
from ..core.candidate import CandidateEvaluation
from ..core.pareto import ParetoPoint, evaluation_frontier, top_tradeoff_points

__all__ = [
    "accuracy_throughput_frontier",
    "frontier_rows",
    "AccuracyBand",
    "accuracy_band_summary",
    "throughput_neuron_correlation",
]


def accuracy_throughput_frontier(
    evaluations: list[CandidateEvaluation], device: str = "fpga"
) -> list[CandidateEvaluation]:
    """Pareto frontier over (accuracy, outputs/s) for the chosen device.

    Delegates to :func:`repro.core.pareto.evaluation_frontier`, the single
    source of truth shared with ``SearchResult``.
    """
    return evaluation_frontier(evaluations, device=device)


def frontier_rows(
    evaluations: list[CandidateEvaluation], count: int = 2, device: str = "fpga"
) -> list[CandidateEvaluation]:
    """Representative rows of the frontier (best accuracy first), Table-IV style."""
    frontier = accuracy_throughput_frontier(evaluations, device=device)
    points = [
        ParetoPoint(
            values=(
                e.accuracy,
                e.fpga_outputs_per_second if device == "fpga" else e.gpu_outputs_per_second,
            ),
            payload=e,
        )
        for e in frontier
    ]
    return [point.payload for point in top_tradeoff_points(points, count=count, primary=0)]


@dataclass(frozen=True)
class AccuracyBand:
    """Throughput statistics of all candidates within one accuracy band."""

    accuracy_floor: float
    accuracy_ceiling: float
    count: int
    max_outputs_per_second: float
    min_outputs_per_second: float
    mean_outputs_per_second: float

    @property
    def throughput_spread(self) -> float:
        """Max/min throughput ratio inside the band (1.0 when degenerate)."""
        if self.min_outputs_per_second <= 0:
            return float("inf") if self.max_outputs_per_second > 0 else 1.0
        return self.max_outputs_per_second / self.min_outputs_per_second


def accuracy_band_summary(
    history: SearchHistory | list[CandidateEvaluation],
    band_width: float = 0.001,
    device: str = "fpga",
    top_bands: int = 5,
) -> list[AccuracyBand]:
    """Summarize throughput within successive accuracy bands below the best.

    This is the quantitative form of the paper's Figure 2 discussion: starting
    at the top accuracy, each band of width ``band_width`` below it is
    summarized by the throughput range achieved inside the band.
    """
    evaluations = history.evaluations() if isinstance(history, SearchHistory) else list(history)
    valid = [e for e in evaluations if not e.failed]
    if not valid:
        return []
    if band_width <= 0:
        raise ValueError(f"band_width must be positive, got {band_width}")

    def throughput(e: CandidateEvaluation) -> float:
        return e.fpga_outputs_per_second if device == "fpga" else e.gpu_outputs_per_second

    best_accuracy = max(e.accuracy for e in valid)
    bands: list[AccuracyBand] = []
    for index in range(top_bands):
        ceiling = best_accuracy - index * band_width
        floor = ceiling - band_width
        members = [e for e in valid if floor < e.accuracy <= ceiling]
        if not members:
            continue
        values = np.asarray([throughput(e) for e in members], dtype=float)
        bands.append(
            AccuracyBand(
                accuracy_floor=floor,
                accuracy_ceiling=ceiling,
                count=len(members),
                max_outputs_per_second=float(values.max()),
                min_outputs_per_second=float(values.min()),
                mean_outputs_per_second=float(values.mean()),
            )
        )
    return bands


def throughput_neuron_correlation(
    evaluations: list[CandidateEvaluation], device: str = "fpga"
) -> float:
    """Pearson correlation between total hidden neurons and outputs/s.

    The paper argues this correlation is essentially absent for the GPU and
    strong (negative) for the FPGA; the Figure 2 benchmark checks exactly
    that.  Returns ``nan`` when fewer than two valid points exist or when a
    variable is constant.
    """
    valid = [e for e in evaluations if not e.failed]
    if len(valid) < 2:
        return float("nan")
    neurons = np.asarray([e.genome.mlp.total_hidden_neurons for e in valid], dtype=float)
    throughput = np.asarray(
        [
            e.fpga_outputs_per_second if device == "fpga" else e.gpu_outputs_per_second
            for e in valid
        ],
        dtype=float,
    )
    if np.std(neurons) < 1e-12 or np.std(throughput) < 1e-12:
        return float("nan")
    return float(np.corrcoef(neurons, throughput)[0, 1])
