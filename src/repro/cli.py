"""Command-line interface: run an ECAD search from a configuration file.

Mirrors the paper's flow: point the tool at a dataset (a registered synthetic
dataset or a CSV export) plus an optional JSON configuration file, and it runs
the evolutionary co-design search, printing the best candidates, the Pareto
frontier and the run-time statistics.

Examples
--------
Run a small accuracy+throughput search on the Credit-g analogue::

    ecad run --dataset credit-g --max-evaluations 60 --scale 0.2

Run the same search asynchronously, 4 candidate evaluations in flight on a
thread pool::

    ecad run --dataset credit-g --backend threads --eval-workers 4

Generate a configuration template from a dataset and save it::

    ecad template --dataset har --output har_config.json

Run from a CSV export and a saved configuration::

    ecad run --csv mydata.csv --config my_config.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from .analysis.reporting import format_scientific, format_table
from .core.callbacks import ProgressLogger
from .core.config import ECADConfig, OptimizationTargetConfig
from .core.search import CoDesignSearch
from .datasets.csv_io import load_dataset_csv
from .datasets.registry import available_datasets, load_dataset

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``ecad`` command."""
    parser = argparse.ArgumentParser(
        prog="ecad",
        description="Evolutionary co-design of MLPs and FPGA overlay hardware (ECAD reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run a co-design search")
    _add_dataset_arguments(run_parser)
    run_parser.add_argument("--config", default="", help="path to a JSON ECAD configuration file")
    run_parser.add_argument("--population", type=int, default=16, help="population size")
    run_parser.add_argument("--max-evaluations", type=int, default=80, help="total candidate evaluations")
    run_parser.add_argument("--seed", type=int, default=0, help="search seed")
    run_parser.add_argument("--fpga", default="arria10", help="FPGA target (arria10, stratix10)")
    run_parser.add_argument("--gpu", default="titan_x", help="GPU baseline (titan_x, m5000, radeon_vii, or '' to disable)")
    run_parser.add_argument(
        "--objective",
        choices=("accuracy", "codesign"),
        default="codesign",
        help="accuracy-only search or joint accuracy+throughput co-design",
    )
    run_parser.add_argument("--epochs", type=int, default=10, help="training epochs per candidate")
    run_parser.add_argument(
        "--backend",
        choices=("serial", "threads", "processes"),
        default=None,
        help="execution backend for candidate evaluation (default: serial, or the config file's value)",
    )
    run_parser.add_argument(
        "--eval-workers",
        type=int,
        default=None,
        help="candidate evaluations kept in flight at once (default: 1 = reproducible serial search)",
    )
    run_parser.add_argument("--progress-every", type=int, default=10, help="progress print interval (steps)")
    run_parser.add_argument("--output", default="", help="optional path to write results as JSON")

    template_parser = subparsers.add_parser("template", help="generate a configuration template from a dataset")
    _add_dataset_arguments(template_parser)
    template_parser.add_argument("--output", required=True, help="path of the JSON configuration to write")
    template_parser.add_argument("--fpga", default="arria10", help="FPGA target")
    template_parser.add_argument("--gpu", default="titan_x", help="GPU baseline")

    subparsers.add_parser("datasets", help="list the registered datasets")
    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="", help=f"registered dataset name ({', '.join(available_datasets())})")
    parser.add_argument("--csv", default="", help="path to a CSV dataset export (last column = label)")
    parser.add_argument("--test-csv", default="", help="optional pre-split test partition CSV")
    parser.add_argument("--scale", type=float, default=0.1, help="sample-count scale for synthetic datasets")
    parser.add_argument("--data-seed", type=int, default=0, help="seed for synthetic dataset generation")


def _resolve_dataset(args: argparse.Namespace):
    if args.csv:
        return load_dataset_csv(args.csv, test_path=args.test_csv or None)
    if args.dataset:
        return load_dataset(args.dataset, seed=args.data_seed, scale=args.scale)
    raise SystemExit("error: provide either --dataset or --csv")


def _command_datasets() -> int:
    for name in available_datasets():
        print(name)
    return 0


def _command_template(args: argparse.Namespace) -> int:
    dataset = _resolve_dataset(args)
    config = ECADConfig.template_for_dataset(dataset, fpga=args.fpga, gpu=args.gpu)
    config.save(args.output)
    print(f"wrote configuration template for {dataset.name!r} to {args.output}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    dataset = _resolve_dataset(args)
    if args.config:
        config = ECADConfig.load(args.config)
    else:
        optimization = (
            OptimizationTargetConfig.accuracy_only()
            if args.objective == "accuracy"
            else OptimizationTargetConfig.accuracy_and_throughput()
        )
        config = ECADConfig.template_for_dataset(
            dataset,
            fpga=args.fpga,
            gpu=args.gpu,
            optimization=optimization,
            population_size=args.population,
            max_evaluations=args.max_evaluations,
            seed=args.seed,
            training_epochs=args.epochs,
        )
    # Explicit CLI flags win over whatever the configuration file says.
    overrides = {}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.eval_workers is not None:
        if args.eval_workers < 1:
            raise SystemExit(f"error: --eval-workers must be >= 1, got {args.eval_workers}")
        overrides["eval_parallelism"] = args.eval_workers
    if overrides:
        config = replace(config, **overrides)

    search = CoDesignSearch(
        dataset, config=config, callbacks=[ProgressLogger(interval=args.progress_every)]
    )
    result = search.run()

    best = result.best_accuracy_candidate
    print()
    print(f"dataset: {dataset.name}  ({dataset.num_samples} samples, "
          f"{dataset.num_features} features, {dataset.num_classes} classes)")
    print(f"best accuracy: {result.best_accuracy:.4f}")
    print(f"  hidden layers: {list(best.genome.mlp.hidden_layers)}")
    print(f"  activations:   {list(best.genome.mlp.activations)}")
    print(f"  grid:          {best.genome.hardware.grid}")
    print(f"  FPGA outputs/s: {format_scientific(best.fpga_outputs_per_second)}")
    print(f"  GPU outputs/s:  {format_scientific(best.gpu_outputs_per_second)}")
    print()

    rows = [
        {
            "accuracy": candidate.accuracy,
            "fpga_outputs_per_s": candidate.fpga_outputs_per_second,
            "gpu_outputs_per_s": candidate.gpu_outputs_per_second,
            "hidden_layers": "x".join(str(h) for h in candidate.genome.mlp.hidden_layers),
            "grid": str(candidate.genome.hardware.grid),
        }
        for candidate in result.pareto_rows(count=4)
    ]
    print(format_table(rows, title="Pareto frontier (best rows)"))
    print()
    stats = result.statistics.to_dict()
    print(format_table([stats], title="Run statistics"))

    if args.output:
        payload = {
            "dataset": dataset.name,
            "best_accuracy": result.best_accuracy,
            "best_candidate": best.summary(),
            "pareto_rows": [candidate.summary() for candidate in result.pareto_rows(count=4)],
            "statistics": stats,
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote results to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``ecad`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "datasets":
        return _command_datasets()
    if args.command == "template":
        return _command_template(args)
    if args.command == "run":
        return _command_run(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
