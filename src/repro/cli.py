"""Command-line interface to the ECAD reproduction.

Built around the unified experiment API: single searches (``run``),
Pareto-frontier searches (``frontier``), declarative grids with
checkpoint/resume (``sweep`` / ``resume``), and introspection of the open
registries (``datasets``, ``backends``, ``devices``).  Any configuration
field can be overridden from the command line with ``--set key=value``.

Examples
--------
Run a small accuracy+throughput search on the Credit-g analogue::

    ecad run --dataset credit-g --max-evaluations 60 --scale 0.2

Run the same search asynchronously, 4 candidate evaluations in flight on a
thread pool, with a generic config override::

    ecad run --dataset credit-g --backend threads --eval-workers 4 \
        --set nna.max_layers=3

Run a Pareto-native NSGA-II search under a DSP budget and print the
streamed frontier::

    ecad frontier --dataset credit-g --strategy nsga2 \
        --constraint "dsp_usage<=512"

Execute a whole experiment grid from a declarative spec, then resume it
after an interruption::

    ecad sweep --spec my_experiment.json --output-dir results/exp1
    ecad resume results/exp1

Remember evaluations across runs in a persistent store and warm-start the
next search from the best stored candidates::

    ecad run --dataset credit-g --store results/ecad.sqlite
    ecad run --dataset credit-g --store results/ecad.sqlite --warm-start 8
    ecad store stats --store results/ecad.sqlite
    ecad store export --store results/ecad.sqlite --output store.csv
    ecad store prune --store results/ecad.sqlite --keep-best 50

Run a long-lived co-design service and submit jobs to it::

    ecad serve --port 8282 --data-dir results/service
    ecad submit --server localhost:8282 --dataset credit-g --max-evaluations 60
    ecad jobs --server localhost:8282
    ecad result --server localhost:8282 JOB_ID --wait
    ecad cancel --server localhost:8282 JOB_ID

Run a strategy-vs-strategy tournament over the built-in scenario packs and
render the persistent leaderboard afterwards::

    ecad arena --output-dir results/arena
    ecad arena show --output-dir results/arena --csv leaderboard.csv
    ecad arena packs
    ecad arena --scenario edge-tiny-dsp --strategy nsga2 --strategy random \
        --set arena.seeds=[0,1] --dry-run

Inspect what is registered::

    ecad datasets
    ecad backends
    ecad devices
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace

from . import __version__
from .analysis.reporting import (
    format_scientific,
    format_table,
    save_rows_csv,
    stream_rows_csv,
)
from .core.callbacks import ProgressLogger
from .core.config import ECADConfig, OptimizationTargetConfig, ServiceConfig
from .core.errors import ConfigurationError, ServiceError, StoreError
from .core.pareto import knee_point, make_points
from .core.search import CoDesignSearch, close_active_searches
from .core.strategy import available_strategies
from .datasets.csv_io import load_dataset_csv
from .datasets.registry import available_datasets, dataset_entries, load_dataset
from .experiment import ExperimentRunner, ExperimentSpec, resume_experiment
from .hardware.device import FPGA_DEVICES, GPU_DEVICES
from .workers.backends import available_backends
from .workers.base import available_workers

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``ecad`` command."""
    parser = argparse.ArgumentParser(
        prog="ecad",
        description="Evolutionary co-design of MLPs and FPGA overlay hardware (ECAD reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run a single co-design search")
    _add_search_arguments(run_parser)
    run_parser.add_argument("--progress-every", type=int, default=10, help="progress print interval (steps)")
    run_parser.add_argument("--output", default="", help="optional path to write results as JSON")
    run_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the resolved search plan (strategy, objectives, store) without running",
    )

    frontier_parser = subparsers.add_parser(
        "frontier",
        help="run a Pareto-frontier search and print the streamed frontier",
    )
    _add_search_arguments(frontier_parser, default_strategy="nsga2")
    frontier_parser.add_argument(
        "--top", type=int, default=12, help="maximum number of frontier rows to print"
    )
    frontier_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the resolved search plan (strategy, objectives, constraints) without running",
    )
    frontier_parser.add_argument("--progress-every", type=int, default=10, help="progress print interval (steps)")
    frontier_parser.add_argument("--output", default="", help="optional path to write the frontier as JSON")

    template_parser = subparsers.add_parser("template", help="generate a configuration template from a dataset")
    _add_dataset_arguments(template_parser)
    template_parser.add_argument("--output", required=True, help="path of the JSON configuration to write")
    template_parser.add_argument("--fpga", default="arria10", help="FPGA target")
    template_parser.add_argument("--gpu", default="titan_x", help="GPU baseline")

    sweep_parser = subparsers.add_parser(
        "sweep", help="execute a declarative experiment grid from a spec file"
    )
    sweep_parser.add_argument("--spec", required=True, help="path to an ExperimentSpec JSON file")
    sweep_parser.add_argument(
        "--output-dir",
        default="",
        help="artifact directory (default: the spec's output_dir, or experiments/<name>)",
    )
    sweep_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the resume-aware run plan without executing anything",
    )
    sweep_parser.add_argument(
        "--no-resume",
        action="store_true",
        help="re-run every cell even when a completed artifact exists",
    )
    sweep_parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent evaluation store shared by every cell (overrides the "
        "spec's store_path)",
    )
    sweep_parser.add_argument(
        "--warm-start",
        type=int,
        default=None,
        metavar="N",
        help="seed each cell's population with up to N stored candidates "
        "(overrides the spec's warm_start)",
    )

    store_parser = subparsers.add_parser(
        "store", help="inspect and maintain a persistent evaluation store"
    )
    store_subparsers = store_parser.add_subparsers(dest="store_command", required=True)
    stats_parser = store_subparsers.add_parser(
        "stats", help="summarize the store: problems, rows, best accuracies, size"
    )
    stats_parser.add_argument("--store", required=True, metavar="PATH", help="store file")
    prune_parser = store_subparsers.add_parser(
        "prune", help="delete stored evaluations to keep the store small"
    )
    prune_parser.add_argument("--store", required=True, metavar="PATH", help="store file")
    prune_parser.add_argument(
        "--keep-best",
        type=int,
        default=None,
        metavar="N",
        help="keep only the N highest-accuracy rows per problem digest",
    )
    prune_parser.add_argument(
        "--older-than-days",
        type=float,
        default=None,
        metavar="D",
        help="delete rows written more than D days ago",
    )
    export_parser = store_subparsers.add_parser(
        "export", help="export every stored evaluation as a flat CSV"
    )
    export_parser.add_argument("--store", required=True, metavar="PATH", help="store file")
    export_parser.add_argument("--output", required=True, metavar="CSV", help="CSV path to write")
    rows_parser = store_subparsers.add_parser(
        "rows",
        help="list one problem's stored evaluations (the surrogate's training data)",
    )
    rows_parser.add_argument("--store", required=True, metavar="PATH", help="store file")
    rows_parser.add_argument(
        "--problem",
        required=True,
        metavar="DIGEST",
        help="problem digest (any unambiguous prefix, as printed by 'store stats')",
    )
    rows_parser.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="show at most N rows (accuracy-ordered; 0 = all)",
    )
    rows_parser.add_argument(
        "--output", default=None, metavar="CSV", help="also write every row to a CSV file"
    )
    migrate_parser = store_subparsers.add_parser(
        "migrate",
        help="copy a store into an N-shard layout (in place unless --output is given)",
    )
    migrate_parser.add_argument(
        "--store", required=True, metavar="PATH", help="store to migrate (file or sharded dir)"
    )
    migrate_parser.add_argument(
        "--shards",
        type=int,
        required=True,
        metavar="N",
        help="shard count of the new layout (rows are routed by problem-digest prefix)",
    )
    migrate_parser.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="write the sharded layout here instead of migrating in place",
    )
    migrate_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report the row counts and per-shard distribution without writing",
    )

    resume_parser = subparsers.add_parser(
        "resume", help="resume a checkpointed experiment from its output directory"
    )
    resume_parser.add_argument("output_dir", help="directory a previous 'ecad sweep' wrote")

    serve_parser = subparsers.add_parser(
        "serve", help="run the long-lived co-design job service (JSON HTTP API)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8282, help="bind port (0 = ephemeral)")
    serve_parser.add_argument(
        "--data-dir",
        default="ecad-service",
        help="service state directory (job queue, per-job artifacts)",
    )
    serve_parser.add_argument(
        "--queue",
        default="",
        metavar="PATH",
        help="job queue SQLite file (default: <data-dir>/queue.sqlite)",
    )
    serve_parser.add_argument(
        "--store",
        default="",
        metavar="PATH",
        help="shared persistent evaluation store used by every job",
    )
    serve_parser.add_argument(
        "--store-shards",
        type=int,
        default=1,
        metavar="N",
        help="shard the shared store over N SQLite files so concurrent jobs "
        "on different problems never contend on one writer lock",
    )
    serve_parser.add_argument(
        "--max-jobs", type=int, default=1, help="jobs executed concurrently"
    )
    serve_parser.add_argument(
        "--backend",
        default="threads",
        help=f"shared execution backend for candidate evaluation ({', '.join(available_backends())})",
    )
    serve_parser.add_argument(
        "--eval-workers", type=int, default=4, help="worker-pool size of the shared backend"
    )

    submit_parser = subparsers.add_parser(
        "submit", help="submit a co-design job to a running service"
    )
    _add_server_argument(submit_parser)
    submit_parser.add_argument(
        "--spec", default="", metavar="FILE", help="ExperimentSpec JSON file to submit as-is"
    )
    submit_parser.add_argument("--dataset", default="", help="registered dataset name (single-run shorthand)")
    submit_parser.add_argument(
        "--objective",
        default="codesign",
        help="objective spec for the single-run shorthand (e.g. accuracy, codesign, nsga2:codesign)",
    )
    submit_parser.add_argument("--seed", type=int, default=0, help="search seed")
    submit_parser.add_argument("--scale", type=float, default=None, help="sample-count scale for synthetic datasets")
    submit_parser.add_argument("--name", default="", help="job name (default: derived from the spec)")
    submit_parser.add_argument(
        "--set",
        action="append",
        dest="overrides",
        default=[],
        metavar="KEY=VALUE",
        help="configuration override by dotted key (repeatable, JSON values accepted)",
    )
    submit_parser.add_argument(
        "--wait", action="store_true", help="block until the job finishes and print its result"
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=None, help="give up after this many seconds with --wait"
    )

    jobs_parser = subparsers.add_parser("jobs", help="list jobs on a running service")
    _add_server_argument(jobs_parser)
    jobs_parser.add_argument("--state", default=None, help="filter by state (queued, running, done, failed, cancelled)")
    jobs_parser.add_argument("--limit", type=int, default=50, help="maximum rows to print")

    result_parser = subparsers.add_parser("result", help="fetch one job's status or final result")
    _add_server_argument(result_parser)
    result_parser.add_argument("job_id", help="job id returned by 'ecad submit'")
    result_parser.add_argument("--wait", action="store_true", help="block until the job reaches a terminal state")
    result_parser.add_argument("--timeout", type=float, default=None, help="give up after this many seconds with --wait")
    result_parser.add_argument("--output", default="", metavar="FILE", help="write the full result payload as JSON")

    cancel_parser = subparsers.add_parser("cancel", help="cancel a queued or running job")
    _add_server_argument(cancel_parser)
    cancel_parser.add_argument("job_id", help="job id returned by 'ecad submit'")

    arena_parser = subparsers.add_parser(
        "arena",
        help="strategy-vs-strategy tournaments over named scenario packs",
    )
    arena_parser.add_argument(
        "arena_action",
        nargs="?",
        choices=("run", "show", "packs"),
        default="run",
        help="run the tournament (default), show the stored leaderboard, "
        "or list the scenario catalog",
    )
    arena_parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        default=[],
        metavar="NAME",
        help="scenario pack to run (repeatable; default: every registered pack)",
    )
    arena_parser.add_argument(
        "--strategy",
        action="append",
        dest="strategies",
        default=[],
        metavar="NAME",
        help="competing strategy (repeatable; default: every arena-eligible strategy)",
    )
    arena_parser.add_argument(
        "--seed",
        action="append",
        dest="seeds",
        type=int,
        default=[],
        metavar="N",
        help="search seed (repeatable; default: 0)",
    )
    arena_parser.add_argument(
        "--output-dir",
        default="arena",
        help="tournament root directory (per-scenario checkpoints, store, leaderboard)",
    )
    arena_parser.add_argument(
        "--store",
        default="",
        metavar="PATH",
        help="shared evaluation store (default: <output-dir>/store.sqlite)",
    )
    arena_parser.add_argument(
        "--warm-start",
        type=int,
        default=0,
        metavar="N",
        help="seed each run's population with up to N stored candidates (0 disables)",
    )
    arena_parser.add_argument(
        "--backend",
        default="serial",
        help=f"shared execution backend ({', '.join(available_backends())})",
    )
    arena_parser.add_argument(
        "--eval-workers",
        type=int,
        default=1,
        metavar="N",
        help="in-flight candidate evaluations per search",
    )
    arena_parser.add_argument(
        "--run-parallelism",
        type=int,
        default=1,
        metavar="N",
        help="grid cells kept in flight per scenario (1 = sequential)",
    )
    arena_parser.add_argument(
        "--leaderboard",
        default="",
        metavar="PATH",
        help="leaderboard SQLite file (default: <output-dir>/leaderboard.sqlite)",
    )
    arena_parser.add_argument(
        "--set",
        action="append",
        dest="overrides",
        default=[],
        metavar="KEY=VALUE",
        help="arena config override ('arena.' prefix optional, JSON values "
        "accepted, e.g. --set arena.seeds=[0,1])",
    )
    arena_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the resume-aware tournament plan without executing anything",
    )
    arena_parser.add_argument(
        "--no-resume",
        action="store_true",
        help="re-run every cell even when a completed artifact exists",
    )
    arena_parser.add_argument(
        "--csv", default="", metavar="PATH", help="also export the leaderboard as CSV"
    )
    arena_parser.add_argument(
        "--json",
        dest="json_path",
        default="",
        metavar="PATH",
        help="also export the leaderboard as JSON",
    )

    subparsers.add_parser("datasets", help="list the registered datasets")
    subparsers.add_parser("backends", help="list the registered execution backends and worker types")
    subparsers.add_parser("devices", help="list the registered FPGA and GPU devices")
    return parser


def _add_server_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server",
        default="127.0.0.1:8282",
        metavar="HOST:PORT",
        help="address of a running 'ecad serve' instance",
    )


def _add_search_arguments(
    parser: argparse.ArgumentParser, default_strategy: str | None = None
) -> None:
    """Arguments shared by the single-search commands (``run``, ``frontier``)."""
    _add_dataset_arguments(parser)
    parser.add_argument("--config", default="", help="path to a JSON ECAD configuration file")
    parser.add_argument("--population", type=int, default=16, help="population size")
    parser.add_argument("--max-evaluations", type=int, default=80, help="total candidate evaluations")
    parser.add_argument("--seed", type=int, default=0, help="search seed")
    parser.add_argument("--fpga", default="arria10", help="FPGA target (see 'ecad devices')")
    parser.add_argument("--gpu", default="titan_x", help="GPU baseline (see 'ecad devices', or '' to disable)")
    parser.add_argument(
        "--objective",
        choices=("accuracy", "codesign"),
        default="codesign",
        help="accuracy-only search or joint accuracy+throughput co-design",
    )
    parser.add_argument("--epochs", type=int, default=10, help="training epochs per candidate")
    parser.add_argument(
        "--strategy",
        default=None,
        help=f"search strategy ({', '.join(available_strategies())}; "
        f"default: the config file's value, else {default_strategy or 'evolutionary'})",
    )
    # Applied only when neither --strategy nor a config file chooses one.
    parser.set_defaults(fallback_strategy=default_strategy or "")
    parser.add_argument(
        "--constraint",
        action="append",
        dest="constraints",
        default=[],
        metavar="EXPR",
        help="feasibility constraint on a registered objective, e.g. "
        "--constraint dsp_usage<=512 (repeatable; violating candidates are infeasible)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="execution backend for candidate evaluation (see 'ecad backends'; "
        "default: serial, or the config file's value)",
    )
    parser.add_argument(
        "--eval-workers",
        type=int,
        default=None,
        help="candidate evaluations kept in flight at once (default: 1 = reproducible serial search)",
    )
    parser.add_argument(
        "--eval-batch",
        type=int,
        default=None,
        help="offspring fused into one batched dispatch so workers can run "
        "fused GEMM training over whole candidate groups (default: 1)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent evaluation store file (SQLite); evaluations are served "
        "from it across runs and fresh results written back",
    )
    parser.add_argument(
        "--warm-start",
        type=int,
        default=None,
        metavar="N",
        help="seed the initial population with up to N of the best stored "
        "candidates for this problem (requires --store or a config store path)",
    )
    parser.add_argument(
        "--set",
        action="append",
        dest="overrides",
        default=[],
        metavar="KEY=VALUE",
        help="override any configuration field by dotted key "
        "(e.g. --set nna.max_layers=3 --set hardware.fpga=stratix10); "
        "applied last, JSON values accepted",
    )


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="", help=f"registered dataset name ({', '.join(available_datasets())})")
    parser.add_argument("--csv", default="", help="path to a CSV dataset export (last column = label)")
    parser.add_argument("--test-csv", default="", help="optional pre-split test partition CSV")
    parser.add_argument("--scale", type=float, default=0.1, help="sample-count scale for synthetic datasets")
    parser.add_argument("--data-seed", type=int, default=0, help="seed for synthetic dataset generation")


def _resolve_dataset(args: argparse.Namespace):
    if args.csv:
        return load_dataset_csv(args.csv, test_path=args.test_csv or None)
    if args.dataset:
        return load_dataset(args.dataset, seed=args.data_seed, scale=args.scale)
    raise SystemExit("error: provide either --dataset or --csv")


# ---------------------------------------------------------------- registries
def _command_datasets() -> int:
    rows = [
        {
            "name": entry.name,
            "protocol": entry.evaluation_protocol,
            "paper_best_any": entry.paper_top_accuracy_any,
            "paper_best_mlp": entry.paper_top_accuracy_mlp,
            "paper_ecad": entry.paper_ecad_accuracy,
        }
        for entry in dataset_entries()
    ]
    print(format_table(rows, title="Registered datasets (reference accuracies from Tables I/II)"))
    return 0


def _command_backends() -> int:
    print("execution backends: " + ", ".join(available_backends()))
    print("worker types:       " + ", ".join(available_workers()))
    print("search strategies:  " + ", ".join(available_strategies()))
    return 0


def _command_devices() -> int:
    fpga_rows = [
        {
            "name": name,
            "device": device.name,
            "dsp": device.dsp_count,
            "clock_mhz": device.clock_mhz,
            "ddr_banks": device.ddr_banks,
            "peak_gflops": device.peak_gflops,
        }
        for name, device in FPGA_DEVICES.entries().items()
    ]
    gpu_rows = [
        {
            "name": name,
            "device": device.name,
            "peak_tflops": device.peak_tflops,
            "bandwidth_gbps": device.memory_bandwidth_gbps,
            "sms": device.streaming_multiprocessors,
        }
        for name, device in GPU_DEVICES.entries().items()
    ]
    print(format_table(fpga_rows, title="Registered FPGA devices"))
    print()
    print(format_table(gpu_rows, title="Registered GPU devices"))
    return 0


# ------------------------------------------------------------------ template
def _command_template(args: argparse.Namespace) -> int:
    dataset = _resolve_dataset(args)
    config = ECADConfig.template_for_dataset(dataset, fpga=args.fpga, gpu=args.gpu)
    config.save(args.output)
    print(f"wrote configuration template for {dataset.name!r} to {args.output}")
    return 0


# ----------------------------------------------------------------------- run
def resolve_run_config(args: argparse.Namespace):
    """Build the (dataset, config) pair for ``ecad run``.

    Precedence, lowest to highest: configuration file (or generated
    template), explicit CLI flags (``--backend`` / ``--eval-workers``),
    generic ``--set key=value`` overrides.
    """
    dataset = _resolve_dataset(args)
    if args.config:
        config = ECADConfig.load(args.config)
    else:
        optimization = (
            OptimizationTargetConfig.accuracy_only()
            if args.objective == "accuracy"
            else OptimizationTargetConfig.accuracy_and_throughput()
        )
        config = ECADConfig.template_for_dataset(
            dataset,
            fpga=args.fpga,
            gpu=args.gpu,
            optimization=optimization,
            population_size=args.population,
            max_evaluations=args.max_evaluations,
            seed=args.seed,
            training_epochs=args.epochs,
        )
    # Explicit CLI flags win over whatever the configuration file says.
    overrides = {}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.eval_workers is not None:
        if args.eval_workers < 1:
            raise SystemExit(f"error: --eval-workers must be >= 1, got {args.eval_workers}")
        overrides["eval_parallelism"] = args.eval_workers
    if getattr(args, "eval_batch", None) is not None:
        if args.eval_batch < 1:
            raise SystemExit(f"error: --eval-batch must be >= 1, got {args.eval_batch}")
        overrides["eval_batch_size"] = args.eval_batch
    if getattr(args, "strategy", None):
        overrides["strategy"] = args.strategy
    elif not args.config and getattr(args, "fallback_strategy", ""):
        # No explicit flag and no config file: the command's own default
        # (e.g. nsga2 for `ecad frontier`) applies.
        overrides["strategy"] = args.fallback_strategy
    if getattr(args, "constraints", None):
        overrides["optimization"] = config.optimization.with_constraints(
            tuple(config.optimization.constraints) + tuple(args.constraints)
        )
    if getattr(args, "store", None) is not None or getattr(args, "warm_start", None) is not None:
        store = config.store
        if args.store is not None:
            store = replace(store, path=args.store)
        if args.warm_start is not None:
            store = replace(store, warm_start=args.warm_start)
        overrides["store"] = store
    if overrides:
        config = replace(config, **overrides)
    # Generic --set assignments are the most specific and win over both.
    if args.overrides:
        config = config.with_overrides(args.overrides)
    if config.store.warm_start > 0 and not config.store.active:
        raise SystemExit(
            "error: --warm-start needs a store to read from; "
            "pass --store PATH (or set store.path in the configuration)"
        )
    return dataset, config


def _print_search_plan(dataset, config) -> None:
    """The resolved plan both ``run --dry-run`` and ``frontier --dry-run`` print."""
    objectives = config.optimization.to_fitness_objectives()
    print(f"dataset:     {dataset.name}  ({dataset.num_samples} samples, "
          f"{dataset.num_features} features, {dataset.num_classes} classes)")
    print(f"strategy:    {config.strategy}")
    print("objectives:  " + ", ".join(
        f"{obj.name} ({'max' if obj.maximize else 'min'}, w={obj.weight:g})"
        for obj in objectives
    ))
    constraints = config.optimization.constraints
    print("constraints: " + (", ".join(constraints) if constraints else "(none)"))
    print(f"budget:      {config.max_evaluations} evaluations, "
          f"population {config.population_size}, seed {config.seed}")
    print(f"backend:     {config.backend} (eval_parallelism={config.eval_parallelism}, "
          f"eval_batch_size={config.eval_batch_size})")
    if config.store.active:
        mode = "readonly" if config.store.readonly else "read/write"
        layout = f", shards={config.store.shards}" if config.store.shards > 1 else ""
        print(f"store:       {config.store.path} ({mode}, "
              f"warm_start={config.store.warm_start}{layout})")
    else:
        print("store:       (disabled)")
    if config.strategy == "surrogate":
        surrogate = config.surrogate
        if surrogate.active:
            rungs = ",".join(str(e) for e in surrogate.rung_epochs) or "(none)"
            print(f"surrogate:   base={surrogate.base}, pool={surrogate.pool_size}, "
                  f"min_rows={surrogate.min_rows}, "
                  f"explore={surrogate.exploration_fraction:g}, "
                  f"confidence={surrogate.confidence:g}, rungs={rungs}")
        else:
            print("surrogate:   (disabled: runs the base strategy unchanged)")
    print("\ndry run: nothing executed")


def _command_run(args: argparse.Namespace) -> int:
    dataset, config = resolve_run_config(args)
    if args.dry_run:
        _print_search_plan(dataset, config)
        return 0
    search = CoDesignSearch(
        dataset, config=config, callbacks=[ProgressLogger(interval=args.progress_every)]
    )
    result = search.run()

    best = result.best_accuracy_candidate
    print()
    print(f"dataset: {dataset.name}  ({dataset.num_samples} samples, "
          f"{dataset.num_features} features, {dataset.num_classes} classes)")
    print(f"best accuracy: {result.best_accuracy:.4f}")
    print(f"  hidden layers: {list(best.genome.mlp.hidden_layers)}")
    print(f"  activations:   {list(best.genome.mlp.activations)}")
    print(f"  grid:          {best.genome.hardware.grid}")
    print(f"  FPGA outputs/s: {format_scientific(best.fpga_outputs_per_second)}")
    print(f"  GPU outputs/s:  {format_scientific(best.gpu_outputs_per_second)}")
    print()

    rows = [
        {
            "accuracy": candidate.accuracy,
            "fpga_outputs_per_s": candidate.fpga_outputs_per_second,
            "gpu_outputs_per_s": candidate.gpu_outputs_per_second,
            "hidden_layers": "x".join(str(h) for h in candidate.genome.mlp.hidden_layers),
            "grid": str(candidate.genome.hardware.grid),
        }
        for candidate in result.pareto_rows(count=4)
    ]
    print(format_table(rows, title="Pareto frontier (best rows)"))
    print()
    stats = result.statistics.to_dict()
    print(format_table([stats], title="Run statistics"))

    if args.output:
        payload = {
            "dataset": dataset.name,
            "best_accuracy": result.best_accuracy,
            "best_candidate": best.summary(),
            "pareto_rows": [candidate.summary() for candidate in result.pareto_rows(count=4)],
            "statistics": stats,
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote results to {args.output}")
    return 0


# ------------------------------------------------------------------ frontier
def _command_frontier(args: argparse.Namespace) -> int:
    dataset, config = resolve_run_config(args)
    objectives = config.optimization.to_fitness_objectives()
    if args.dry_run:
        _print_search_plan(dataset, config)
        return 0

    search = CoDesignSearch(
        dataset, config=config, callbacks=[ProgressLogger(interval=args.progress_every)]
    )
    result = search.run()
    archive = result.frontier_archive
    if archive is None or len(archive) == 0:
        print("the search streamed no feasible frontier points")
        return 1

    members = archive.members()
    columns = list(archive.objective_names) + ["hidden_layers", "grid", "fpga_batch"]
    rows = []
    for member in members[: max(args.top, 1)]:
        row = {name: value for name, value in member.vector.as_dict().items()}
        row["hidden_layers"] = "x".join(str(h) for h in member.evaluation.genome.mlp.hidden_layers)
        row["grid"] = str(member.evaluation.genome.hardware.grid)
        row["fpga_batch"] = member.evaluation.genome.hardware.batch_size
        rows.append(row)
    print()
    print(format_table(
        rows,
        columns=columns,
        title=f"Pareto frontier ({len(members)} points, strategy={config.strategy})",
    ))

    if len(members) >= 2:
        points = make_points(
            members, *(lambda m, i=i: m.vector.canonical[i] for i in range(len(objectives)))
        )
        knee = knee_point(points).payload
        knee_values = ", ".join(
            f"{name}={value:g}" for name, value in knee.vector.as_dict().items()
        )
        print(f"\nknee point (best balanced trade-off): {knee_values}")

    trace = " -> ".join(str(s.size) for s in archive.snapshots[-8:])
    print(f"frontier growth (last snapshots): {trace}")
    print()
    print(format_table([result.statistics.to_dict()], title="Run statistics"))

    if args.output:
        payload = {
            "dataset": dataset.name,
            "strategy": config.strategy,
            "objectives": archive.objective_names,
            "constraints": list(config.optimization.constraints),
            "frontier": archive.rows(),
            "snapshots": [
                {"step": s.step, "size": s.size, "evaluations_seen": s.evaluations_seen}
                for s in archive.snapshots
            ],
            "statistics": result.statistics.to_dict(),
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote frontier to {args.output}")
    return 0


# --------------------------------------------------------------------- store
def _command_store(args: argparse.Namespace) -> int:
    from .store import EvaluationStore

    if args.store_command == "stats":
        with EvaluationStore(args.store, readonly=True) as store:
            stats = store.stats()
            problems = store.problems()
        print(format_table([stats], title=f"Evaluation store {args.store}"))
        if problems:
            rows = [
                {
                    "problem": entry["problem_digest"][:12],
                    "evaluations": entry["evaluations"],
                    "best_accuracy": entry["best_accuracy"],
                    "stored_eval_seconds": entry["stored_eval_seconds"],
                }
                for entry in problems
            ]
            print()
            print(format_table(rows, title="Stored problems"))
        return 0
    if args.store_command == "prune":
        if args.keep_best is None and args.older_than_days is None:
            raise SystemExit("error: prune needs --keep-best and/or --older-than-days")
        older_than_seconds = (
            args.older_than_days * 86400.0 if args.older_than_days is not None else None
        )
        with EvaluationStore(args.store) as store:
            removed = store.prune(
                keep_best=args.keep_best, older_than_seconds=older_than_seconds
            )
            remaining = store.count()
        print(f"pruned {removed} stored evaluation(s), {remaining} left")
        return 0
    if args.store_command == "export":
        # Streamed row by row: a large (possibly sharded) store is never
        # materialized as one full-table list.
        with EvaluationStore(args.store, readonly=True) as store:
            exported = stream_rows_csv(store.export_rows_iter(), args.output)
        if not exported:
            print("the store holds no evaluations")
            return 1
        print(f"exported {exported} stored evaluation(s) to {args.output}")
        return 0
    if args.store_command == "rows":
        with EvaluationStore(args.store, readonly=True) as store:
            matches = [
                entry["problem_digest"]
                for entry in store.problems()
                if entry["problem_digest"].startswith(args.problem)
            ]
            if not matches:
                raise SystemExit(
                    f"error: no stored problem matches digest prefix {args.problem!r} "
                    "(see 'ecad store stats')"
                )
            if len(matches) > 1:
                raise SystemExit(
                    f"error: digest prefix {args.problem!r} is ambiguous: "
                    + ", ".join(digest[:12] for digest in matches)
                )
            rows = store.export_rows(problem_digest=matches[0])
        print(f"problem {matches[0]} holds {len(rows)} stored evaluation(s)")
        shown = rows if args.limit <= 0 else rows[: args.limit]
        table = [
            {
                "accuracy": row["accuracy"],
                "hidden_layers": "x".join(str(h) for h in row["hidden_layers"]),
                "grid": f"{row['grid']['rows']}x{row['grid']['columns']}"
                        f"v{row['grid']['vector_width']}",
                "fpga_outputs_per_s": row["fpga_outputs_per_second"],
                "train_seconds": row["train_seconds"],
                "error": (row.get("error") or "")[:30],
            }
            for row in shown
        ]
        if table:
            print()
            print(format_table(table, title=f"Top rows (showing {len(shown)} of {len(rows)})"))
        if args.output:
            flat = []
            for row in rows:
                record = dict(row)
                record["hidden_layers"] = "x".join(str(h) for h in record["hidden_layers"])
                record["activations"] = ",".join(record["activations"])
                for key, value in record.pop("grid", {}).items():
                    record[f"grid_{key}"] = value
                flat.append(record)
            save_rows_csv(flat, args.output, columns=list(flat[0].keys()))
            print(f"\nwrote {len(flat)} row(s) to {args.output}")
        return 0
    if args.store_command == "migrate":
        from .store import migrate_store

        report = migrate_store(
            args.store, shards=args.shards, output_path=args.output, dry_run=args.dry_run
        )
        distribution = " ".join(
            f"shard-{index:03d}:{count}"
            for index, count in enumerate(report["rows_per_shard"])
        )
        print(format_table(
            [{key: value for key, value in report.items() if key != "rows_per_shard"}],
            title="Store migration (planned)" if args.dry_run else "Store migration",
        ))
        print(f"\nrow distribution: {distribution}")
        if args.dry_run:
            print("\ndry run: nothing written")
        else:
            print(f"\nmigrated {report['rows']} row(s) into {report['shards']} shard(s) "
                  f"at {report['target']}")
            if "backup" in report:
                print(f"original store kept at {report['backup']}")
        return 0
    raise SystemExit(f"error: unknown store command {args.store_command!r}")


# --------------------------------------------------------------------- sweep
def _command_sweep(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.load(args.spec)
    if args.store is not None:
        spec = replace(spec, store_path=args.store)
    if args.warm_start is not None:
        spec = replace(spec, warm_start=args.warm_start)
    if spec.warm_start > 0 and not spec.store_path:
        raise SystemExit(
            "error: warm-start needs a store to read from; "
            "pass --store PATH (or set store_path in the spec)"
        )
    runner = ExperimentRunner(spec, output_dir=args.output_dir or None, printer=print)
    if args.dry_run:
        rows = runner.plan(resume=not args.no_resume)
        print(format_table(rows, title=f"Sweep plan for experiment {spec.name!r} "
                                       f"({spec.grid_size} cells)"))
        pending = sum(1 for row in rows if row["status"] == "pending")
        print(f"\n{pending} cell(s) to run, {len(rows) - pending} already completed "
              f"(artifacts in {runner.output_dir})")
        return 0
    report = runner.run(resume=not args.no_resume)
    print()
    print(report.summary_table())
    if report.failed:
        print(f"\n{len(report.failed)} cell(s) FAILED")
        return 1
    return 0


def _command_resume(args: argparse.Namespace) -> int:
    report = resume_experiment(args.output_dir, printer=print)
    print()
    print(report.summary_table())
    return 1 if report.failed else 0


# --------------------------------------------------------------------- arena
def _arena_config(args: argparse.Namespace):
    """Build the :class:`ArenaConfig` from CLI flags, then ``--set`` overrides."""
    from .scenarios import ArenaConfig

    config = ArenaConfig(
        scenarios=tuple(args.scenarios),
        strategies=tuple(args.strategies),
        seeds=tuple(args.seeds) or (0,),
        output_dir=args.output_dir,
        store_path=args.store,
        warm_start=args.warm_start,
        backend=args.backend,
        eval_parallelism=args.eval_workers,
        run_parallelism=args.run_parallelism,
        leaderboard_path=args.leaderboard,
    )
    if args.overrides:
        config = config.with_overrides(args.overrides)
    return config


def _print_leaderboard(rows: list[dict], args: argparse.Namespace, source: str) -> None:
    from .analysis.reporting import save_rows_json
    from .scenarios import LEADERBOARD_COLUMNS

    columns = list(LEADERBOARD_COLUMNS)
    if not rows:
        print(f"leaderboard at {source} is empty")
    else:
        print(format_table(rows, columns=columns, title=f"Arena leaderboard ({source})"))
    if args.csv:
        save_rows_csv(rows, args.csv, columns=columns)
        print(f"wrote {args.csv}")
    if args.json_path:
        save_rows_json(rows, args.json_path, columns=columns)
        print(f"wrote {args.json_path}")


def _command_arena(args: argparse.Namespace) -> int:
    import os

    from .scenarios import ArenaRunner, Leaderboard, available_scenarios, get_scenario

    if args.arena_action == "packs":
        rows = []
        for name in available_scenarios():
            pack = get_scenario(name)
            rows.append(
                {
                    "name": pack.name,
                    "datasets": ",".join(pack.datasets),
                    "objective": pack.objective,
                    "constraints": ",".join(pack.constraints) or "-",
                    "fpga": pack.fpga,
                    "gpu": pack.gpu,
                    "budget": f"{pack.max_evaluations} evals",
                    "description": pack.description,
                }
            )
        print(format_table(rows, title=f"Scenario packs ({len(rows)} registered)"))
        return 0

    config = _arena_config(args)
    if args.arena_action == "show":
        path = config.resolved_leaderboard_path
        if not os.path.exists(path):
            raise SystemExit(
                f"error: no leaderboard at {path}; run 'ecad arena' first "
                f"(or point --output-dir/--leaderboard at an existing tournament)"
            )
        with Leaderboard(path) as leaderboard:
            rows = leaderboard.rows()
        _print_leaderboard(rows, args, path)
        return 0

    runner = ArenaRunner(config, printer=print)
    if args.dry_run:
        rows = runner.plan(resume=not args.no_resume)
        scenario_count = len({row["scenario"] for row in rows})
        print(
            format_table(
                rows,
                columns=["scenario", "run_id", "dataset", "objective", "seed", "status"],
                title=f"Arena plan: {len(rows)} runs across {scenario_count} scenario(s)",
            )
        )
        pending = sum(1 for row in rows if row["status"] == "pending")
        print(f"\n{pending} run(s) to execute, {len(rows) - pending} already completed")
        print("dry run: nothing executed")
        return 0
    rows = runner.run(resume=not args.no_resume)
    print()
    _print_leaderboard(rows, args, config.resolved_leaderboard_path)
    failed = sum(1 for row in rows if row["status"] != "completed")
    if failed:
        print(f"\n{failed} leaderboard row(s) FAILED")
        return 1
    return 0


# ------------------------------------------------------------------- service
def _command_serve(args: argparse.Namespace) -> int:
    from .service import CoDesignService

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        queue_path=args.queue,
        store_path=args.store,
        store_shards=args.store_shards,
        max_concurrent_jobs=args.max_jobs,
        backend=args.backend,
        eval_workers=args.eval_workers,
    )
    service = CoDesignService(config, printer=print)
    service.start()
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("\ninterrupted: re-queueing running jobs and shutting down")
        service.stop()
        return 130
    service.stop()
    return 0


def _service_client(args: argparse.Namespace):
    from .service import ServiceClient

    return ServiceClient(args.server)


def _job_row(job: dict) -> dict:
    stages = (job.get("stages") or {}).values()
    screened = sum(int(stage.get("surrogate_screened", 0)) for stage in stages)
    saved = sum(int(stage.get("real_evals_saved", 0)) for stage in stages)
    return {
        "job_id": job["job_id"],
        "name": job["name"],
        "state": job["state"],
        "cells": f"{job['completed_cells']}/{job['total_cells']}" if job["total_cells"] else "-",
        "screened": f"{screened} (-{saved})" if screened else "-",
        "attempts": job["attempts"],
        "error": (job.get("error") or "")[:40],
    }


def _command_submit(args: argparse.Namespace) -> int:
    from .core.config import parse_override

    if bool(args.spec) == bool(args.dataset):
        raise SystemExit("error: provide either --spec FILE or --dataset NAME")
    if args.spec:
        with open(args.spec) as handle:
            body: dict = {"spec": json.load(handle)}
    else:
        run: dict = {"dataset": args.dataset, "objective": args.objective, "seed": args.seed}
        if args.scale is not None:
            run["scale"] = args.scale
        if args.overrides:
            run["overrides"] = dict(parse_override(item) for item in args.overrides)
        body = {"run": run}
    if args.name:
        body["name"] = args.name

    client = _service_client(args)
    job = client.submit(body)
    print(f"submitted job {job['job_id']} ({job['name']}) -> {job['state']}")
    if not args.wait:
        print(f"poll it with: ecad result --server {args.server} {job['job_id']}")
        return 0
    payload = client.wait(job["job_id"], timeout=args.timeout)
    return _print_result(payload)


def _command_jobs(args: argparse.Namespace) -> int:
    client = _service_client(args)
    jobs = client.jobs(state=args.state, limit=args.limit)
    if not jobs:
        print("no jobs" + (f" in state {args.state!r}" if args.state else ""))
        return 0
    print(format_table([_job_row(job) for job in jobs], title=f"Jobs on {client.base_url}"))
    return 0


def _print_result(payload: dict) -> int:
    state = payload.get("state", "?")
    print(f"job {payload.get('job_id')} ({payload.get('name')}): {state}")
    result = payload.get("result") or {}
    if result:
        print(f"  cells: {result.get('completed_cells')}/{result.get('grid_size')} completed, "
              f"{result.get('failed_cells')} failed")
        print(f"  result digest: {result.get('result_digest')}")
    if payload.get("error"):
        print(f"  error: {payload['error']}")
    return 0 if state == "done" else 1


def _command_result(args: argparse.Namespace) -> int:
    client = _service_client(args)
    if args.wait:
        payload = client.wait(args.job_id, timeout=args.timeout)
    else:
        finished, payload = client.result(args.job_id)
        if not finished:
            print(f"job {args.job_id}: {payload.get('state')} "
                  f"({payload.get('completed_cells')}/{payload.get('total_cells')} cells)")
            return 1
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote result payload to {args.output}")
    return _print_result(payload)


def _command_cancel(args: argparse.Namespace) -> int:
    client = _service_client(args)
    job = client.cancel(args.job_id)
    if job["state"] == "cancelled":
        print(f"job {args.job_id} cancelled")
    elif job.get("cancel_requested"):
        print(f"job {args.job_id} is {job['state']}; it will stop at the next checkpoint")
    else:
        print(f"job {args.job_id} already {job['state']}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``ecad`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "datasets":
            return _command_datasets()
        if args.command == "backends":
            return _command_backends()
        if args.command == "devices":
            return _command_devices()
        if args.command == "template":
            return _command_template(args)
        if args.command == "run":
            return _command_run(args)
        if args.command == "frontier":
            return _command_frontier(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "resume":
            return _command_resume(args)
        if args.command == "store":
            return _command_store(args)
        if args.command == "arena":
            return _command_arena(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "submit":
            return _command_submit(args)
        if args.command == "jobs":
            return _command_jobs(args)
        if args.command == "result":
            return _command_result(args)
        if args.command == "cancel":
            return _command_cancel(args)
    except (ConfigurationError, StoreError, ServiceError) as exc:
        raise SystemExit(f"error: {exc}") from exc
    except KeyboardInterrupt:
        # Close any in-flight search so its evaluation store flushes; cells
        # that already finished have their RunArtifact checkpoints on disk,
        # so `ecad resume` / `ecad sweep` pick up exactly where this stopped.
        closed = close_active_searches()
        note = f" ({closed} open search(es) closed, checkpoints flushed)" if closed else ""
        print(f"\ninterrupted{note}", file=sys.stderr)
        return 130
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
