"""Loss functions for MLP training.

Classification candidates produced by the ECAD search are trained with
softmax + categorical cross-entropy; the combined gradient of that pair is
computed analytically (``probabilities - one_hot_targets``) which is both faster
and numerically safer than chaining the softmax Jacobian.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Loss",
    "CategoricalCrossEntropy",
    "MeanSquaredError",
    "BinaryCrossEntropy",
    "get_loss",
    "available_losses",
]

#: Clamp applied to probabilities before taking logarithms.
_EPSILON = 1e-12


class Loss:
    """Base class for training losses.

    ``forward`` returns the mean loss over the batch; ``gradient`` returns the
    gradient of the mean loss with respect to the network output (for
    :class:`CategoricalCrossEntropy` the network output is interpreted as the
    *pre-softmax* logits, see the class docstring).
    """

    name: str = "loss"

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def _as_2d(array: np.ndarray) -> np.ndarray:
    array = np.asarray(array, dtype=float)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValueError(f"expected a 1-D or 2-D array, got shape {array.shape}")
    return array


def _check_shapes(predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    predictions = _as_2d(predictions)
    targets = _as_2d(targets)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"predictions shape {predictions.shape} does not match targets shape {targets.shape}"
        )
    return predictions, targets


class CategoricalCrossEntropy(Loss):
    """Softmax + categorical cross-entropy on one-hot targets.

    ``forward`` expects *probabilities* (post-softmax) and one-hot targets.
    ``gradient`` expects the same probabilities and returns
    ``(probabilities - targets) / batch_size`` — the analytic gradient of mean
    cross-entropy with respect to the pre-softmax logits, which is what the MLP
    backward pass consumes when its output activation is softmax.
    """

    name = "categorical_cross_entropy"

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = _check_shapes(predictions, targets)
        clipped = np.clip(predictions, _EPSILON, 1.0)
        per_sample = -np.sum(targets * np.log(clipped), axis=1)
        return float(np.mean(per_sample))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = _check_shapes(predictions, targets)
        batch = predictions.shape[0]
        return (predictions - targets) / batch


class BinaryCrossEntropy(Loss):
    """Element-wise binary cross-entropy on sigmoid outputs."""

    name = "binary_cross_entropy"

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = _check_shapes(predictions, targets)
        clipped = np.clip(predictions, _EPSILON, 1.0 - _EPSILON)
        per_element = -(targets * np.log(clipped) + (1.0 - targets) * np.log(1.0 - clipped))
        return float(np.mean(per_element))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = _check_shapes(predictions, targets)
        clipped = np.clip(predictions, _EPSILON, 1.0 - _EPSILON)
        grad = (clipped - targets) / (clipped * (1.0 - clipped))
        return grad / predictions.size


class MeanSquaredError(Loss):
    """Mean squared error, usable for regression-style outputs."""

    name = "mean_squared_error"

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = _check_shapes(predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = _check_shapes(predictions, targets)
        return 2.0 * (predictions - targets) / predictions.size


_REGISTRY: dict[str, type[Loss]] = {
    CategoricalCrossEntropy.name: CategoricalCrossEntropy,
    BinaryCrossEntropy.name: BinaryCrossEntropy,
    MeanSquaredError.name: MeanSquaredError,
}


def available_losses() -> list[str]:
    """Return the sorted names of all registered losses."""
    return sorted(_REGISTRY)


def get_loss(name: str | Loss) -> Loss:
    """Resolve a loss by name (or pass an instance through)."""
    if isinstance(name, Loss):
        return name
    key = str(name).strip().lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown loss {name!r}; available: {', '.join(available_losses())}")
    return _REGISTRY[key]()
