"""Classification metrics used during fitness evaluation.

The paper reports *accuracy* (Tables I and II); we additionally implement a few
standard companions (error rate, per-class precision/recall/F1, confusion
matrix, top-k accuracy) which the analysis and tests use to validate that the
training substrate behaves sensibly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "error_rate",
    "top_k_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "macro_f1",
]


def _to_labels(values: np.ndarray) -> np.ndarray:
    """Convert probabilities / one-hot / label arrays into integer labels."""
    values = np.asarray(values)
    if values.ndim == 2 and values.shape[1] > 1:
        return np.argmax(values, axis=1)
    return values.reshape(-1).astype(int)


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of samples whose predicted class matches the target class.

    Both arguments may be given as integer labels, one-hot matrices, or
    probability matrices; mixed forms are fine.
    """
    pred_labels = _to_labels(predictions)
    true_labels = _to_labels(targets)
    if pred_labels.shape != true_labels.shape:
        raise ValueError(
            f"predictions ({pred_labels.shape}) and targets ({true_labels.shape}) disagree in length"
        )
    if pred_labels.size == 0:
        raise ValueError("cannot compute accuracy of an empty prediction set")
    return float(np.mean(pred_labels == true_labels))


def error_rate(predictions: np.ndarray, targets: np.ndarray) -> float:
    """``1 - accuracy``."""
    return 1.0 - accuracy(predictions, targets)


def top_k_accuracy(probabilities: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true class is within the top ``k`` predictions."""
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.ndim != 2:
        raise ValueError("top_k_accuracy requires a 2-D probability matrix")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, probabilities.shape[1])
    true_labels = _to_labels(targets)
    top_k = np.argsort(-probabilities, axis=1)[:, :k]
    hits = np.any(top_k == true_labels.reshape(-1, 1), axis=1)
    return float(np.mean(hits))


def confusion_matrix(predictions: np.ndarray, targets: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """Return the ``num_classes x num_classes`` confusion matrix.

    Rows index the true class, columns the predicted class.
    """
    pred_labels = _to_labels(predictions)
    true_labels = _to_labels(targets)
    if num_classes is None:
        num_classes = int(max(pred_labels.max(initial=0), true_labels.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    for true, pred in zip(true_labels, pred_labels):
        matrix[int(true), int(pred)] += 1
    return matrix


def precision_recall_f1(predictions: np.ndarray, targets: np.ndarray, num_classes: int | None = None) -> dict[str, np.ndarray]:
    """Per-class precision, recall and F1 computed from the confusion matrix.

    Classes with no predicted (or no true) samples get a score of 0 for the
    affected metric rather than a division-by-zero warning.
    """
    matrix = confusion_matrix(predictions, targets, num_classes)
    true_positive = np.diag(matrix).astype(float)
    predicted_totals = matrix.sum(axis=0).astype(float)
    actual_totals = matrix.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted_totals > 0, true_positive / predicted_totals, 0.0)
        recall = np.where(actual_totals > 0, true_positive / actual_totals, 0.0)
        denominator = precision + recall
        f1 = np.where(denominator > 0, 2.0 * precision * recall / denominator, 0.0)
    return {"precision": precision, "recall": recall, "f1": f1}


def macro_f1(predictions: np.ndarray, targets: np.ndarray, num_classes: int | None = None) -> float:
    """Unweighted mean of per-class F1 scores."""
    scores = precision_recall_f1(predictions, targets, num_classes)
    return float(np.mean(scores["f1"]))
