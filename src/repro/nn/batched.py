"""Batched (population-level) MLP training on stacked 3-D tensors.

The evolutionary search evaluates whole populations, and same-topology
candidates run the exact same sequence of GEMMs — only their weights, shuffle
orders and early-stopping trajectories differ.  This module stacks a group of
same-spec models into ``(group, fan_in, fan_out)`` weight tensors and drives
one fused forward/backward per mini-batch with ``np.matmul`` broadcasting over
the group dimension, so BLAS sees one call per layer instead of one per
candidate.

Bit-compatibility contract
--------------------------
:class:`BatchedTrainer` reproduces :class:`repro.nn.training.Trainer`
*bit-for-bit* given the same per-candidate seeds:

* weight init comes from per-candidate :class:`~repro.nn.mlp.MLP`
  construction (the stacked tensors are copies of the scalar layers),
* each candidate owns its own ``np.random.default_rng(seed)`` whose
  consumption order (validation split first, then one permutation per active
  epoch) matches the scalar trainer exactly,
* batched ``matmul`` over a stacked, C-contiguous group dispatches to the
  same per-slice BLAS GEMM as the 2-D path, and every other op (bias add,
  activations, clipped-log loss, optimizer updates) is element-wise,
* early-stopped candidates are frozen out of the active set: they stop
  consuming RNG draws and optimizer updates at exactly the same epoch as the
  scalar loop, and all still-active candidates always share the same
  optimizer step count (they start together and process identical batch
  counts), so the group-global Adam bias correction equals the per-candidate
  one.

Only wall-clock fields (``TrainingHistory.wall_time_seconds``) differ from
the scalar path.
"""

from __future__ import annotations

import time

import numpy as np

from .activations import Softmax
from .losses import _EPSILON
from .metrics import accuracy
from .mlp import MLP, MLPSpec
from .preprocessing import one_hot
from .training import TrainingConfig, TrainingHistory

__all__ = ["StackedMLPGroup", "BatchedTrainer", "train_and_score_batch"]


# --------------------------------------------------------------- optimizers
class _BatchedOptimizer:
    """Group-stacked mirror of :class:`repro.nn.optimizers.Optimizer`.

    Parameters are the full ``(group, ...)`` stacks; gradients arrive for the
    active rows only and updates are scattered back onto those rows, leaving
    early-stopped candidates untouched — exactly as if their per-candidate
    optimizer had simply stopped being stepped.  ``rows`` may be a
    ``slice(None)`` when every run is still active, which turns the
    gather/scatter into in-place view arithmetic on the full stacks.
    """

    def __init__(self, learning_rate: float) -> None:
        self.learning_rate = float(learning_rate)
        self._step_count = 0

    def step(
        self,
        parameters: list[np.ndarray],
        gradients: list[np.ndarray],
        rows: np.ndarray | slice,
    ) -> None:
        self._step_count += 1
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            self._update(index, param, grad, rows)

    def _update(
        self, index: int, param: np.ndarray, grad: np.ndarray, rows: np.ndarray | slice
    ) -> None:
        raise NotImplementedError

    def _state(self, store: dict, index: int, param: np.ndarray) -> np.ndarray:
        state = store.get(index)
        if state is None or state.shape != param.shape:
            state = np.zeros_like(param)
            store[index] = state
        return state


class _BatchedSGD(_BatchedOptimizer):
    def _update(self, index: int, param: np.ndarray, grad: np.ndarray, rows: np.ndarray) -> None:
        param[rows] = param[rows] - self.learning_rate * grad


class _BatchedMomentumSGD(_BatchedOptimizer):
    def __init__(self, learning_rate: float, momentum: float = 0.9) -> None:
        super().__init__(learning_rate)
        self.momentum = float(momentum)
        self._velocities: dict[int, np.ndarray] = {}

    def _update(self, index: int, param: np.ndarray, grad: np.ndarray, rows: np.ndarray) -> None:
        store = self._state(self._velocities, index, param)
        velocity = self.momentum * store[rows] - self.learning_rate * grad
        store[rows] = velocity
        param[rows] = param[rows] + velocity


class _BatchedRMSProp(_BatchedOptimizer):
    def __init__(self, learning_rate: float, decay: float = 0.9, epsilon: float = 1e-8) -> None:
        super().__init__(learning_rate)
        self.decay = float(decay)
        self.epsilon = float(epsilon)
        self._mean_squares: dict[int, np.ndarray] = {}

    def _update(self, index: int, param: np.ndarray, grad: np.ndarray, rows: np.ndarray) -> None:
        store = self._state(self._mean_squares, index, param)
        mean_square = self.decay * store[rows] + (1.0 - self.decay) * grad * grad
        store[rows] = mean_square
        param[rows] = param[rows] - self.learning_rate * grad / (np.sqrt(mean_square) + self.epsilon)


class _BatchedAdam(_BatchedOptimizer):
    def __init__(
        self,
        learning_rate: float,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._first_moments: dict[int, np.ndarray] = {}
        self._second_moments: dict[int, np.ndarray] = {}

    def _update(
        self, index: int, param: np.ndarray, grad: np.ndarray, rows: np.ndarray | slice
    ) -> None:
        first_store = self._state(self._first_moments, index, param)
        second_store = self._state(self._second_moments, index, param)
        if isinstance(rows, slice):
            # Full-group fast path: update the moment stacks in place with the
            # same operation sequence (and therefore the same floats) as the
            # gather/scatter branch, skipping most temporaries.
            np.multiply(first_store, self.beta1, out=first_store)
            first_store += (1.0 - self.beta1) * grad
            np.multiply(second_store, self.beta2, out=second_store)
            second_store += (1.0 - self.beta2) * grad * grad
            first, second = first_store, second_store
        else:
            first = self.beta1 * first_store[rows] + (1.0 - self.beta1) * grad
            second = self.beta2 * second_store[rows] + (1.0 - self.beta2) * grad * grad
            first_store[rows] = first
            second_store[rows] = second
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        corrected_first = first / bias_correction1
        corrected_second = second / bias_correction2
        np.sqrt(corrected_second, out=corrected_second)
        corrected_second += self.epsilon
        np.multiply(corrected_first, self.learning_rate, out=corrected_first)
        corrected_first /= corrected_second
        param[rows] = param[rows] - corrected_first


_BATCHED_OPTIMIZERS: dict[str, type[_BatchedOptimizer]] = {
    "sgd": _BatchedSGD,
    "momentum": _BatchedMomentumSGD,
    "rmsprop": _BatchedRMSProp,
    "adam": _BatchedAdam,
}


def _build_batched_optimizer(name: str, learning_rate: float) -> _BatchedOptimizer:
    key = str(name).strip().lower()
    if key not in _BATCHED_OPTIMIZERS:
        raise ValueError(
            f"unknown optimizer {name!r}; batched training supports: "
            f"{', '.join(sorted(_BATCHED_OPTIMIZERS))}"
        )
    return _BATCHED_OPTIMIZERS[key](learning_rate=learning_rate)


# ------------------------------------------------------------- stacked model
class StackedMLPGroup:
    """A group of same-spec MLPs stacked along a leading group dimension.

    Weight tensors are ``(group, fan_in, fan_out)`` and biases ``(group,
    fan_out)``; initial values are copied from per-candidate
    :class:`~repro.nn.mlp.MLP` instances so they match the scalar path
    exactly.  Activation/loss instances are stateless and shared.
    """

    def __init__(self, spec: MLPSpec, seeds: list[int | None]) -> None:
        if not seeds:
            raise ValueError("a stacked group needs at least one member")
        self.spec = spec
        self.group_size = len(seeds)
        models = [MLP(spec, seed=seed) for seed in seeds]
        template = models[0]
        self.activations = [layer.activation for layer in template.layers]
        self.use_bias = spec.use_bias
        self.weights = [
            np.stack([model.layers[i].weights for model in models])
            for i in range(len(template.layers))
        ]
        self.biases = (
            [
                np.stack([model.layers[i].bias for model in models])
                for i in range(len(template.layers))
            ]
            if self.use_bias
            else None
        )
        # The softmax + cross-entropy analytic shortcut, as MLP.train_step.
        self.softmax_output = isinstance(self.activations[-1], Softmax)

    @property
    def num_layers(self) -> int:
        return len(self.activations)

    def parameters(self) -> list[np.ndarray]:
        """Stacked parameters in the scalar per-model order [W0, b0, W1, b1, ...]."""
        params: list[np.ndarray] = []
        for index in range(self.num_layers):
            params.append(self.weights[index])
            if self.use_bias:
                params.append(self.biases[index])
        return params

    # ------------------------------------------------------------- forward
    def forward(
        self,
        inputs: np.ndarray,
        rows: np.ndarray | slice | None = None,
        training: bool = False,
    ) -> tuple[np.ndarray, list[tuple[np.ndarray, np.ndarray]]]:
        """Fused forward pass over ``(rows, samples, features)`` inputs.

        ``inputs`` may also be a single 2-D ``(samples, features)`` matrix
        shared by every selected row — matmul broadcasting then evaluates each
        row's weights against the same data without materializing copies.
        Returns the output activations and, when ``training``, the per-layer
        ``(last_input, pre_activation)`` caches the backward pass needs.
        """
        caches: list[tuple[np.ndarray, np.ndarray]] = []
        outputs = inputs
        for index, activation in enumerate(self.activations):
            weights = self.weights[index] if rows is None else self.weights[index][rows]
            pre_activation = outputs @ weights
            if self.use_bias:
                bias = self.biases[index] if rows is None else self.biases[index][rows]
                pre_activation = pre_activation + bias[:, None, :]
            if training:
                caches.append((outputs, pre_activation))
            outputs = activation.forward(pre_activation)
        return outputs, caches

    def predict(self, inputs: np.ndarray, rows: np.ndarray | slice | None = None) -> np.ndarray:
        """Per-candidate predicted labels, shape ``(rows, samples)``."""
        outputs, _ = self.forward(inputs, rows=rows, training=False)
        return np.argmax(outputs, axis=-1)

    # ---------------------------------------------------------- train step
    def train_step(
        self, inputs: np.ndarray, targets: np.ndarray, rows: np.ndarray | slice
    ) -> tuple[list[float], list[np.ndarray]]:
        """One fused forward + backward over a mini-batch of every active run.

        Returns the per-run batch losses and the gradients (active rows only)
        in :meth:`parameters` order.  This mirrors ``MLP.train_step`` with the
        categorical cross-entropy loss: clipped-log loss on the probabilities
        and the analytic ``(p - t) / batch`` logit gradient when the output
        activation is softmax.
        """
        outputs, caches = self.forward(inputs, rows=rows, training=True)
        batch_rows = outputs.shape[1]
        clipped = np.clip(outputs, _EPSILON, 1.0)
        per_sample = -np.sum(targets * np.log(clipped), axis=2)
        losses = [float(np.mean(per_sample[i])) for i in range(per_sample.shape[0])]
        gradient = (outputs - targets) / batch_rows

        grad_weights: list[np.ndarray | None] = [None] * self.num_layers
        grad_biases: list[np.ndarray | None] = [None] * self.num_layers
        upstream = gradient
        for index in range(self.num_layers - 1, -1, -1):
            last_input, pre_activation = caches[index]
            is_output = index == self.num_layers - 1
            if is_output and self.softmax_output:
                delta = upstream
            else:
                delta = upstream * self.activations[index].derivative(pre_activation)
            grad_weights[index] = last_input.swapaxes(1, 2) @ delta
            if self.use_bias:
                grad_biases[index] = delta.sum(axis=1)
            weights = self.weights[index][rows]
            upstream = delta @ weights.swapaxes(1, 2)

        gradients: list[np.ndarray] = []
        for index in range(self.num_layers):
            gradients.append(grad_weights[index])
            if self.use_bias:
                gradients.append(grad_biases[index])
        return losses, gradients


# ------------------------------------------------------------------ trainer
class BatchedTrainer:
    """Trains a same-spec group of candidates with fused batched GEMMs.

    The public contract matches running :class:`~repro.nn.training.Trainer`
    once per candidate with that candidate's seed — see the module docstring
    for why the results are bit-identical.
    """

    def __init__(self, config: TrainingConfig | None = None) -> None:
        self.config = config or TrainingConfig()

    def fit(
        self,
        spec: MLPSpec,
        features_list: list[np.ndarray],
        labels_list: list[np.ndarray],
        seeds: list[int | None],
    ) -> tuple[StackedMLPGroup, list[TrainingHistory]]:
        """Train one stacked group; returns the group model and per-run histories.

        All runs must share the same (samples, features) shape — the batch
        evaluation layer groups runs by shape before calling this.
        """
        config = self.config
        if not (len(features_list) == len(labels_list) == len(seeds)):
            raise ValueError("features, labels and seeds must have equal lengths")
        group_size = len(seeds)
        if group_size == 0:
            raise ValueError("cannot train an empty group")

        # The pre-split hot path hands every run the *same* array objects
        # (one shared, preprocessed dataset); detect that before conversion so
        # the converted lists keep the sharing and the stacking below can use
        # zero-copy broadcast views instead of `group_size` copies.
        shared_inputs = all(x is features_list[0] for x in features_list) and all(
            y is labels_list[0] for y in labels_list
        )
        if shared_inputs:
            features_list = [np.asarray(features_list[0], dtype=float)] * group_size
            labels_list = [np.asarray(labels_list[0]).reshape(-1).astype(int)] * group_size
        else:
            features_list = [np.asarray(x, dtype=float) for x in features_list]
            labels_list = [np.asarray(y).reshape(-1).astype(int) for y in labels_list]
        first_shape = features_list[0].shape
        for features, labels in zip(features_list, labels_list):
            if features.ndim != 2:
                raise ValueError(f"expected a 2-D feature matrix, got shape {features.shape}")
            if features.shape != first_shape:
                raise ValueError(
                    f"all group members must share one feature shape; got {features.shape} "
                    f"and {first_shape}"
                )
            if features.shape[0] != labels.shape[0]:
                raise ValueError(
                    f"features ({features.shape[0]} rows) and labels ({labels.shape[0]}) disagree"
                )
            if features.shape[1] != spec.input_size:
                raise ValueError(
                    f"model expects {spec.input_size} features, data has {features.shape[1]}"
                )
            if labels.size and labels.max() >= spec.output_size:
                raise ValueError(
                    f"labels contain class {labels.max()} but model has {spec.output_size} outputs"
                )

        histories = [TrainingHistory() for _ in range(group_size)]
        start_time = time.perf_counter()

        # Per-candidate RNG streams, consumed in the scalar trainer's order:
        # one permutation for the validation split, then one per active epoch.
        rngs = [np.random.default_rng(seed) for seed in seeds]
        train_x, train_y, val_x, val_y = self._split_validation(
            features_list, labels_list, rngs
        )
        # When every run trains on the same array objects (the shared
        # pre-split path — a validation split would have produced per-run
        # gathers), broadcast stride-0 views replace the stacked copies and
        # the one-hot encoding is computed once.  Every downstream op sees
        # identical values, so results stay bit-identical.
        shared_train = all(x is train_x[0] for x in train_x) and all(
            y is train_y[0] for y in train_y
        )
        if shared_train:
            base_train_x = train_x[0]
            base_encoded = one_hot(train_y[0], spec.output_size)
            encoded_train_y = np.broadcast_to(
                base_encoded, (group_size, *base_encoded.shape)
            )
            stacked_train_x = np.broadcast_to(
                base_train_x, (group_size, *base_train_x.shape)
            )
            stacked_train_y = np.broadcast_to(train_y[0], (group_size, *train_y[0].shape))
        else:
            base_train_x = None
            base_encoded = None
            encoded_train_y = np.stack([one_hot(y, spec.output_size) for y in train_y])
            stacked_train_x = np.stack(train_x)
            stacked_train_y = np.stack(train_y)
        stacked_val_x = np.stack(val_x) if val_x is not None else None
        stacked_val_y = np.stack(val_y) if val_y is not None else None

        model = StackedMLPGroup(spec, seeds)
        optimizer = _build_batched_optimizer(config.optimizer, config.learning_rate)

        best_val_accuracy = np.full(group_size, -np.inf)
        epochs_without_improvement = np.zeros(group_size, dtype=int)
        num_samples = stacked_train_x.shape[1]
        active = list(range(group_size))

        for epoch in range(config.epochs):
            if not active:
                break
            rows = np.asarray(active)
            # With every run active, a full slice turns per-step weight
            # gathers and optimizer scatters into view arithmetic.
            row_sel: np.ndarray | slice = (
                slice(None) if len(active) == group_size else rows
            )
            if config.shuffle:
                orders = np.stack([rngs[g].permutation(num_samples) for g in active])
            else:
                orders = np.broadcast_to(
                    np.arange(num_samples), (len(active), num_samples)
                )
            epoch_losses: dict[int, list[float]] = {g: [] for g in active}
            for start in range(0, num_samples, config.batch_size):
                batch_idx = orders[:, start : start + config.batch_size]
                if base_train_x is not None:
                    # Shared data: a single-axis gather from the 2-D base
                    # yields the same (active, batch, features) tensor as the
                    # two-axis gather from the stacked copies.
                    batch_x = base_train_x[batch_idx]
                    batch_t = base_encoded[batch_idx]
                else:
                    batch_x = stacked_train_x[rows[:, None], batch_idx]
                    batch_t = encoded_train_y[rows[:, None], batch_idx]
                losses, gradients = model.train_step(batch_x, batch_t, row_sel)
                optimizer.step(model.parameters(), gradients, row_sel)
                for position, g in enumerate(active):
                    epoch_losses[g].append(losses[position])

            if base_train_x is not None:
                train_predictions = model.predict(base_train_x, row_sel)
            else:
                train_predictions = model.predict(stacked_train_x[row_sel], row_sel)
            for position, g in enumerate(active):
                losses_g = epoch_losses[g]
                histories[g].train_loss.append(
                    float(np.mean(losses_g)) if losses_g else float("nan")
                )
                histories[g].train_accuracy.append(
                    accuracy(train_predictions[position], stacked_train_y[g])
                )
                histories[g].epochs_run = epoch + 1

            if stacked_val_x is not None:
                val_predictions = model.predict(stacked_val_x[row_sel], row_sel)
                stopped: set[int] = set()
                for position, g in enumerate(active):
                    val_accuracy = accuracy(val_predictions[position], stacked_val_y[g])
                    histories[g].validation_accuracy.append(val_accuracy)
                    if val_accuracy > best_val_accuracy[g] + 1e-9:
                        best_val_accuracy[g] = val_accuracy
                        epochs_without_improvement[g] = 0
                    else:
                        epochs_without_improvement[g] += 1
                    if (
                        config.early_stopping_patience > 0
                        and epochs_without_improvement[g] >= config.early_stopping_patience
                    ):
                        histories[g].stopped_early = True
                        stopped.add(g)
                if stopped:
                    active = [g for g in active if g not in stopped]

        wall_time = time.perf_counter() - start_time
        for history in histories:
            history.wall_time_seconds = wall_time
        return model, histories

    def _split_validation(
        self,
        features_list: list[np.ndarray],
        labels_list: list[np.ndarray],
        rngs: list[np.random.Generator],
    ) -> tuple[
        list[np.ndarray], list[np.ndarray], list[np.ndarray] | None, list[np.ndarray] | None
    ]:
        """Per-run validation holdout, mirroring ``Trainer._split_validation``."""
        config = self.config
        if config.validation_fraction <= 0.0 or config.early_stopping_patience == 0:
            return features_list, labels_list, None, None
        num_samples = features_list[0].shape[0]
        val_count = int(round(config.validation_fraction * num_samples))
        if val_count < 1 or num_samples - val_count < 1:
            return features_list, labels_list, None, None
        train_x: list[np.ndarray] = []
        train_y: list[np.ndarray] = []
        val_x: list[np.ndarray] = []
        val_y: list[np.ndarray] = []
        for features, labels, rng in zip(features_list, labels_list, rngs):
            order = rng.permutation(num_samples)
            val_idx, train_idx = order[:val_count], order[val_count:]
            train_x.append(features[train_idx])
            train_y.append(labels[train_idx])
            val_x.append(features[val_idx])
            val_y.append(labels[val_idx])
        return train_x, train_y, val_x, val_y


def train_and_score_batch(
    spec: MLPSpec,
    train_features: list[np.ndarray],
    train_labels: list[np.ndarray],
    test_features: list[np.ndarray],
    test_labels: list[np.ndarray],
    training_config: TrainingConfig | None = None,
    seeds: list[int | None] | None = None,
) -> list[tuple[float, TrainingHistory]]:
    """Train a same-spec, same-shape group and score each run on its test split.

    The batched mirror of ``repro.nn.evaluation._train_and_score`` (minus
    standardization, which the caller applies per run): returns one
    ``(test accuracy, history)`` pair per run, in input order, bit-identical
    to looping the scalar path with the same seeds.
    """
    if seeds is None:
        seeds = [None] * len(train_features)
    trainer = BatchedTrainer(training_config or TrainingConfig())
    model, histories = trainer.fit(spec, train_features, train_labels, seeds)
    if all(x is test_features[0] for x in test_features):
        # Shared test split: broadcast one 2-D matrix through every model.
        predictions = model.predict(np.asarray(test_features[0], dtype=float))
    else:
        stacked_test_x = np.stack([np.asarray(x, dtype=float) for x in test_features])
        predictions = model.predict(stacked_test_x)
    scores = [
        accuracy(predictions[i], np.asarray(test_labels[i]).reshape(-1))
        for i in range(len(test_features))
    ]
    return list(zip(scores, histories))
