"""Gradient-descent optimizers for MLP training.

The paper's training loop (TensorFlow) would have used Adam by default; we
implement SGD, SGD with momentum, RMSProp and Adam so the training substrate
can be configured per experiment.  Optimizers keep their own per-parameter
state keyed by the parameter's position in the model, so the same optimizer
instance must not be shared across models.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Optimizer",
    "SGD",
    "MomentumSGD",
    "RMSProp",
    "Adam",
    "get_optimizer",
    "available_optimizers",
]


class Optimizer:
    """Base class: applies parameter updates in place given gradients."""

    name: str = "optimizer"

    def __init__(self, learning_rate: float = 0.01) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self._step_count = 0

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        """Update ``parameters`` in place using ``gradients``."""
        if len(parameters) != len(gradients):
            raise ValueError(
                f"got {len(parameters)} parameters but {len(gradients)} gradients"
            )
        self._step_count += 1
        for index, (param, grad) in enumerate(zip(parameters, gradients)):
            if param.shape != grad.shape:
                raise ValueError(
                    f"parameter {index} shape {param.shape} does not match gradient shape {grad.shape}"
                )
            self._update(index, param, grad)

    def _update(self, index: int, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError

    @property
    def step_count(self) -> int:
        """Number of times :meth:`step` has been called."""
        return self._step_count

    def reset(self) -> None:
        """Forget all accumulated state (moments, velocities, step count)."""
        self._step_count = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(learning_rate={self.learning_rate})"


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    name = "sgd"

    def _update(self, index: int, param: np.ndarray, grad: np.ndarray) -> None:
        param -= self.learning_rate * grad


class MomentumSGD(Optimizer):
    """SGD with classical momentum."""

    name = "momentum"

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self._velocities: dict[int, np.ndarray] = {}

    def _update(self, index: int, param: np.ndarray, grad: np.ndarray) -> None:
        velocity = self._velocities.get(index)
        if velocity is None or velocity.shape != param.shape:
            velocity = np.zeros_like(param)
        velocity = self.momentum * velocity - self.learning_rate * grad
        self._velocities[index] = velocity
        param += velocity

    def reset(self) -> None:
        super().reset()
        self._velocities.clear()


class RMSProp(Optimizer):
    """RMSProp: per-parameter learning rates from a moving average of squares."""

    name = "rmsprop"

    def __init__(self, learning_rate: float = 0.001, decay: float = 0.9, epsilon: float = 1e-8) -> None:
        super().__init__(learning_rate)
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.decay = float(decay)
        self.epsilon = float(epsilon)
        self._mean_squares: dict[int, np.ndarray] = {}

    def _update(self, index: int, param: np.ndarray, grad: np.ndarray) -> None:
        mean_square = self._mean_squares.get(index)
        if mean_square is None or mean_square.shape != param.shape:
            mean_square = np.zeros_like(param)
        mean_square = self.decay * mean_square + (1.0 - self.decay) * grad * grad
        self._mean_squares[index] = mean_square
        param -= self.learning_rate * grad / (np.sqrt(mean_square) + self.epsilon)

    def reset(self) -> None:
        super().reset()
        self._mean_squares.clear()


class Adam(Optimizer):
    """Adam optimizer with bias-corrected first and second moments."""

    name = "adam"

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0:
            raise ValueError(f"beta1 must be in [0, 1), got {beta1}")
        if not 0.0 <= beta2 < 1.0:
            raise ValueError(f"beta2 must be in [0, 1), got {beta2}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._first_moments: dict[int, np.ndarray] = {}
        self._second_moments: dict[int, np.ndarray] = {}

    def _update(self, index: int, param: np.ndarray, grad: np.ndarray) -> None:
        first = self._first_moments.get(index)
        second = self._second_moments.get(index)
        if first is None or first.shape != param.shape:
            first = np.zeros_like(param)
        if second is None or second.shape != param.shape:
            second = np.zeros_like(param)
        first = self.beta1 * first + (1.0 - self.beta1) * grad
        second = self.beta2 * second + (1.0 - self.beta2) * grad * grad
        self._first_moments[index] = first
        self._second_moments[index] = second
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        corrected_first = first / bias_correction1
        corrected_second = second / bias_correction2
        param -= self.learning_rate * corrected_first / (np.sqrt(corrected_second) + self.epsilon)

    def reset(self) -> None:
        super().reset()
        self._first_moments.clear()
        self._second_moments.clear()


_REGISTRY: dict[str, type[Optimizer]] = {
    SGD.name: SGD,
    MomentumSGD.name: MomentumSGD,
    RMSProp.name: RMSProp,
    Adam.name: Adam,
}


def available_optimizers() -> list[str]:
    """Return the sorted names of all registered optimizers."""
    return sorted(_REGISTRY)


def get_optimizer(name: str | Optimizer, **kwargs) -> Optimizer:
    """Resolve an optimizer by name, forwarding keyword arguments.

    Passing an :class:`Optimizer` instance returns it unchanged (keyword
    arguments are then rejected to avoid silently ignoring them).
    """
    if isinstance(name, Optimizer):
        if kwargs:
            raise ValueError("cannot pass keyword arguments together with an optimizer instance")
        return name
    key = str(name).strip().lower()
    if key not in _REGISTRY:
        raise ValueError(
            f"unknown optimizer {name!r}; available: {', '.join(available_optimizers())}"
        )
    return _REGISTRY[key](**kwargs)
